"""The versioned on-disk recording format (``.ldbrec``).

A recording is a durable, shareable debugging session: enough state to
reopen a program's timeline later — on another machine, with no nub and
no executable — and debug it with the unchanged stack, forward *and*
backward.  Following rr's shape ("Engineering Record and Replay for
Deployability", PAPERS.md), a recording is:

* **checkpoint spills**: complete resumable machine states
  (:class:`~repro.machines.machstate.MachineState`) captured at the
  stops the live session checkpointed — the seeds replay re-executes
  from;
* an **event log**: every surfaced stop with its icount and a
  normalized state digest — what replay verifies against, so a
  divergent re-execution is *detected*, never silently served;
* an **input log**: debugger-injected writes (``set x = 5``) with the
  icount position they happened at, so replay re-applies them on the
  way past and the re-executed timeline matches the recorded one.

On disk: the ``LDBT`` magic and a ``<HH`` version/flags header, then a
sequence of independently zlib-compressed, CRC32-checksummed blocks
(:mod:`repro.machines.chunkio`), ending with an END sentinel whose
absence marks a truncated file.  Block order is META, SPILL*, LOG, END.
Every damage path — bad magic, cut-short block, flipped bit, future
version, malformed body — raises :class:`TraceError` with a reason,
never a struct error.
"""

from __future__ import annotations

import struct
import warnings
from typing import List, Optional

from ..machines.atomicio import SalvagedArtifact, atomic_write_bytes
from ..machines.chunkio import pack_block, unpack_block
from ..machines.machstate import MachineState, StateError

TRACE_MAGIC = b"LDBT"
TRACE_VERSION = 1

#: block kinds
BLOCK_META = 1
BLOCK_SPILL = 2
BLOCK_LOG = 3
BLOCK_END = 4

#: spill kinds (why the live session checkpointed there)
SPILL_STOP = 0
SPILL_AUTO = 1

#: input-log operations
OP_STORE = 1
OP_BLOCKSTORE = 2

_HEAD = struct.Struct("<HH")
_STOP = struct.Struct("<QIiII")
_INPUT_HEAD = struct.Struct("<QBBIH")


class TraceError(Exception):
    """A recording that cannot be loaded (damaged, truncated, or from a
    future format version)."""


class TraceMeta:
    """The recording's identity: what machine, how big, where the nub
    keeps its context, and the checkpoint interval it was made with."""

    __slots__ = ("arch_name", "byteorder", "memsize", "context_addr",
                 "interval", "base_icount", "loader_ps")

    def __init__(self, arch_name: str, byteorder: str, memsize: int,
                 context_addr: int, interval: int, base_icount: int,
                 loader_ps: Optional[str] = None):
        self.arch_name = arch_name
        self.byteorder = byteorder
        self.memsize = memsize
        self.context_addr = context_addr
        self.interval = interval
        #: icount of the earliest spill: the floor of the timeline
        self.base_icount = base_icount
        #: the embedded loader symbol table (PostScript text)
        self.loader_ps = loader_ps

    def to_body(self) -> bytes:
        body = bytearray()
        name = self.arch_name.encode("ascii")
        body += struct.pack("<B", len(name)) + name
        body += struct.pack("<B", 1 if self.byteorder == "big" else 0)
        body += struct.pack("<III", self.memsize, self.context_addr,
                            self.interval)
        body += struct.pack("<Q", self.base_icount)
        table = (self.loader_ps or "").encode("utf-8")
        body += struct.pack("<I", len(table)) + table
        return bytes(body)

    @classmethod
    def from_body(cls, body: bytes) -> "TraceMeta":
        offset = 0
        (name_len,) = struct.unpack_from("<B", body, offset)
        offset += 1
        arch_name = body[offset:offset + name_len].decode("ascii")
        offset += name_len
        (big,) = struct.unpack_from("<B", body, offset)
        offset += 1
        memsize, context_addr, interval = struct.unpack_from(
            "<III", body, offset)
        offset += 12
        (base_icount,) = struct.unpack_from("<Q", body, offset)
        offset += 8
        (table_len,) = struct.unpack_from("<I", body, offset)
        offset += 4
        table = body[offset:offset + table_len]
        if len(table) != table_len:
            raise TraceError("truncated META loader table")
        return cls(arch_name, "big" if big else "little", memsize,
                   context_addr, interval, base_icount,
                   loader_ps=table.decode("utf-8") or None)


class SpillRecord:
    """One spilled checkpoint: a resumable state at a recorded stop."""

    __slots__ = ("cid", "icount", "pc", "signo", "code", "kind", "state")

    def __init__(self, cid: int, icount: int, pc: int, signo: int,
                 code: int, kind: int, state: MachineState):
        self.cid = cid
        self.icount = icount
        self.pc = pc
        self.signo = signo
        self.code = code
        self.kind = kind
        self.state = state

    def to_body(self) -> bytes:
        state_body = self.state.to_body()
        return (struct.pack("<IQIiIBI", self.cid, self.icount, self.pc,
                            self.signo, self.code, self.kind,
                            len(state_body)) + state_body)

    @classmethod
    def from_body(cls, body: bytes) -> "SpillRecord":
        cid, icount, pc, signo, code, kind, state_len = struct.unpack_from(
            "<IQIiIBI", body, 0)
        head = struct.calcsize("<IQIiIBI")
        state_body = body[head:head + state_len]
        if len(state_body) != state_len:
            raise TraceError("truncated SPILL state body")
        try:
            state = MachineState.from_body(state_body)
        except StateError as exc:
            raise TraceError("bad SPILL state: %s" % exc)
        return cls(cid, icount, pc, signo, code, kind, state)


class StopRecord:
    """One surfaced stop in the event log: position + verification
    digest (see :meth:`repro.machines.machstate.MachineState.digest`)."""

    __slots__ = ("icount", "pc", "signo", "code", "digest")

    def __init__(self, icount: int, pc: int, signo: int, code: int,
                 digest: int):
        self.icount = icount
        self.pc = pc
        self.signo = signo
        self.code = code
        self.digest = digest


class InputRecord:
    """One debugger-injected write, applied on departure from
    ``position`` during replay.  ``data`` is exactly the wire payload
    (little-endian for STORE, raw memory order for BLOCKSTORE)."""

    __slots__ = ("position", "op", "space", "address", "data")

    def __init__(self, position: int, op: int, space: str, address: int,
                 data: bytes):
        self.position = position
        self.op = op
        self.space = space
        self.address = address
        self.data = data


class Recording:
    """One loaded (or under-construction) recording."""

    #: True when this recording was recovered from a damaged file by
    #: :meth:`from_bytes`'s salvage mode — everything past
    #: :attr:`final_icount` (the salvage horizon) was lost
    salvaged = False
    #: why the strict parse refused the file (salvaged only)
    salvage_reason: Optional[str] = None
    #: True when this recording was written by a partial save — the
    #: writer could not pull every pending checkpoint state (dead nub)
    partial = False

    def __init__(self, meta: TraceMeta,
                 spills: Optional[List[SpillRecord]] = None,
                 stops: Optional[List[StopRecord]] = None,
                 inputs: Optional[List[InputRecord]] = None):
        self.meta = meta
        #: spilled checkpoints, ascending icount, cids 1..N in that order
        self.spills = sorted(spills or [], key=lambda s: s.icount)
        #: surfaced stops, ascending icount
        self.stops = sorted(stops or [], key=lambda s: s.icount)
        #: injected writes, ascending position
        self.inputs = sorted(inputs or [], key=lambda i: i.position)

    @property
    def final_icount(self) -> int:
        """The latest recorded position: where a reopened session sits."""
        return self.spills[-1].icount if self.spills else 0

    def stop_at(self, icount: int) -> Optional[StopRecord]:
        for stop in self.stops:
            if stop.icount == icount:
                return stop
        return None

    # -- serialization -----------------------------------------------------

    def to_bytes(self) -> bytes:
        out = bytearray()
        out += TRACE_MAGIC + _HEAD.pack(TRACE_VERSION, 0)
        out += pack_block(BLOCK_META, self.meta.to_body())
        for spill in self.spills:
            out += pack_block(BLOCK_SPILL, spill.to_body())
        log = bytearray()
        log += struct.pack("<I", len(self.stops))
        for stop in self.stops:
            log += _STOP.pack(stop.icount, stop.pc, stop.signo, stop.code,
                              stop.digest)
        log += struct.pack("<I", len(self.inputs))
        for entry in self.inputs:
            log += _INPUT_HEAD.pack(entry.position, entry.op,
                                    ord(entry.space), entry.address,
                                    len(entry.data))
            log += entry.data
        out += pack_block(BLOCK_LOG, bytes(log))
        out += pack_block(BLOCK_END, b"")
        return bytes(out)

    @classmethod
    def from_bytes(cls, raw: bytes, salvage: bool = False) -> "Recording":
        """Parse a serialized recording.

        Strict by default: any damage raises :class:`TraceError`.
        With ``salvage=True``, a truncated or tail-corrupt file is
        recovered on its longest valid block prefix instead — the
        spills, stops, and inputs up to the first damaged block — and
        a :class:`SalvagedArtifact` warning names what was lost.  A
        file damaged before its first checkpoint spill (or one that is
        simply not a recording) still raises."""
        try:
            return cls._parse(raw)
        except TraceError as err:
            if not salvage:
                raise
            return cls._salvage(raw, err)

    @classmethod
    def _parse(cls, raw: bytes) -> "Recording":
        if raw[:4] != TRACE_MAGIC:
            raise TraceError("not a trace file (bad magic)")
        if len(raw) < 8:
            raise TraceError("truncated trace: header cut short (%d bytes)"
                             % len(raw))
        version, _flags = _HEAD.unpack_from(raw, 4)
        if version > TRACE_VERSION:
            raise TraceError("trace format version %d is newer than this "
                             "debugger understands (max %d)"
                             % (version, TRACE_VERSION))
        offset = 8
        meta: Optional[TraceMeta] = None
        spills: List[SpillRecord] = []
        stops: List[StopRecord] = []
        inputs: List[InputRecord] = []
        saw_log = False
        ended = False
        try:
            while offset < len(raw):
                kind, body, offset = unpack_block(raw, offset, TraceError,
                                                  "trace")
                if kind == BLOCK_END:
                    ended = True
                    break
                if kind == BLOCK_META:
                    if meta is not None:
                        raise TraceError("duplicate META block")
                    meta = TraceMeta.from_body(body)
                elif kind == BLOCK_SPILL:
                    spills.append(SpillRecord.from_body(body))
                elif kind == BLOCK_LOG:
                    if saw_log:
                        raise TraceError("duplicate LOG block")
                    saw_log = True
                    stops, inputs = cls._unpack_log(body)
                else:
                    raise TraceError("unknown block kind %d at offset %d"
                                     % (kind, offset))
        except (struct.error, IndexError, UnicodeDecodeError) as exc:
            raise TraceError("malformed trace block: %s" % exc)
        if not ended:
            raise TraceError("truncated trace: no END block")
        if offset != len(raw):
            raise TraceError("%d trailing bytes after END block"
                             % (len(raw) - offset))
        if meta is None:
            raise TraceError("trace has no META block")
        if not spills:
            raise TraceError("trace has no checkpoint spills")
        return cls(meta, spills, stops, inputs)

    @classmethod
    def _salvage(cls, raw: bytes, err: TraceError) -> "Recording":
        """Recover the longest valid block prefix of a damaged file.

        The magic and version gates still apply (re-raising ``err``):
        salvage serves *our* files that lost their tail, not alien
        ones.  The salvage horizon is the last intact spill's icount;
        stops and inputs past it are dropped so replay never claims a
        timeline the file no longer proves."""
        if raw[:4] != TRACE_MAGIC or len(raw) < 8:
            raise err
        version, _flags = _HEAD.unpack_from(raw, 4)
        if version > TRACE_VERSION:
            raise err
        offset = 8
        meta: Optional[TraceMeta] = None
        spills: List[SpillRecord] = []
        stops: List[StopRecord] = []
        inputs: List[InputRecord] = []
        blocks = 0
        try:
            while offset < len(raw):
                kind, body, offset = unpack_block(raw, offset, TraceError,
                                                  "trace")
                if kind == BLOCK_END:
                    break
                if kind == BLOCK_META:
                    if meta is not None:
                        break  # a duplicate META: stop at the damage
                    meta = TraceMeta.from_body(body)
                elif kind == BLOCK_SPILL:
                    spills.append(SpillRecord.from_body(body))
                elif kind == BLOCK_LOG:
                    stops, inputs = cls._unpack_log(body)
                else:
                    break  # unknown kind: the damage starts here
                blocks += 1
        except (TraceError, struct.error, IndexError, UnicodeDecodeError):
            pass  # the prefix up to here is what survives
        if meta is None or not spills:
            raise err  # damage before the first spill: nothing to serve
        horizon = max(spill.icount for spill in spills)
        kept_stops = [stop for stop in stops if stop.icount <= horizon]
        kept_inputs = [entry for entry in inputs if entry.position <= horizon]
        recording = cls(meta, spills, kept_stops, kept_inputs)
        recording.salvaged = True
        recording.salvage_reason = str(err)
        warnings.warn(SalvagedArtifact(
            "recording salvaged on its valid prefix: %d block(s), %d "
            "checkpoint spill(s), horizon icount %d (%s)"
            % (blocks, len(spills), horizon, err)), stacklevel=3)
        return recording

    @staticmethod
    def _unpack_log(body: bytes):
        offset = 0
        (nstops,) = struct.unpack_from("<I", body, offset)
        offset += 4
        stops = []
        for _ in range(nstops):
            icount, pc, signo, code, digest = _STOP.unpack_from(body, offset)
            offset += _STOP.size
            stops.append(StopRecord(icount, pc, signo, code, digest))
        (ninputs,) = struct.unpack_from("<I", body, offset)
        offset += 4
        inputs = []
        for _ in range(ninputs):
            position, op, space, address, size = _INPUT_HEAD.unpack_from(
                body, offset)
            offset += _INPUT_HEAD.size
            data = body[offset:offset + size]
            if len(data) != size:
                raise TraceError("truncated input-log entry at icount %d"
                                 % position)
            offset += size
            inputs.append(InputRecord(position, op, chr(space), address,
                                      data))
        if offset != len(body):
            raise TraceError("%d trailing bytes in LOG block"
                             % (len(body) - offset))
        return stops, inputs

    def dump(self, path: str, fs=None) -> None:
        """Write the recording crash-consistently: after this returns
        (or fails, or the process dies) ``path`` is never torn."""
        atomic_write_bytes(path, self.to_bytes(), fs=fs)

    @classmethod
    def load(cls, path: str, salvage: bool = False) -> "Recording":
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except OSError as exc:
            raise TraceError("cannot read recording %s: %s" % (path, exc))
        return cls.from_bytes(raw, salvage=salvage)
