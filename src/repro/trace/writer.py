"""Capturing a live session into a recording file.

The writer rides along with the time-travel machinery instead of
duplicating it: :class:`~repro.timetravel.replay.ReplayController`
already checkpoints at every surfaced stop and interval boundary, and
offers each checkpoint here; the writer pulls the complete machine
state over the wire (the SPILL verb) and keeps it as a
:class:`~repro.trace.format.SpillRecord`, plus a
:class:`~repro.trace.format.StopRecord` with the normalized divergence
digest.

Debugger-injected writes (``set x = 5``) are observed through the
transport's tap hook — no call site changes — and logged as
:class:`~repro.trace.format.InputRecord` at the icount position they
happened.  Stores wholly inside the nub's context save area are
*mechanics*, not inputs (the resume-pc write, register pokes the resume
path reproduces itself), and are not logged.

Nothing crosses the wire while recording: the nub already holds every
checkpoint as a COW snapshot, so the writer only *registers* each one
(a pending spill) and pulls the full state lazily — at :meth:`save`,
or just before the ring would evict a snapshot the file still needs.
That keeps record overhead within the checkpoint envelope measured in
BENCH_time_travel; the pull cost lands on the explicit ``record save``
instead (BENCH_record measures both).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..machines import get_arch
from ..machines.atomicio import atomic_write_bytes
from ..nub import protocol
from .format import (OP_BLOCKSTORE, OP_STORE, Recording, SPILL_AUTO,
                     SPILL_STOP, InputRecord, SpillRecord, StopRecord,
                     TraceError, TraceMeta)


class TraceWriter:
    """Accumulates one recording from a live (time-travelling) target."""

    def __init__(self, target, path: Optional[str] = None,
                 interval: int = 5_000):
        self.target = target
        #: default save path (``record --save PATH``); ``save`` may
        #: override it
        self.path = path
        self.interval = interval
        self.obs = target.obs
        arch = get_arch(target.arch_name)
        self._ctx_lo = target.context_addr
        self._ctx_hi = target.context_addr + arch.context_size()
        self._context_size = arch.context_size()
        #: spills and stop records keyed by icount (dedup: determinism
        #: means same icount, same state)
        self.spills: Dict[int, SpillRecord] = {}
        self.stops: Dict[int, StopRecord] = {}
        #: checkpoints registered but not yet pulled over the wire —
        #: their state still lives nub-side as a COW snapshot (keyed by
        #: icount, value is the timetravel Checkpoint holding the cid)
        self._pending: Dict[int, object] = {}
        #: the most recently offered checkpoint: always the current
        #: stop, and always live in the ring — the way home after
        #: save-time restores
        self._home = None
        #: save-time restores are mechanics, not timeline movement:
        #: the tap must not log them or drop inputs over them
        self._muted = False
        self.inputs: List[InputRecord] = []
        #: the current timeline position, maintained passively from
        #: CKPT replies (every stop is followed by an ICOUNT or
        #: CHECKPOINT exchange before any user command runs)
        self._position: int = 0
        #: reconnect boundaries stitched over (survived nub-connection
        #: deaths: the recording keeps accumulating across them)
        self.stitches = 0
        self._attached = False
        self.attach()

    # -- transport tap -----------------------------------------------------

    def attach(self) -> None:
        if self._attached:
            return
        taps = getattr(self.target.transport, "taps", None)
        if taps is None or isinstance(taps, tuple):
            raise TraceError("transport %r does not support taps"
                             % type(self.target.transport).__name__)
        taps.append(self._tap)
        self._attached = True

    def detach(self) -> None:
        if not self._attached:
            return
        try:
            self.target.transport.taps.remove(self._tap)
        except ValueError:
            pass
        self._attached = False

    def _tap(self, msg, reply) -> None:
        if self._muted:
            return
        if reply.mtype == protocol.MSG_CKPT:
            _cid, icount = protocol.parse_ckpt(reply)
            if msg.mtype == protocol.MSG_RESTORE:
                # the checkpoint being restored predates any input
                # injected at (or after) its position: those inputs are
                # no longer part of the live timeline
                self.inputs = [entry for entry in self.inputs
                               if entry.position < icount]
            self._position = icount
            return
        if msg.mtype == protocol.MSG_STORE:
            space, address, data = protocol.parse_store(msg)
            self._record_input(OP_STORE, space, address, data)
        elif msg.mtype == protocol.MSG_BLOCKSTORE:
            space, address, data = protocol.parse_blockstore(msg)
            self._record_input(OP_BLOCKSTORE, space, address, data)

    def _record_input(self, op: int, space: str, address: int,
                      data: bytes) -> None:
        if self._ctx_lo <= address and address + len(data) <= self._ctx_hi:
            return  # resume mechanics, reproduced by replay itself
        if self.inputs:
            # a store retried across a reconnect taps twice (the
            # session re-sends, the nub dedups); the log keeps one
            last = self.inputs[-1]
            if (last.position == self._position and last.op == op
                    and last.space == space and last.address == address
                    and last.data == data):
                return
        self.inputs.append(InputRecord(self._position, op, space, address,
                                       data))
        self.obs.metrics.inc("trace.inputs")

    # -- reconnect stitching -----------------------------------------------

    def stitch_reconnect(self):
        """A reconnect is about to resynchronize the target (replant
        breakpoints, re-announce the stop): those exchanges are
        recovery mechanics at an unchanged timeline position, not
        debugger inputs.  Returns a context manager muting the tap for
        the resync window and marking the stitch — a nub-connection
        death no longer discards the recording."""
        writer = self

        class _Stitch:
            def __enter__(self):
                writer._muted = True
                return self

            def __exit__(self, exc_type, exc, tb):
                writer._muted = False
                writer.stitches += 1
                writer.obs.metrics.inc("trace.reconnect_stitches")
                writer.obs.tracer.event("trace.stitch",
                                        position=writer._position,
                                        spills=len(writer.spills),
                                        pending=len(writer._pending))
                return False

        return _Stitch()

    # -- spills (fed by the ReplayController) ------------------------------

    def spill(self, ck) -> None:
        """Register checkpoint ``ck`` (a timetravel Checkpoint) for the
        file.  Nothing crosses the wire here: the nub's COW snapshot
        *is* the state, and it is pulled lazily — at save, or by
        :meth:`materialize` if the ring is about to drop it.
        Idempotent per icount."""
        self._home = ck  # spill is only ever offered at the current stop
        self._position = ck.icount
        if ck.icount in self.spills or ck.icount in self._pending:
            return
        self._pending[ck.icount] = ck
        self.obs.metrics.inc("trace.spills")
        self.obs.tracer.event("trace.spill", icount=ck.icount, kind=ck.kind)

    def materialize(self, ck, home) -> None:
        """The ring is about to evict ``ck`` and drop its nub-side
        snapshot; pull the state now if the file still needs it, then
        restore ``home`` (the checkpoint at the current stop)."""
        if self._pending.pop(ck.icount, None) is None:
            return
        target = self.target
        signo, sigcode = target.signo, target.sigcode
        self._muted = True
        try:
            target.restore_checkpoint(ck.cid)
            self._capture(ck)
            target.restore_checkpoint(home.cid)
            target.signo, target.sigcode = signo, sigcode
        finally:
            self._muted = False

    def _capture(self, ck) -> None:
        """Pull the complete machine state of the *current* nub stop
        (which must be ``ck``'s position) and keep it as a spill plus
        its divergence digest."""
        state = self.target.spill_state()
        digest = state.digest(self._ctx_lo, self._context_size)
        record = SpillRecord(cid=0, icount=ck.icount, pc=ck.pc,
                             signo=ck.signo, code=ck.sigcode,
                             kind=SPILL_AUTO if ck.kind == "auto"
                             else SPILL_STOP, state=state)
        self.spills[ck.icount] = record
        self.stops[ck.icount] = StopRecord(ck.icount, ck.pc, ck.signo,
                                           ck.sigcode, digest)

    def _materialize_pending(self) -> None:
        """Pull every still-pending checkpoint state over the wire:
        restore each snapshot in turn, spill it, and come back to the
        current stop.  Runs muted — these restores are save mechanics,
        not timeline movement."""
        if not self._pending:
            return
        target = self.target
        if target.state != "stopped":
            raise TraceError(
                "cannot pull %d pending checkpoint states: target is %s"
                % (len(self._pending), target.state))
        here = target.current_icount()
        home = self._home
        if home is None or home.icount != here:
            home = self._pending.get(here)
        if home is None and any(ck.icount != here
                                for ck in self._pending.values()):
            raise TraceError("no checkpoint at the current stop to come "
                             "back to after spilling")
        signo, sigcode = target.signo, target.sigcode
        self._muted = True
        try:
            for ck in sorted(self._pending.values(),
                             key=lambda entry: entry.icount):
                target.restore_checkpoint(ck.cid)
                self._capture(ck)
            if home is not None:
                target.restore_checkpoint(home.cid)
            target.signo, target.sigcode = signo, sigcode
            self._pending.clear()
        finally:
            self._muted = False

    def _drop_pending(self) -> None:
        """Forget pending checkpoints without pulling them (their
        states are unreachable — the nub is dead or the drain deadline
        has passed).  The recording shrinks to its materialized
        prefix; stops and inputs past that horizon go with them."""
        if not self._pending:
            return
        dropped = len(self._pending)
        self._pending.clear()
        if self.spills:
            horizon = max(self.spills)
            self.stops = {key: value for key, value in self.stops.items()
                          if key <= horizon}
            self.inputs = [entry for entry in self.inputs
                           if entry.position <= horizon]
        self.obs.metrics.inc("trace.partial_drops", dropped)
        self.obs.tracer.event("trace.partial_drop", dropped=dropped,
                              kept=len(self.spills))

    def drop_future(self, icount: int) -> None:
        """Resuming forward after time travel: the recorded future is
        stale (execution may diverge from it), mirror the ring."""
        dropped = [key for key in self.spills if key > icount]
        for key in dropped:
            del self.spills[key]
            self.stops.pop(key, None)
        stale = [key for key in self._pending if key > icount]
        for key in stale:
            del self._pending[key]
        self.inputs = [entry for entry in self.inputs
                       if entry.position <= icount]
        if dropped or stale:
            self.obs.metrics.inc("trace.drops", len(dropped) + len(stale))

    # -- saving ------------------------------------------------------------

    def build(self, partial: bool = False) -> Recording:
        """The accumulated recording as an in-memory container.

        ``partial=True`` is the degraded path for a target that can no
        longer answer SPILL (dead nub, severed transport, mid-run
        drain deadline): pending checkpoints whose states still lived
        nub-side are *dropped* instead of pulled, and the recording is
        built from what was already materialized — a salvageable
        partial rather than nothing."""
        if not self.spills and not self._pending:
            raise TraceError("nothing recorded yet (no checkpoint spills)")
        if partial:
            self._drop_pending()
        else:
            self._materialize_pending()
        if not self.spills:
            raise TraceError(
                "nothing salvageable: every checkpoint state was still "
                "nub-side when the nub died")
        spills = [self.spills[key] for key in sorted(self.spills)]
        for index, record in enumerate(spills):
            record.cid = index + 1
        loader_ps = self._loader_ps()
        meta = TraceMeta(
            arch_name=self.target.arch_name,
            byteorder=spills[0].state.byteorder,
            memsize=spills[0].state.memsize,
            context_addr=self._ctx_lo,
            interval=self.interval,
            base_icount=spills[0].icount,
            loader_ps=loader_ps,
        )
        stops = [self.stops[key] for key in sorted(self.stops)]
        return Recording(meta, spills, stops, list(self.inputs))

    def _loader_ps(self) -> Optional[str]:
        process = getattr(self.target, "process", None)
        if process is not None:
            table = getattr(process.exe, "loader_ps", None)
            if table:
                return table
        # re-recording a replayed session: inherit the file's table
        recording = getattr(self.target.transport, "recording", None)
        if recording is not None:
            return recording.meta.loader_ps
        return getattr(self.target, "loader_ps", None)

    def save(self, path: Optional[str] = None, fs=None,
             partial: bool = False) -> Recording:
        """Write the recording to ``path`` (or the attached default).

        The write is crash-consistent (temp + fsync + rename): ``path``
        holds either its previous contents or the complete new
        recording, never a torn mix.  ``partial=True`` saves whatever
        is already materialized when the target can no longer answer
        (see :meth:`build`)."""
        path = path or self.path
        if path is None:
            raise TraceError("no save path (record --save PATH, or "
                             "record save PATH)")
        self.path = path
        recording = self.build(partial=partial)
        if partial:
            recording.partial = True
        raw = recording.to_bytes()
        atomic_write_bytes(path, raw, fs=fs)
        self.obs.metrics.inc("trace.saves")
        if partial:
            self.obs.metrics.inc("trace.partial_saves")
        self.obs.metrics.inc("trace.saved_bytes", len(raw))
        self.obs.tracer.event("trace.save", path=path, bytes=len(raw),
                              spills=len(recording.spills),
                              inputs=len(recording.inputs),
                              partial=partial)
        return recording
