"""Replaying a recording: the nub's side of the wire, from a file.

:class:`ReplayTransport` does for recordings what
:class:`~repro.ldb.postmortem.CoreTransport` does for cores — puts the
file behind the :class:`~repro.nub.session.Transport` interface so the
unchanged debugger stack runs against it — but a recording is not a
corpse: it holds *resumable* machine states, so this transport hosts a
local simulated process, restores the latest spill into it, and serves
the full live conversation: FETCH/BLOCKFETCH with the byte-order and
saved-float fixups of the live nub, STORE/PLANT (replay targets are
mutable), BREAKS, and the whole FEATURE_TIMETRAVEL family — CHECKPOINT/
RESTORE map onto the file's spilled checkpoints plus local snapshots,
RUNTO re-executes the deterministic simulation, so reverse-continue/
step/goto work on a file with no nub process at all.

**Divergence detection**: re-execution is continuously verified against
the recorded event log.  The file stores a normalized state digest at
every recorded stop; replay pauses at each of those positions (and at
every recorded input position, to re-apply debugger-injected writes on
the way past), compares digests, and raises :class:`DivergenceError`
naming the first divergent icount instead of silently serving wrong
state.  A tampered event log, a damaged spill, or a simulator that
stopped being deterministic all surface the same way, loudly.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Optional, Tuple

from ..machines import ExitEvent, IcountStopEvent, Process, get_arch
from ..machines.core import core_from_process
from ..machines.loader import Executable
from ..machines.machstate import MachineState, live_digest
from ..nub import protocol
from ..nub.channel import ChannelClosed
from ..nub.nub import nub_md_for
from ..nub.session import NubError, Transport, TransportError
from .format import OP_STORE, Recording, SpillRecord, TraceError


class DivergenceError(TransportError):
    """Replayed execution stopped matching the recording.

    ``icount`` is the first recorded position whose normalized state
    digest disagrees with the re-executed state; ``expected`` is the
    digest in the file, ``actual`` what replay computed.
    """

    #: lets the target layer recognize a divergence duck-typed, without
    #: importing this module: the transport parked on the divergent
    #: state as a stop, so the session stays debuggable there
    diverged = True

    def __init__(self, icount: int, expected: int, actual: int):
        super().__init__(
            "replay diverged from the recording at icount %d "
            "(state digest 0x%08x, recorded 0x%08x)"
            % (icount, actual, expected))
        self.icount = icount
        self.expected = expected
        self.actual = actual
        #: the stop identity replay parked with (filled at raise time)
        self.signo: Optional[int] = None
        self.sigcode: Optional[int] = None


class ReplayTransport(Transport):
    """A :class:`Transport` over a recording file.

    ``block_active``/``timetravel_active``/``core_active`` are all True:
    the image is local, the timeline is the whole point, and a replayed
    session can re-serialize itself as a core.
    """

    block_active = True
    timetravel_active = True
    core_active = True

    def __init__(self, recording: Recording, check_divergence: bool = True,
                 obs=None):
        self.recording = recording
        meta = recording.meta
        if obs is None:
            from ..obs import Observability  # deferred: obs decodes frames
            obs = Observability()
        self.obs = obs
        try:
            self.arch = get_arch(meta.arch_name)
        except KeyError:
            raise TraceError("recording names unknown architecture %r"
                             % meta.arch_name)
        self.md = nub_md_for(self.arch)
        self.context_addr = meta.context_addr
        self._context_size = self.arch.context_size()
        self.check_divergence = check_divergence
        if not recording.spills:
            raise TraceError("recording has no checkpoint spills")
        # a bare executable shell: every byte of real state comes from
        # the restored spill, but Process wants a program to exist
        shell = Executable(self.arch, [])
        shell.stack_top = meta.memsize - 16
        self.process = Process(shell, memsize=meta.memsize)
        #: planted breakpoints: address -> original little-endian bytes
        self.planted: Dict[int, bytes] = {}
        #: cid -> ("spill", SpillRecord) | ("snap", snapshot, planted)
        self.checkpoints: Dict[int, tuple] = {}
        for spill in recording.spills:
            self.checkpoints[spill.cid] = ("spill", spill)
        self._next_cid = max(s.cid for s in recording.spills) + 1
        #: verification marks: every recorded stop and input position,
        #: ascending — replay pauses at each on the way past
        self._stops_by_icount = {s.icount: s for s in recording.stops}
        self._inputs_by_position: Dict[int, list] = {}
        for entry in recording.inputs:
            self._inputs_by_position.setdefault(entry.position,
                                                []).append(entry)
        self._marks = sorted(set(self._stops_by_icount)
                             | set(self._inputs_by_position))
        final = recording.spills[-1]
        self._restore_spill(final)
        self._signo = final.signo
        self._sigcode = final.code
        self._stop_pc = final.pc
        self._announced = False
        self._pending: Optional[Tuple[str, Optional[int]]] = None
        self._killed = False
        self.closed = False
        self.taps: list = []
        self.obs.metrics.inc("trace.replay.opens")

    # -- the Transport interface ------------------------------------------

    def transact(self, msg: protocol.Message, expect: Iterable[int],
                 timeout: Optional[float] = None) -> protocol.Message:
        expect = tuple(expect)
        reply = self._serve(msg)
        if reply.mtype == protocol.MSG_ERROR:
            raise NubError(protocol.parse_error(reply), request=msg)
        if reply.mtype not in expect:
            raise TransportError("unexpected reply %r to %r" % (reply, msg))
        self.notify_taps(msg, reply)
        return reply

    def control(self, msg: protocol.Message) -> None:
        if msg.mtype == protocol.MSG_CONTINUE:
            self._pending = ("continue", None)
        elif msg.mtype == protocol.MSG_RUNTO:
            self._pending = ("runto", protocol.parse_runto(msg))
        elif msg.mtype == protocol.MSG_KILL:
            self._killed = True
        elif msg.mtype == protocol.MSG_DETACH:
            self.closed = True
        else:
            raise TransportError("replay transport cannot %s"
                                 % protocol.type_name(msg.mtype).lower())

    def recv_event(self, timeout: Optional[float] = None) -> protocol.Message:
        if self._killed or self.closed:
            raise ChannelClosed("replay session is closed")
        if not self._announced:
            # the reopened session sits where the recording ended: the
            # final spilled stop, re-announced like a live SIGNAL
            self._announced = True
            return protocol.signal(self._signo, self._sigcode,
                                   self.context_addr)
        if self._pending is None:
            raise TransportError("replay transport has no pending run")
        mode, bound = self._pending
        self._pending = None
        return self._run(bound)

    def close(self) -> None:
        self.closed = True

    # -- re-execution with divergence checks -------------------------------

    def _run(self, bound: Optional[int]) -> protocol.Message:
        """Resume the replayed process like the nub would: restore the
        context the debugger may have edited, then execute — pausing at
        every recorded stop/input position to verify and re-inject —
        until a real stop, the RUNTO ``bound``, or an exit."""
        process = self.process
        cpu = process.cpu
        pc = self.md.restore_context(cpu, process.mem, self.context_addr)
        cpu.pc = pc
        started = cpu.icount
        while True:
            self._apply_inputs(cpu.icount)
            index = bisect.bisect_right(self._marks, cpu.icount)
            next_mark = (self._marks[index]
                         if index < len(self._marks) else None)
            stops = [limit for limit in (bound, next_mark)
                     if limit is not None]
            stop_at = min(stops) if stops else None
            event = process.run_until_event(stop_at_icount=stop_at)
            if isinstance(event, ExitEvent):
                self._killed = True  # nothing runs after exit
                self.obs.metrics.inc("trace.replay.exits")
                return protocol.exited(event.status)
            at = event.icount if event.icount is not None else cpu.icount
            if at > started:
                try:
                    self._verify(at)
                except DivergenceError as err:
                    # park on the divergent state as a well-defined
                    # stop: the error is loud, but the session stays
                    # inspectable (and resumable) right here
                    self.md.save_context(cpu, process.mem,
                                         self.context_addr, event.pc)
                    self._signo = event.signo
                    self._sigcode = event.code
                    self._stop_pc = event.pc
                    err.signo = event.signo
                    err.sigcode = event.code
                    raise
            if (isinstance(event, IcountStopEvent) and at == next_mark
                    and (bound is None or at < bound)):
                continue  # a verification pause, not a stop: carry on
            # a real stop: a trap/fault, the RUNTO bound, or the
            # simulator's runaway guard — save context and announce,
            # exactly like the nub
            self.md.save_context(cpu, process.mem, self.context_addr,
                                 event.pc)
            self._signo = event.signo
            self._sigcode = event.code
            self._stop_pc = event.pc
            self.obs.metrics.inc("trace.replay.stops")
            return protocol.signal(event.signo, event.code,
                                   self.context_addr)

    def _verify(self, icount: int) -> None:
        record = self._stops_by_icount.get(icount)
        if record is None or not self.check_divergence:
            return
        actual = live_digest(self.process, self.planted, self.context_addr,
                             self._context_size)
        self.obs.metrics.inc("trace.replay.checks")
        if actual != record.digest:
            self.obs.metrics.inc("trace.replay.divergences")
            self.obs.tracer.warn("trace.divergence", icount=icount,
                                 expected=record.digest, actual=actual)
            raise DivergenceError(icount, record.digest, actual)

    def verify_here(self) -> None:
        """Verify the *current* position against its recorded digest, if
        the log holds one.  Re-execution verifies continuously, but a
        freshly opened recording restores its final spill without
        executing anything — which is exactly the window a tampered
        event log would slip through.  Triage calls this right after
        open to catch a log whose final stop digest contradicts the
        spilled state, without paying for a re-execution.  Raises
        :class:`DivergenceError`; a position with no recorded stop (or
        ``check_divergence=False``) verifies trivially."""
        self._verify(self.process.cpu.icount)

    def _apply_inputs(self, position: int) -> None:
        """Re-inject the debugger writes recorded at ``position`` — on
        departure, so inspected state at a surfaced stop is the
        pre-input arrival state the digests were computed from."""
        for entry in self._inputs_by_position.get(position, ()):
            if entry.op == OP_STORE:
                raw_le = self.md.fix_stored(entry.address, entry.data,
                                            self.context_addr)
                raw = (raw_le if self.arch.byteorder == "little"
                       else raw_le[::-1])
            else:  # OP_BLOCKSTORE carries raw memory-order bytes
                raw = entry.data
            self.process.mem.write_bytes(entry.address, raw)
            self.obs.metrics.inc("trace.replay.inputs")

    def _restore_spill(self, spill: SpillRecord) -> None:
        spill.state.restore_into(self.process)
        self.planted = dict(spill.state.planted)

    # -- the nub's half of the conversation --------------------------------

    def _serve(self, msg: protocol.Message) -> protocol.Message:
        mtype = msg.mtype
        if mtype == protocol.MSG_FETCH:
            return self._serve_fetch(msg)
        if mtype == protocol.MSG_BLOCKFETCH:
            return self._serve_blockfetch(msg)
        if mtype == protocol.MSG_STORE:
            return self._serve_store(msg)
        if mtype == protocol.MSG_BLOCKSTORE:
            return self._serve_blockstore(msg)
        if mtype == protocol.MSG_PLANT:
            return self._serve_plant(msg)
        if mtype == protocol.MSG_UNPLANT:
            return self._serve_unplant(msg)
        if mtype == protocol.MSG_BREAKS:
            return protocol.breaklist(sorted(self.planted.items()))
        if mtype == protocol.MSG_ICOUNT:
            return protocol.ckpt(protocol.NO_CKPT, self.process.cpu.icount)
        if mtype == protocol.MSG_CHECKPOINT:
            cid = self._next_cid
            self._next_cid += 1
            self.checkpoints[cid] = ("snap", self.process.snapshot(),
                                     dict(self.planted))
            return protocol.ckpt(cid, self.process.cpu.icount)
        if mtype == protocol.MSG_RESTORE:
            return self._serve_restore(msg)
        if mtype == protocol.MSG_DROPCKPT:
            cid = protocol.parse_drop_checkpoint(msg)
            entry = self.checkpoints.pop(cid, None)
            if entry is not None and entry[0] == "snap":
                self.process.release_snapshot(entry[1])
            return protocol.ok()
        if mtype == protocol.MSG_DUMPCORE:
            core = core_from_process(
                self.process, self._signo, self._sigcode, self._stop_pc,
                self.context_addr, planted=self.planted,
                loader_ps=self.recording.meta.loader_ps)
            return protocol.data(core.to_bytes())
        if mtype == protocol.MSG_SPILL:
            state = MachineState.capture(self.process, self.planted)
            return protocol.data(state.to_bytes())
        return protocol.error(protocol.ERR_UNSUPPORTED)

    def _serve_fetch(self, msg: protocol.Message) -> protocol.Message:
        space, address, size = protocol.parse_fetch(msg)
        if space not in "cd":
            return protocol.error(protocol.ERR_BAD_SPACE)
        if size == 10 and not self.arch.has_f80:
            return protocol.error(protocol.ERR_BAD_MESSAGE)
        try:
            raw = self.process.mem.read_bytes(address, size)
        except Exception:
            return protocol.error(protocol.ERR_BAD_ADDRESS)
        raw_le = raw if self.arch.byteorder == "little" else raw[::-1]
        raw_le = self.md.fix_fetched(address, raw_le, self.context_addr)
        return protocol.data(raw_le)

    def _serve_blockfetch(self, msg: protocol.Message) -> protocol.Message:
        space, address, length = protocol.parse_blockfetch(msg)
        if space not in "cd":
            return protocol.error(protocol.ERR_BAD_SPACE)
        raw = self._readable_prefix(address, length)
        if raw is None:
            return protocol.error(protocol.ERR_BAD_ADDRESS)
        return protocol.data(raw)

    def _readable_prefix(self, address: int, length: int) -> Optional[bytes]:
        mem = self.process.mem
        try:
            return mem.read_bytes(address, length)
        except Exception:
            pass
        lo, hi = 0, length  # binary-search the longest readable prefix
        while lo + 1 < hi:
            mid = (lo + hi) // 2
            try:
                mem.read_bytes(address, mid)
                lo = mid
            except Exception:
                hi = mid
        if lo == 0:
            return None
        return mem.read_bytes(address, lo)

    def _serve_store(self, msg: protocol.Message) -> protocol.Message:
        space, address, raw_le = protocol.parse_store(msg)
        if space not in "cd":
            return protocol.error(protocol.ERR_BAD_SPACE)
        raw_le = self.md.fix_stored(address, raw_le, self.context_addr)
        raw = raw_le if self.arch.byteorder == "little" else raw_le[::-1]
        try:
            self.process.mem.write_bytes(address, raw)
        except Exception:
            return protocol.error(protocol.ERR_BAD_ADDRESS)
        return protocol.ok()

    def _serve_blockstore(self, msg: protocol.Message) -> protocol.Message:
        space, address, raw = protocol.parse_blockstore(msg)
        if space not in "cd":
            return protocol.error(protocol.ERR_BAD_SPACE)
        try:
            self.process.mem.write_bytes(address, raw)
        except Exception:
            return protocol.error(protocol.ERR_BAD_ADDRESS)
        return protocol.ok()

    def _serve_plant(self, msg: protocol.Message) -> protocol.Message:
        address, trap = protocol.parse_plant(msg)
        size = len(trap)
        if address not in self.planted:
            # idempotent, exactly like the nub: a duplicated PLANT must
            # not re-read the (already trapped) bytes as the original
            try:
                original = self.process.mem.read_bytes(address, size)
            except Exception:
                return protocol.error(protocol.ERR_BAD_ADDRESS)
            self.planted[address] = (original
                                     if self.arch.byteorder == "little"
                                     else original[::-1])
        raw = trap if self.arch.byteorder == "little" else trap[::-1]
        self.process.mem.write_bytes(address, raw)
        return protocol.ok()

    def _serve_unplant(self, msg: protocol.Message) -> protocol.Message:
        address = protocol.parse_unplant(msg)
        original_le = self.planted.pop(address, None)
        if original_le is None:
            return protocol.error(protocol.ERR_BAD_ADDRESS)
        raw = (original_le if self.arch.byteorder == "little"
               else original_le[::-1])
        self.process.mem.write_bytes(address, raw)
        return protocol.ok()

    def _serve_restore(self, msg: protocol.Message) -> protocol.Message:
        cid = protocol.parse_restore(msg)
        entry = self.checkpoints.get(cid)
        if entry is None:
            return protocol.error(protocol.ERR_BAD_CHECKPOINT)
        if entry[0] == "spill":
            spill = entry[1]
            self._restore_spill(spill)
            self._signo = spill.signo
            self._sigcode = spill.code
            self._stop_pc = spill.pc
        else:
            _kind, snapshot, planted = entry
            self.process.restore(snapshot)
            self.planted = dict(planted)
        self.obs.metrics.inc("trace.replay.restores")
        return protocol.ckpt(cid, self.process.cpu.icount)
