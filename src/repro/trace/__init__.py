"""Persistent recordings: record a live debugging session to a
versioned on-disk trace, reopen it later with no nub process, and
debug the re-executed timeline — with divergence detection."""

from .format import (InputRecord, Recording, SpillRecord, StopRecord,
                     TraceError, TraceMeta)
from .replay import DivergenceError, ReplayTransport
from .writer import TraceWriter

__all__ = [
    "DivergenceError",
    "InputRecord",
    "Recording",
    "ReplayTransport",
    "SpillRecord",
    "StopRecord",
    "TraceError",
    "TraceMeta",
    "TraceWriter",
]
