"""The prettyprinter interface.

The paper (Sec. 5): ldb's PostScript "includes an interface to a
prettyprinter supplied with Modula-3; the prettyprinter procedures are
called by the PostScript code that prints structured data."  The ARRAY
procedure in Sec. 2, for instance, emits ``({) Put 0 Begin ... 0 Break ...
(}) Put End``.

This module supplies the Modula-3-prettyprinter analog — an Oppen-style
group/break formatter — and the four PostScript operators ``Put``,
``Break``, ``Begin``, and ``End`` over it.

Semantics:

* ``Put`` emits text;
* ``n Begin`` opens a group whose broken lines indent ``n`` further;
* ``n Break`` is an optional break point: invisible if the enclosing group
  fits on the line, otherwise a newline indented ``n`` beyond the group's
  indentation (the Modula-3 Formatter convention — the ``(, ) Put 0 Break``
  idiom in the paper's ARRAY procedure supplies its own separating space);
* ``End`` closes the group.

A group renders flat when its whole flattened width fits in the remaining
line width, which is how ``{1, 1, 2, 3}`` prints on one line but a large
array wraps and indents.
"""

from __future__ import annotations

from typing import Any, List, Union

from .objects import PSError, String, to_string


class _Group:
    __slots__ = ("indent", "items")

    def __init__(self, indent: int):
        self.indent = indent
        self.items: List[Any] = []


class _Break:
    __slots__ = ("indent",)

    def __init__(self, indent: int):
        self.indent = indent


class PrettyPrinter:
    """Groups-and-breaks formatter writing to ``out``."""

    def __init__(self, out: Any, width: int = 72):
        self.out = out
        self.width = width
        self.column = 0
        self._open: List[_Group] = []

    # -- the four interface procedures ---------------------------------

    def put(self, text: str) -> None:
        if self._open:
            self._open[-1].items.append(text)
        else:
            self._emit_text(text)

    def brk(self, indent: int) -> None:
        if self._open:
            self._open[-1].items.append(_Break(indent))
        # outside any group a potential break is invisible

    def begin(self, indent: int) -> None:
        self._open.append(_Group(indent))

    def end(self) -> None:
        if not self._open:
            raise PSError("rangecheck", "prettyprinter End without Begin")
        group = self._open.pop()
        if self._open:
            self._open[-1].items.append(group)
        else:
            self._render(group, self.column)

    def newline(self) -> None:
        """An unconditional newline, resetting the current column."""
        while self._open:  # close any dangling groups defensively
            self.end()
        self.out.write("\n")
        self.column = 0

    # -- rendering ------------------------------------------------------

    def _emit_text(self, text: str) -> None:
        self.out.write(text)
        last_nl = text.rfind("\n")
        if last_nl >= 0:
            self.column = len(text) - last_nl - 1
        else:
            self.column += len(text)

    def _flat_width(self, item: Union[str, _Break, _Group]) -> int:
        if isinstance(item, str):
            return len(item)
        if isinstance(item, _Break):
            return 0
        return sum(self._flat_width(sub) for sub in item.items)

    def _render(self, group: _Group, base: int) -> None:
        flat = self._flat_width(group)
        if base + flat <= self.width:
            self._render_flat(group)
        else:
            indent = base + group.indent
            for item in group.items:
                if isinstance(item, str):
                    self._emit_text(item)
                elif isinstance(item, _Break):
                    self.out.write("\n" + " " * (indent + item.indent))
                    self.column = indent + item.indent
                else:
                    self._render(item, self.column)

    def _render_flat(self, group: _Group) -> None:
        for item in group.items:
            if isinstance(item, str):
                self._emit_text(item)
            elif isinstance(item, _Group):
                self._render_flat(item)
            # breaks are invisible when the group renders flat


def install(interp) -> None:
    """Install ``Put``/``Break``/``Begin``/``End`` over a PrettyPrinter.

    The printer writes to the interpreter's stdout and is exposed to host
    code as ``interp.pretty``.
    """
    printer = PrettyPrinter(_InterpOut(interp))
    interp.pretty = printer

    def op_put(ip) -> None:
        obj = ip.pop()
        printer.put(obj.text if isinstance(obj, String) else to_string(obj))

    def op_break(ip) -> None:
        printer.brk(ip.pop_int())

    def op_begin(ip) -> None:
        printer.begin(ip.pop_int())

    def op_end(ip) -> None:
        printer.end()

    def op_newline(ip) -> None:
        printer.newline()

    interp.defop("Put", op_put)
    interp.defop("Break", op_break)
    interp.defop("Begin", op_begin)
    interp.defop("End", op_end)
    interp.defop("Newline", op_newline)


class _InterpOut:
    """Adapter so the prettyprinter always follows ``interp.stdout``."""

    def __init__(self, interp):
        self._interp = interp

    def write(self, text: str) -> None:
        self._interp.write(text)
