"""Installs the complete operator set of ldb's PostScript dialect.

Beyond the standard categories this adds a handful of extension operators
the prelude's printer procedures need (``chr``, ``hexstring``) plus inert
compatibility stubs (``readonly``/``executeonly`` — the dialect drops
access attributes along with ``save``/``restore``).
"""

from __future__ import annotations

import time

from . import memops, ops_array, ops_control, ops_dict, ops_io, ops_math, ops_stack, ops_string, printer
from .objects import PSError, String


def op_chr(interp) -> None:
    """``code chr -> string``: the one-character string for a char code."""
    code = interp.pop_int()
    if not 0 <= code < 0x110000:
        raise PSError("rangecheck", "chr %d" % code)
    interp.push(String(chr(code)))


def op_hexstring(interp) -> None:
    """``int hexstring -> string``: lower-case hex, unsigned 32-bit view."""
    value = interp.pop_int()
    interp.push(String("%x" % (value & 0xFFFFFFFF)))


def op_readonly(interp) -> None:
    pass  # access attributes are not in the dialect; top of stack unchanged


def op_usertime(interp) -> None:
    interp.push(int(time.monotonic() * 1000))


def install(interp) -> None:
    ops_stack.install(interp)
    ops_math.install(interp)
    ops_dict.install(interp)
    ops_array.install(interp)
    ops_string.install(interp)
    ops_control.install(interp)
    ops_io.install(interp)
    printer.install(interp)
    memops.install(interp)
    interp.defop("chr", op_chr)
    interp.defop("hexstring", op_hexstring)
    interp.defop("readonly", op_readonly)
    interp.defop("executeonly", op_readonly)
    interp.defop("usertime", op_usertime)
    interp.systemdict["version"] = String("ldb-dialect-1")
