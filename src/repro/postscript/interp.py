"""The embedded PostScript interpreter.

Embedded in ldb is an interpreter for a dialect of PostScript (paper
Sec. 2).  One interpreter instance supports both the code in symbol-table
entries and expression evaluation.

Key behaviours this module implements:

* the operand stack, the dictionary stack, and execution of the four kinds
  of executable objects (names, operators, procedures, strings/readers);
* dynamic name binding through the dictionary stack, which ldb manipulates
  explicitly: when ldb changes target architectures it rebinds
  machine-dependent names by pushing a per-architecture dictionary
  (Sec. 5) — see :meth:`Interp.push_dict` / :meth:`Interp.pop_dict`;
* ``stopped`` applied to an executable reader, which is how ldb interprets
  PostScript arriving on the pipe from the expression server until the
  server tells it to stop (Sec. 3: ``cvx stopped``).
"""

from __future__ import annotations

import sys
from typing import Any, Callable, List, Optional, Union

from .objects import (
    Name,
    Operator,
    PSArray,
    PSDict,
    PSError,
    PSStop,
    Reader,
    String,
)
from .scanner import EOF, Scanner


class Interp:
    """A PostScript interpreter instance.

    ``stdout`` receives the output of the printing operators; pass a
    ``StringIO`` to capture it.  The standard operator set is installed by
    default; ldb's debugging extensions (abstract memories, the
    prettyprinter interface) are added by :func:`repro.postscript.new_interp`.
    """

    def __init__(self, stdout: Any = None):
        self.ostack: List[Any] = []
        self.systemdict = PSDict()
        self.userdict = PSDict()
        self.dstack: List[PSDict] = [self.systemdict, self.userdict]
        self.stdout = stdout if stdout is not None else sys.stdout
        #: the error that made the outermost ``stopped`` return true, or
        #: None when it stopped via ``stop`` (the $error analog: hosts
        #: read it to tell "done" from "failed")
        self.stop_error: Optional[PSError] = None
        self.systemdict["systemdict"] = self.systemdict
        self.systemdict["userdict"] = self.userdict
        from . import ops_core

        ops_core.install(self)

    # ------------------------------------------------------------------
    # operand stack

    def push(self, obj: Any) -> None:
        self.ostack.append(obj)

    def pop(self) -> Any:
        if not self.ostack:
            raise PSError("stackunderflow")
        return self.ostack.pop()

    def pop_n(self, n: int) -> List[Any]:
        """Pop ``n`` objects; the result is in stack order (deepest first)."""
        if len(self.ostack) < n:
            raise PSError("stackunderflow")
        if n == 0:
            return []
        taken = self.ostack[-n:]
        del self.ostack[-n:]
        return taken

    def peek(self, depth: int = 0) -> Any:
        if len(self.ostack) <= depth:
            raise PSError("stackunderflow")
        return self.ostack[-1 - depth]

    def pop_int(self) -> int:
        obj = self.pop()
        if isinstance(obj, bool) or not isinstance(obj, int):
            raise PSError("typecheck", "expected integer, got %r" % (obj,))
        return obj

    def pop_number(self) -> Union[int, float]:
        obj = self.pop()
        if isinstance(obj, bool) or not isinstance(obj, (int, float)):
            raise PSError("typecheck", "expected number, got %r" % (obj,))
        return obj

    def pop_bool(self) -> bool:
        obj = self.pop()
        if not isinstance(obj, bool):
            raise PSError("typecheck", "expected boolean, got %r" % (obj,))
        return obj

    def pop_string(self) -> String:
        obj = self.pop()
        if not isinstance(obj, String):
            raise PSError("typecheck", "expected string, got %r" % (obj,))
        return obj

    def pop_name_or_string_text(self) -> str:
        obj = self.pop()
        if isinstance(obj, (Name, String)):
            return obj.text
        raise PSError("typecheck", "expected name or string, got %r" % (obj,))

    def pop_array(self) -> PSArray:
        obj = self.pop()
        if not isinstance(obj, PSArray):
            raise PSError("typecheck", "expected array, got %r" % (obj,))
        return obj

    def pop_proc(self) -> PSArray:
        obj = self.pop()
        if not isinstance(obj, PSArray) or obj.literal:
            raise PSError("typecheck", "expected procedure, got %r" % (obj,))
        return obj

    def pop_dict(self) -> PSDict:
        obj = self.pop()
        if not isinstance(obj, PSDict):
            raise PSError("typecheck", "expected dict, got %r" % (obj,))
        return obj

    # ------------------------------------------------------------------
    # dictionary stack

    def push_dict(self, d: PSDict) -> None:
        self.dstack.append(d)

    def pop_dict_stack(self) -> PSDict:
        if len(self.dstack) <= 2:
            raise PSError("dictstackunderflow")
        return self.dstack.pop()

    def lookup(self, text: str) -> Any:
        """Resolve ``text`` through the dictionary stack, top to bottom."""
        for d in reversed(self.dstack):
            if text in d.store:
                return d.store[text]
        raise PSError("undefined", text)

    def lookup_dict(self, text: str) -> Optional[PSDict]:
        """The dictionary in which ``text`` is defined (the ``where`` op)."""
        for d in reversed(self.dstack):
            if text in d.store:
                return d
        return None

    def define(self, name: str, value: Any) -> None:
        """Define ``name`` in the current (topmost) dictionary."""
        self.dstack[-1][name] = value

    def defop(self, name: str, fn: Callable[["Interp"], None]) -> None:
        """Register a built-in operator in systemdict."""
        self.systemdict[name] = Operator(name, fn)

    # ------------------------------------------------------------------
    # execution

    def execute(self, obj: Any) -> None:
        """Execute one object fetched from a stack or returned by a lookup.

        Literal objects are pushed.  Executable names are resolved and their
        values executed; a value that is a procedure runs.
        """
        while True:
            if isinstance(obj, Operator):
                obj.fn(self)
                return
            if isinstance(obj, Name):
                if obj.literal:
                    self.push(obj)
                    return
                obj = self.lookup(obj.text)
                if isinstance(obj, PSArray) and not obj.literal:
                    self.run_proc(obj)
                    return
                continue  # execute the resolved value
            if isinstance(obj, PSArray):
                if obj.literal:
                    self.push(obj)
                else:
                    self.run_proc(obj)
                return
            if isinstance(obj, String):
                if obj.literal:
                    self.push(obj)
                else:
                    self.run_source(obj.text)
                return
            if isinstance(obj, Reader):
                if obj.literal:
                    self.push(obj)
                else:
                    self.run_source(obj.stream, name=obj.name)
                return
            self.push(obj)
            return

    def run_proc(self, proc: PSArray) -> None:
        """Run the body of a procedure (an executable array).

        Inside a body, nested procedures are pushed, not run — they are
        deferred, as in standard PostScript.
        """
        for element in proc.items:
            if isinstance(element, PSArray):
                self.push(element)
            elif isinstance(element, (Name, Operator)):
                self.execute(element)
            else:
                self.push(element)

    def call(self, obj: Any) -> None:
        """Apply ``obj`` as the body of a control operator (``if`` etc.).

        Procedures run; any other executable object is executed; literal
        objects are pushed.
        """
        if isinstance(obj, PSArray) and not obj.literal:
            self.run_proc(obj)
        else:
            self.execute(obj)

    def run_source(self, source: Any, name: str = "<ps>") -> None:
        """Scan and execute PostScript source (a string or a stream).

        Objects are executed as they are scanned, so running an open pipe
        makes progress incrementally; ``stop`` raised mid-stream leaves the
        rest of the stream unread (the caller owns the stream position).
        """
        scanner = Scanner(source, name)
        while True:
            obj = scanner.next_object()
            if obj is EOF:
                return
            if isinstance(obj, PSArray):  # a {...} body scanned at top level
                self.push(obj)
            else:
                self.execute(obj)

    def run(self, source: Any, name: str = "<ps>") -> None:
        """Public entry point: scan and execute ``source``."""
        self.run_source(source, name)

    def stopped_call(self, obj: Any) -> bool:
        """Execute ``obj``; True if it stopped (``stop`` or an error).

        ``stop_error`` records *why*: the :class:`PSError` when an error
        stopped execution, None for a plain ``stop`` or a clean finish.
        The outermost ``stopped`` wins, so an inner handler that caught
        and absorbed an error leaves no stale record behind."""
        try:
            self.call(obj)
        except PSStop:
            self.stop_error = None
            return True
        except PSError as err:
            self.stop_error = err
            return True
        self.stop_error = None
        return False

    # ------------------------------------------------------------------
    # conveniences for the host program

    def result(self) -> Any:
        """Pop and return the single result of a host-initiated run."""
        return self.pop()

    def write(self, text: str) -> None:
        self.stdout.write(text)
