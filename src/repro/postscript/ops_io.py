"""Output operators and reader/writer support.

Files in the dialect are Modula-3 readers and writers (paper Sec. 5); the
host program wraps streams in :class:`~repro.postscript.objects.Reader` /
:class:`~repro.postscript.objects.Writer` objects.
"""

from __future__ import annotations

from .objects import PSError, Reader, String, Writer, to_string


def op_print(interp) -> None:
    """Write a string to the interpreter's standard output.

    Note: ldb's PostScript prelude shadows ``print`` with the recursive
    value printer used by symbol-table type dictionaries; this operator is
    still reachable while the prelude dictionary is not on the stack.
    """
    interp.write(interp.pop_string().text)


def op_equals(interp) -> None:
    interp.write(to_string(interp.pop()) + "\n")


def op_equals_equals(interp) -> None:
    interp.write(repr(interp.pop()) + "\n")


def op_flush(interp) -> None:
    flush = getattr(interp.stdout, "flush", None)
    if flush is not None:
        flush()


def op_write(interp) -> None:
    text = interp.pop_string()
    writer = interp.pop()
    if not isinstance(writer, Writer):
        raise PSError("typecheck", "write to %r" % (writer,))
    writer.write(text.text)


def op_writeflush(interp) -> None:
    writer = interp.pop()
    if not isinstance(writer, Writer):
        raise PSError("typecheck", "writeflush of %r" % (writer,))
    flush = getattr(writer.stream, "flush", None)
    if flush is not None:
        flush()


def op_readline(interp) -> None:
    reader = interp.pop()
    if not isinstance(reader, Reader):
        raise PSError("typecheck", "readline of %r" % (reader,))
    line = reader.stream.readline()
    if isinstance(line, bytes):
        line = line.decode("latin-1")
    if line:
        interp.push(String(line.rstrip("\n")))
        interp.push(True)
    else:
        interp.push(False)


def op_pstack(interp) -> None:
    for obj in reversed(interp.ostack):
        interp.write(repr(obj) + "\n")


def install(interp) -> None:
    interp.defop("print", op_print)
    interp.defop("=", op_equals)
    interp.defop("==", op_equals_equals)
    interp.defop("flush", op_flush)
    interp.defop("write", op_write)
    interp.defop("writeflush", op_writeflush)
    interp.defop("readline", op_readline)
    interp.defop("pstack", op_pstack)
