"""Abstract-memory and location types, and their PostScript operators.

The dialect "adds new types and operators for debugging ... 'abstract
memories', which are a machine-independent representation of target
registers and memory" (paper Sec. 2).

An abstract memory is a collection of *spaces* denoted by lower-case
letters — ``c`` code, ``d`` data, and per-machine extras such as ``r``
(general registers), ``f`` (floating registers), and ``x`` (extra
registers: program counter and virtual frame pointer on the MIPS analog).
Locations within a space are integer offsets (Sec. 4.1).

Given a memory and a location, the dialect can fetch and store three sizes
of integers (8, 16, 32 bits) and three sizes of floating-point values (32,
64, 80 bits) — the simplified model the paper adopted to match lcc's IR
types.  Fetched integers are returned signed (two's complement); unsigned
interpretations are applied above, by printer procedures or generated
expression code.

The concrete memory classes (wire, alias, register, joined) live in
:mod:`repro.ldb.memories`; this module owns only the base types and the
operators, so the interpreter stays independent of the debugger proper.
"""

from __future__ import annotations

from typing import Any, Optional, Union

from .objects import PSError, String

#: Data kinds the abstract memory model supports.
INT_KINDS = ("i8", "i16", "i32")
FLOAT_KINDS = ("f32", "f64", "f80")
KIND_BYTES = {"i8": 1, "i16": 2, "i32": 4, "f32": 4, "f64": 8, "f80": 10}

#: Addressing modes.
ABSOLUTE = "absolute"
IMMEDIATE = "immediate"


class Location:
    """A location in an abstract memory: (space, offset) or an immediate.

    An immediate location carries its value directly; the alias memory maps
    registers with no home in target memory (the MIPS virtual frame
    pointer, for example) to immediate locations (Sec. 4.1).  Immediate
    locations are mutable cells so that stores (e.g. to the program
    counter) take effect and can be written back on continue.
    """

    __slots__ = ("mode", "space", "offset", "value")

    ps_type_name = "locationtype"
    literal = True

    def __init__(self, space: str = "", offset: int = 0,
                 mode: str = ABSOLUTE, value: Any = None):
        self.mode = mode
        self.space = space
        self.offset = offset
        self.value = value

    @classmethod
    def absolute(cls, space: str, offset: int) -> "Location":
        return cls(space, offset, ABSOLUTE)

    @classmethod
    def immediate(cls, value: Any) -> "Location":
        return cls(mode=IMMEDIATE, value=value)

    def shifted(self, delta: int) -> "Location":
        if self.mode != ABSOLUTE:
            raise PSError("typecheck", "Shifted on non-absolute location")
        return Location(self.space, self.offset + delta, ABSOLUTE)

    def __eq__(self, other: Any) -> bool:
        return (isinstance(other, Location)
                and other.mode == self.mode
                and other.space == self.space
                and other.offset == self.offset
                and (self.mode != IMMEDIATE or other.value == self.value))

    def __hash__(self) -> int:
        return hash((self.mode, self.space, self.offset))

    def __repr__(self) -> str:
        if self.mode == IMMEDIATE:
            return "-loc:imm=%r-" % (self.value,)
        return "-loc:%s+%d-" % (self.space, self.offset)


class AbstractMemory:
    """Base class for abstract memories (paper Sec. 4.1).

    Subclasses implement :meth:`fetch` and :meth:`store` for the kinds in
    ``INT_KINDS`` + ``FLOAT_KINDS``.  All memories honor the immediate
    addressing mode here, so subclasses only see absolute locations.
    """

    ps_type_name = "memorytype"
    literal = True

    #: Spaces this memory serves; None means "any" (used by joined parents).
    spaces: Optional[str] = None

    def fetch(self, loc: Location, kind: str) -> Union[int, float]:
        if loc.mode == IMMEDIATE:
            return loc.value
        return self.fetch_absolute(loc, kind)

    def store(self, loc: Location, kind: str, value: Union[int, float]) -> None:
        if loc.mode == IMMEDIATE:
            loc.value = value
            return
        self.store_absolute(loc, kind, value)

    def fetch_absolute(self, loc: Location, kind: str) -> Union[int, float]:
        raise PSError("invalidaccess", "fetch from %r" % (self,))

    def store_absolute(self, loc: Location, kind: str, value: Union[int, float]) -> None:
        raise PSError("invalidaccess", "store to %r" % (self,))

    # -- cache hooks (no-ops except on caching memories) -------------------
    # Machine-dependent code warms and drops caches through the abstract
    # interface, so the same walker runs against cached, plain-wire, and
    # local memories alike.

    def prefetch(self, space: str, start: int, length: int) -> None:
        pass

    def invalidate(self) -> None:
        pass

    def invalidate_range(self, space: str, start: int, length: int) -> None:
        pass


def mask_to_kind(value: int, kind: str) -> int:
    """Truncate ``value`` to ``kind``'s width, returning the signed view."""
    bits = KIND_BYTES[kind] * 8
    mask = (1 << bits) - 1
    value &= mask
    if value >= 1 << (bits - 1):
        value -= 1 << bits
    return value


def _pop_location(interp) -> Location:
    obj = interp.pop()
    if not isinstance(obj, Location):
        raise PSError("typecheck", "expected location, got %r" % (obj,))
    return obj


def _pop_memory(interp) -> AbstractMemory:
    obj = interp.pop()
    if not isinstance(obj, AbstractMemory):
        raise PSError("typecheck", "expected memory, got %r" % (obj,))
    return obj


def _make_fetch(kind: str):
    def op_fetch(interp) -> None:
        loc = _pop_location(interp)
        mem = _pop_memory(interp)
        interp.push(mem.fetch(loc, kind))

    return op_fetch


def _make_store(kind: str):
    def op_store(interp) -> None:
        value = interp.pop_number()
        loc = _pop_location(interp)
        mem = _pop_memory(interp)
        if kind in FLOAT_KINDS:
            value = float(value)
        mem.store(loc, kind, value)

    return op_store


def op_absolute(interp) -> None:
    """``offset space Absolute -> loc``: an absolute location."""
    space = interp.pop_name_or_string_text()
    offset = interp.pop_int()
    interp.push(Location.absolute(space, offset))


def op_immediate(interp) -> None:
    """``value Immediate -> loc``: an immediate location holding value."""
    interp.push(Location.immediate(interp.pop()))


def op_shifted(interp) -> None:
    """``loc n Shifted -> loc'``: the location n bytes past loc."""
    delta = interp.pop_int()
    loc = _pop_location(interp)
    interp.push(loc.shifted(delta))


def op_locspace(interp) -> None:
    loc = _pop_location(interp)
    interp.push(String(loc.space))


def op_locoffset(interp) -> None:
    loc = _pop_location(interp)
    interp.push(loc.offset)


def install(interp) -> None:
    for kind in INT_KINDS + FLOAT_KINDS:
        bits = KIND_BYTES[kind] * 8
        prefix = "fetch" if kind.startswith("i") else "fetchf"
        sprefix = "store" if kind.startswith("i") else "storef"
        interp.defop("%s%d" % (prefix, bits), _make_fetch(kind))
        interp.defop("%s%d" % (sprefix, bits), _make_store(kind))
    interp.defop("Absolute", op_absolute)
    interp.defop("Immediate", op_immediate)
    interp.defop("Shifted", op_shifted)
    interp.defop("locspace", op_locspace)
    interp.defop("locoffset", op_locoffset)
