"""Scanner for ldb's PostScript dialect.

The scanner reads PostScript source incrementally — from a string or from a
stream such as the open pipe to the expression server — and yields fully
built objects: numbers, names, strings, and procedure bodies (``{...}``).

The tokens ``[``, ``]``, ``<<`` and ``>>`` are returned as executable names;
the corresponding operators (mark, array-building, dict-building) live in
systemdict, exactly as in Adobe PostScript.

Radix numbers (``16#000023d8``) are supported because the loader table
(paper Sec. 3) uses them for addresses.

The scanner has a deliberately fast path for string bodies: the paper
(Sec. 5) defers the *lexical analysis* of quoted PostScript code by reading
it as a string, which "the scanner reads quickly", cutting symbol-table read
time by 40%.  ``bench_deferral.py`` measures that effect against this
implementation.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Union

from .objects import Name, PSArray, PSError, String

_WHITESPACE = " \t\r\n\f\0"
_DELIMITERS = "()<>[]{}/%"
_REGULAR_BREAK = set(_WHITESPACE) | set(_DELIMITERS)


class CharSource:
    """An incremental character source over a string or a readable stream.

    Stream input is buffered a line at a time so that scanning an open pipe
    makes progress as soon as the writer sends a newline-terminated chunk.
    """

    def __init__(self, source: Union[str, Any], name: str = "<ps>"):
        self.name = name
        if isinstance(source, str):
            self._buf = source
            self._stream = None
        else:
            self._buf = ""
            self._stream = source
        self._pos = 0
        self.line = 1

    def _fill(self) -> bool:
        """Refill the buffer from the stream; False at end of input."""
        if self._stream is None:
            return False
        chunk = self._stream.readline()
        if isinstance(chunk, bytes):
            chunk = chunk.decode("latin-1")
        if not chunk:
            return False
        self._buf = self._buf[self._pos :] + chunk
        self._pos = 0
        return True

    def peek(self) -> str:
        """The next character, or '' at end of input."""
        if self._pos >= len(self._buf) and not self._fill():
            return ""
        return self._buf[self._pos]

    def next(self) -> str:
        ch = self.peek()
        if ch:
            self._pos += 1
            if ch == "\n":
                self.line += 1
        return ch

    def take_while(self, pred) -> str:
        """Consume and return the longest prefix satisfying ``pred``."""
        pieces: List[str] = []
        while True:
            start = self._pos
            buf = self._buf
            n = len(buf)
            i = start
            while i < n and pred(buf[i]):
                i += 1
            if i > start:
                pieces.append(buf[start:i])
                self.line += buf.count("\n", start, i)
                self._pos = i
            if i < n or not self._fill():
                break
        return "".join(pieces)


class Scanner:
    """Reads PostScript objects one at a time from a :class:`CharSource`."""

    def __init__(self, source: Union[str, Any], name: str = "<ps>"):
        self.src = source if isinstance(source, CharSource) else CharSource(source, name)

    def __iter__(self) -> Iterator[Any]:
        while True:
            obj = self.next_object()
            if obj is _EOF:
                return
            yield obj

    def next_object(self) -> Any:
        """Scan and return the next object, or the EOF sentinel.

        ``{`` builds a complete (possibly nested) procedure body.
        """
        token = self._next_token()
        if token is _EOF:
            return _EOF
        if token == "{":
            return self._scan_procedure()
        if token == "}":
            raise PSError("syntaxerror", "unmatched } at line %d" % self.src.line)
        return token

    def _scan_procedure(self) -> PSArray:
        items: List[Any] = []
        while True:
            token = self._next_token()
            if token is _EOF:
                raise PSError("syntaxerror", "unterminated procedure")
            if token == "}":
                proc = PSArray(items)
                proc.literal = False
                return proc
            if token == "{":
                items.append(self._scan_procedure())
            else:
                items.append(token)

    def _next_token(self) -> Any:
        src = self.src
        while True:
            src.take_while(lambda c: c in _WHITESPACE)
            ch = src.peek()
            if ch == "":
                return _EOF
            if ch == "%":
                src.take_while(lambda c: c != "\n")
                continue
            break
        if ch == "(":
            return self._scan_string()
        if ch == "/":
            src.next()
            if src.peek() == "/":  # immediate names are treated as literal
                src.next()
            text = src.take_while(lambda c: c not in _REGULAR_BREAK)
            return Name(text, literal=True)
        if ch in "{}":
            src.next()
            return ch
        if ch in "[]":
            src.next()
            return Name(ch, literal=False)
        if ch == "<":
            src.next()
            if src.peek() != "<":
                raise PSError("syntaxerror", "hex strings are not in the dialect")
            src.next()
            return Name("<<", literal=False)
        if ch == ">":
            src.next()
            if src.peek() != ">":
                raise PSError("syntaxerror", "stray > at line %d" % src.line)
            src.next()
            return Name(">>", literal=False)
        if ch == ")":
            raise PSError("syntaxerror", "unmatched ) at line %d" % src.line)
        text = src.take_while(lambda c: c not in _REGULAR_BREAK)
        number = _parse_number(text)
        if number is not None:
            return number
        return Name(text, literal=False)

    def _scan_string(self) -> String:
        """Scan a ``(...)`` string with nesting and backslash escapes.

        This is the dialect's fast path: the common case (no escapes) is a
        bulk scan for the matching parenthesis.
        """
        src = self.src
        src.next()  # consume '('
        depth = 1
        pieces: List[str] = []
        while True:
            run = src.take_while(lambda c: c not in "()\\")
            if run:
                pieces.append(run)
            ch = src.next()
            if ch == "":
                raise PSError("syntaxerror", "unterminated string")
            if ch == "(":
                depth += 1
                pieces.append("(")
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    return String("".join(pieces))
                pieces.append(")")
            else:  # backslash escape
                esc = src.next()
                if esc == "":
                    raise PSError("syntaxerror", "unterminated string escape")
                if esc == "n":
                    pieces.append("\n")
                elif esc == "t":
                    pieces.append("\t")
                elif esc == "r":
                    pieces.append("\r")
                elif esc == "\n":
                    pass  # line continuation
                elif esc in "01234567":
                    digits = esc
                    while len(digits) < 3 and src.peek() in "01234567":
                        digits += src.next()
                    pieces.append(chr(int(digits, 8)))
                else:
                    pieces.append(esc)  # \\, \(, \) and unknown escapes


def _parse_number(text: str) -> Optional[Union[int, float]]:
    """Parse ``text`` as a PostScript number, or return None.

    Handles integers, reals, and radix numbers like ``16#000023d8``.
    """
    if not text:
        return None
    first = text[0]
    if not (first.isdigit() or first in "+-."):
        return None
    try:
        return int(text, 10)
    except ValueError:
        pass
    if "#" in text:
        base_text, _, digits = text.partition("#")
        try:
            base = int(base_text, 10)
        except ValueError:
            return None
        if not 2 <= base <= 36 or not digits:
            return None
        try:
            return int(digits, base)
        except ValueError:
            raise PSError("syntaxerror", "bad radix number %r" % text)
    try:
        return float(text)
    except ValueError:
        return None


class _Eof:
    def __repr__(self) -> str:
        return "<EOF>"


#: Sentinel returned by :meth:`Scanner.next_object` at end of input.
_EOF = _Eof()
EOF = _EOF
