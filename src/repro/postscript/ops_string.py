"""String and conversion operators.

Strings are immutable (paper Sec. 5), so the mutating Adobe operators are
absent; ``cat`` builds a new string, the Modula-3 ``TEXT`` idiom.
"""

from __future__ import annotations

from .objects import (
    Name,
    PSError,
    String,
    cvlit,
    cvx,
    is_executable,
    to_string,
    type_name,
)


def op_cat(interp) -> None:
    b = interp.pop_string()
    a = interp.pop_string()
    interp.push(String(a.text + b.text))


def op_search(interp) -> None:
    seek = interp.pop_string()
    where = interp.pop_string()
    at = where.text.find(seek.text)
    if at < 0:
        interp.push(where)
        interp.push(False)
    else:
        interp.push(String(where.text[at + len(seek.text) :]))  # post
        interp.push(String(seek.text))  # match
        interp.push(String(where.text[:at]))  # pre
        interp.push(True)


def op_anchorsearch(interp) -> None:
    seek = interp.pop_string()
    where = interp.pop_string()
    if where.text.startswith(seek.text):
        interp.push(String(where.text[len(seek.text) :]))
        interp.push(String(seek.text))
        interp.push(True)
    else:
        interp.push(where)
        interp.push(False)


def op_cvs(interp) -> None:
    interp.push(String(to_string(interp.pop())))


def op_cvi(interp) -> None:
    obj = interp.pop()
    if isinstance(obj, bool):
        raise PSError("typecheck", "cvi of boolean")
    if isinstance(obj, int):
        interp.push(obj)
    elif isinstance(obj, float):
        interp.push(int(obj))
    elif isinstance(obj, String):
        try:
            interp.push(int(float(obj.text)) if "." in obj.text else int(obj.text, 0))
        except ValueError:
            raise PSError("syntaxerror", "cvi of %r" % obj.text)
    else:
        raise PSError("typecheck", "cvi of %r" % (obj,))


def op_cvr(interp) -> None:
    obj = interp.pop()
    if isinstance(obj, bool):
        raise PSError("typecheck", "cvr of boolean")
    if isinstance(obj, (int, float)):
        interp.push(float(obj))
    elif isinstance(obj, String):
        try:
            interp.push(float(obj.text))
        except ValueError:
            raise PSError("syntaxerror", "cvr of %r" % obj.text)
    else:
        raise PSError("typecheck", "cvr of %r" % (obj,))


def op_cvn(interp) -> None:
    text = interp.pop_string()
    interp.push(Name(text.text, literal=text.literal))


def op_cvx(interp) -> None:
    interp.push(cvx(interp.pop()))


def op_cvlit(interp) -> None:
    interp.push(cvlit(interp.pop()))


def op_xcheck(interp) -> None:
    interp.push(is_executable(interp.pop()))


def op_type(interp) -> None:
    interp.push(Name(type_name(interp.pop()), literal=True))


def install(interp) -> None:
    interp.defop("cat", op_cat)
    interp.defop("search", op_search)
    interp.defop("anchorsearch", op_anchorsearch)
    interp.defop("cvs", op_cvs)
    interp.defop("cvi", op_cvi)
    interp.defop("cvr", op_cvr)
    interp.defop("cvn", op_cvn)
    interp.defop("cvx", op_cvx)
    interp.defop("cvlit", op_cvlit)
    interp.defop("xcheck", op_xcheck)
    interp.defop("type", op_type)
