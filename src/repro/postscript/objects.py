"""Object model for ldb's embedded PostScript dialect.

The paper (Sec. 5) describes the dialect's deviations from Adobe PostScript:

* strings are immutable (for compatibility with Modula-3 ``TEXT``) — we wrap
  Python ``str``;
* there are no ``save``/``restore`` operators — memory is reclaimed by the
  host garbage collector;
* there are no substrings or subarrays;
* interpreter errors raise host-language exceptions (here: :class:`PSError`);
* files are readers or writers;
* font and imaging types are omitted; debugging types (abstract memories and
  locations, see :mod:`repro.postscript.memops`) are added.

Every PostScript object carries an attribute that says whether it is literal
or executable; the distinction is explicit, never inferred from context
(Sec. 5).  Python ``int``, ``float`` and ``bool`` stand in for PostScript
numbers and booleans, which are always literal.  ``None`` is the PostScript
``null`` object.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple


class PSError(Exception):
    """A PostScript interpreter error.

    ``errname`` is the standard PostScript error name (``typecheck``,
    ``stackunderflow``, ``undefined``, ``rangecheck`` ...).  The paper notes
    that interpreter errors raise Modula-3 exceptions; ``PSError`` is the
    Python analog, and it cooperates with the ``stopped`` operator.
    """

    def __init__(self, errname: str, detail: str = ""):
        self.errname = errname
        self.detail = detail
        message = errname if not detail else "%s: %s" % (errname, detail)
        super().__init__(message)


class PSStop(Exception):
    """Raised by the ``stop`` operator; caught by ``stopped``."""


class PSExit(Exception):
    """Raised by ``exit``; caught by the enclosing looping operator."""


class Name:
    """A PostScript name.

    Names may be literal (``/foo``) or executable (``foo``).  Name characters
    include anything that is not whitespace or a delimiter, so names such as
    ``&elemsize`` used by the paper's printer procedures are ordinary names.
    """

    __slots__ = ("text", "literal")

    def __init__(self, text: str, literal: bool = False):
        self.text = text
        self.literal = literal

    def as_literal(self) -> "Name":
        return Name(self.text, literal=True)

    def as_executable(self) -> "Name":
        return Name(self.text, literal=False)

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, Name) and other.text == self.text

    def __hash__(self) -> int:
        return hash(("psname", self.text))

    def __repr__(self) -> str:
        return ("/" if self.literal else "") + self.text


class String:
    """An immutable PostScript string.

    Strings are literal by default; ``cvx`` produces an executable string,
    which, when executed, is scanned and interpreted as PostScript source.
    """

    __slots__ = ("text", "literal")

    def __init__(self, text: str, literal: bool = True):
        self.text = text
        self.literal = literal

    def __len__(self) -> int:
        return len(self.text)

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, String) and other.text == self.text

    def __hash__(self) -> int:
        return hash(("psstring", self.text))

    def __repr__(self) -> str:
        return "(%s)" % self.text


class PSArray:
    """A PostScript array; an executable array is a procedure."""

    __slots__ = ("items", "literal")

    def __init__(self, items: Optional[List[Any]] = None, literal: bool = True):
        self.items = items if items is not None else []
        self.literal = literal

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.items)

    def __getitem__(self, index: int) -> Any:
        return self.items[index]

    def __setitem__(self, index: int, value: Any) -> None:
        self.items[index] = value

    def __repr__(self) -> str:
        opener, closer = ("{", "}") if not self.literal else ("[", "]")
        return opener + " " + " ".join(repr(x) for x in self.items) + " " + closer


class PSDict:
    """A PostScript dictionary.

    Keys are normalized with :func:`ps_key` so that the name ``/x``, the
    executable name ``x``, and the string ``(x)`` all denote the same slot,
    matching PostScript's key-equality rules.
    """

    __slots__ = ("store", "literal")

    def __init__(self, store: Optional[Dict[Any, Any]] = None):
        self.store = store if store is not None else {}
        self.literal = True

    def __len__(self) -> int:
        return len(self.store)

    def __contains__(self, key: Any) -> bool:
        return ps_key(key) in self.store

    def get(self, key: Any, default: Any = None) -> Any:
        return self.store.get(ps_key(key), default)

    def __getitem__(self, key: Any) -> Any:
        norm = ps_key(key)
        if norm not in self.store:
            raise PSError("undefined", _key_text(norm))
        return self.store[norm]

    def __setitem__(self, key: Any, value: Any) -> None:
        self.store[ps_key(key)] = value

    def __delitem__(self, key: Any) -> None:
        norm = ps_key(key)
        if norm not in self.store:
            raise PSError("undefined", _key_text(norm))
        del self.store[norm]

    def keys(self) -> Iterator[Any]:
        return iter(self.store.keys())

    def items(self) -> Iterator[Tuple[Any, Any]]:
        return iter(self.store.items())

    def __repr__(self) -> str:
        inner = " ".join("/%s %r" % (k, v) for k, v in self.store.items())
        return "<< %s >>" % inner


class Operator:
    """A built-in operator: a named host function over the interpreter."""

    __slots__ = ("name", "fn")

    def __init__(self, name: str, fn: Callable):
        self.name = name
        self.fn = fn
        # operators are always executable

    literal = False

    def __repr__(self) -> str:
        return "--%s--" % self.name


class Mark:
    """The mark object pushed by ``[``, ``<<`` and ``mark``."""

    __slots__ = ("kind",)

    def __init__(self, kind: str = "mark"):
        self.kind = kind

    literal = True

    def __repr__(self) -> str:
        return "-mark-"


class Reader:
    """A PostScript file object open for reading.

    The paper replaces PostScript files with Modula-3 readers and writers;
    we wrap any object with a ``readline()``/``read()`` method, e.g. an open
    pipe from the expression server.  An executable reader, when executed,
    is scanned and interpreted until end of stream — that is how ldb
    implements "interpret PostScript until the expression server tells it to
    stop" via ``cvx stopped``.
    """

    __slots__ = ("stream", "literal", "name")

    def __init__(self, stream: Any, name: str = "<reader>"):
        self.stream = stream
        self.literal = True
        self.name = name

    def __repr__(self) -> str:
        return "-reader:%s-" % self.name


class Writer:
    """A PostScript file object open for writing (wraps ``write()``)."""

    __slots__ = ("stream", "literal", "name")

    def __init__(self, stream: Any, name: str = "<writer>"):
        self.stream = stream
        self.literal = True
        self.name = name

    def write(self, text: str) -> None:
        self.stream.write(text)

    def __repr__(self) -> str:
        return "-writer:%s-" % self.name


#: The PostScript ``null`` object.
NULL = None


def ps_key(key: Any) -> Any:
    """Normalize ``key`` for use as a dictionary key.

    Names and strings with the same text are the same key; other hashable
    objects are used directly.
    """
    if isinstance(key, Name):
        return key.text
    if isinstance(key, String):
        return key.text
    if isinstance(key, (PSArray, PSDict)):
        return id(key)
    return key


def _key_text(norm: Any) -> str:
    return norm if isinstance(norm, str) else repr(norm)


def is_executable(obj: Any) -> bool:
    """True if executing ``obj`` does something other than push it."""
    if isinstance(obj, Operator):
        return True
    if isinstance(obj, (Name, String, PSArray, Reader)):
        return not obj.literal
    return False


def cvlit(obj: Any) -> Any:
    """Return a literal version of ``obj`` (the ``cvlit`` operator)."""
    if isinstance(obj, Name):
        return Name(obj.text, literal=True)
    if isinstance(obj, String):
        return String(obj.text, literal=True)
    if isinstance(obj, PSArray):
        lit = PSArray(obj.items)
        lit.literal = True
        return lit
    if isinstance(obj, Reader):
        lit = Reader(obj.stream, obj.name)
        return lit
    return obj


def cvx(obj: Any) -> Any:
    """Return an executable version of ``obj`` (the ``cvx`` operator)."""
    if isinstance(obj, Name):
        return Name(obj.text, literal=False)
    if isinstance(obj, String):
        return String(obj.text, literal=False)
    if isinstance(obj, PSArray):
        exe = PSArray(obj.items)
        exe.literal = False
        return exe
    if isinstance(obj, Reader):
        exe = Reader(obj.stream, obj.name)
        exe.literal = False
        return exe
    return obj


def type_name(obj: Any) -> str:
    """The PostScript type name of ``obj`` (the ``type`` operator)."""
    if obj is None:
        return "nulltype"
    if isinstance(obj, bool):
        return "booleantype"
    if isinstance(obj, int):
        return "integertype"
    if isinstance(obj, float):
        return "realtype"
    if isinstance(obj, Name):
        return "nametype"
    if isinstance(obj, String):
        return "stringtype"
    if isinstance(obj, PSArray):
        return "arraytype"
    if isinstance(obj, PSDict):
        return "dicttype"
    if isinstance(obj, Operator):
        return "operatortype"
    if isinstance(obj, Mark):
        return "marktype"
    if isinstance(obj, Reader):
        return "readertype"
    if isinstance(obj, Writer):
        return "writertype"
    # Extension types (abstract memories, locations) report their own names.
    name = getattr(obj, "ps_type_name", None)
    if name is not None:
        return name
    return "foreigntype"


def to_string(obj: Any) -> str:
    """Convert ``obj`` to the text the ``cvs`` / ``Put`` operators use."""
    if obj is None:
        return "null"
    if isinstance(obj, bool):
        return "true" if obj else "false"
    if isinstance(obj, float):
        text = repr(obj)
        return text
    if isinstance(obj, int):
        return str(obj)
    if isinstance(obj, (Name, String)):
        return obj.text
    if isinstance(obj, Operator):
        return obj.name
    return repr(obj)
