"""Arithmetic, bitwise, and relational operators.

Integer arithmetic follows PostScript: ``div`` always yields a real,
``idiv`` and ``mod`` are integer-only.  ``and``/``or``/``xor``/``not``
operate on booleans or integers (bitwise), as in Adobe PostScript.
"""

from __future__ import annotations

import math

from .objects import Name, PSArray, PSDict, PSError, String


def _binary_number(interp):
    b = interp.pop_number()
    a = interp.pop_number()
    return a, b


def op_add(interp) -> None:
    a, b = _binary_number(interp)
    interp.push(a + b)


def op_sub(interp) -> None:
    a, b = _binary_number(interp)
    interp.push(a - b)


def op_mul(interp) -> None:
    a, b = _binary_number(interp)
    interp.push(a * b)


def op_div(interp) -> None:
    a, b = _binary_number(interp)
    if b == 0:
        raise PSError("undefinedresult", "div by zero")
    interp.push(a / b)


def op_idiv(interp) -> None:
    b = interp.pop_int()
    a = interp.pop_int()
    if b == 0:
        raise PSError("undefinedresult", "idiv by zero")
    quotient = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        quotient = -quotient
    interp.push(quotient)


def op_mod(interp) -> None:
    b = interp.pop_int()
    a = interp.pop_int()
    if b == 0:
        raise PSError("undefinedresult", "mod by zero")
    remainder = abs(a) % abs(b)
    interp.push(-remainder if a < 0 else remainder)


def op_neg(interp) -> None:
    interp.push(-interp.pop_number())


def op_abs(interp) -> None:
    interp.push(abs(interp.pop_number()))


def op_sqrt(interp) -> None:
    value = interp.pop_number()
    if value < 0:
        raise PSError("rangecheck", "sqrt of negative")
    interp.push(math.sqrt(value))


def op_exp(interp) -> None:
    exponent = interp.pop_number()
    base = interp.pop_number()
    interp.push(float(base) ** exponent)


def op_ln(interp) -> None:
    value = interp.pop_number()
    if value <= 0:
        raise PSError("rangecheck", "ln of nonpositive")
    interp.push(math.log(value))


def op_ceiling(interp) -> None:
    value = interp.pop_number()
    interp.push(value if isinstance(value, int) else float(math.ceil(value)))


def op_floor(interp) -> None:
    value = interp.pop_number()
    interp.push(value if isinstance(value, int) else float(math.floor(value)))


def op_round(interp) -> None:
    value = interp.pop_number()
    interp.push(value if isinstance(value, int) else float(math.floor(value + 0.5)))


def op_truncate(interp) -> None:
    value = interp.pop_number()
    interp.push(value if isinstance(value, int) else float(math.trunc(value)))


def op_bitshift(interp) -> None:
    shift = interp.pop_int()
    value = interp.pop_int()
    if shift >= 0:
        interp.push((value << shift) & 0xFFFFFFFF)
    else:
        interp.push((value & 0xFFFFFFFF) >> -shift)


def _comparable(interp):
    b = interp.pop()
    a = interp.pop()
    if isinstance(a, (Name, String)) and isinstance(b, (Name, String)):
        return a.text, b.text
    if isinstance(a, bool) or isinstance(b, bool):
        raise PSError("typecheck", "ordered comparison of booleans")
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return a, b
    raise PSError("typecheck", "cannot compare %r and %r" % (a, b))


def _equatable(obj):
    """Map ``obj`` to a value with PostScript equality semantics."""
    if isinstance(obj, (Name, String)):
        return ("text", obj.text)
    if isinstance(obj, (PSArray, PSDict)):
        return ("identity", id(obj))
    if isinstance(obj, bool):
        return ("bool", obj)
    if isinstance(obj, (int, float)):
        return ("number", float(obj))
    return ("other", obj)


def op_eq(interp) -> None:
    b = interp.pop()
    a = interp.pop()
    interp.push(_equatable(a) == _equatable(b))


def op_ne(interp) -> None:
    b = interp.pop()
    a = interp.pop()
    interp.push(_equatable(a) != _equatable(b))


def op_gt(interp) -> None:
    a, b = _comparable(interp)
    interp.push(a > b)


def op_ge(interp) -> None:
    a, b = _comparable(interp)
    interp.push(a >= b)


def op_lt(interp) -> None:
    a, b = _comparable(interp)
    interp.push(a < b)


def op_le(interp) -> None:
    a, b = _comparable(interp)
    interp.push(a <= b)


def _logical(interp, int_fn, bool_fn) -> None:
    b = interp.pop()
    a = interp.pop()
    if isinstance(a, bool) and isinstance(b, bool):
        interp.push(bool_fn(a, b))
    elif isinstance(a, bool) or isinstance(b, bool):
        raise PSError("typecheck", "logical op mixes boolean and integer")
    elif isinstance(a, int) and isinstance(b, int):
        interp.push(int_fn(a, b))
    else:
        raise PSError("typecheck", "logical op on %r, %r" % (a, b))


def op_and(interp) -> None:
    _logical(interp, lambda a, b: a & b, lambda a, b: a and b)


def op_or(interp) -> None:
    _logical(interp, lambda a, b: a | b, lambda a, b: a or b)


def op_xor(interp) -> None:
    _logical(interp, lambda a, b: a ^ b, lambda a, b: a is not b)


def op_not(interp) -> None:
    a = interp.pop()
    if isinstance(a, bool):
        interp.push(not a)
    elif isinstance(a, int):
        interp.push(~a)
    else:
        raise PSError("typecheck", "not on %r" % (a,))


def op_min(interp) -> None:
    a, b = _binary_number(interp)
    interp.push(a if a <= b else b)


def op_max(interp) -> None:
    a, b = _binary_number(interp)
    interp.push(a if a >= b else b)


def install(interp) -> None:
    interp.defop("add", op_add)
    interp.defop("sub", op_sub)
    interp.defop("mul", op_mul)
    interp.defop("div", op_div)
    interp.defop("idiv", op_idiv)
    interp.defop("mod", op_mod)
    interp.defop("neg", op_neg)
    interp.defop("abs", op_abs)
    interp.defop("sqrt", op_sqrt)
    interp.defop("exp", op_exp)
    interp.defop("ln", op_ln)
    interp.defop("ceiling", op_ceiling)
    interp.defop("floor", op_floor)
    interp.defop("round", op_round)
    interp.defop("truncate", op_truncate)
    interp.defop("bitshift", op_bitshift)
    interp.defop("eq", op_eq)
    interp.defop("ne", op_ne)
    interp.defop("gt", op_gt)
    interp.defop("ge", op_ge)
    interp.defop("lt", op_lt)
    interp.defop("le", op_le)
    interp.defop("and", op_and)
    interp.defop("or", op_or)
    interp.defop("xor", op_xor)
    interp.defop("not", op_not)
    interp.defop("min", op_min)
    interp.defop("max", op_max)
    interp.systemdict["true"] = True
    interp.systemdict["false"] = False
    interp.systemdict["null"] = None
