"""Control operators: exec, if, loops, exit, stop, stopped, bind.

``stopped`` is load-bearing in ldb: the debugger applies ``cvx stopped``
to the open pipe from the expression server, interpreting PostScript as it
arrives until the server's final ``ExpressionServer.result`` executes
``stop`` (paper Sec. 3).
"""

from __future__ import annotations

from .objects import Name, Operator, PSArray, PSError, PSExit, PSStop


def op_exec(interp) -> None:
    interp.execute(interp.pop())


def op_if(interp) -> None:
    proc = interp.pop()
    condition = interp.pop_bool()
    if condition:
        interp.call(proc)


def op_ifelse(interp) -> None:
    proc_false = interp.pop()
    proc_true = interp.pop()
    condition = interp.pop_bool()
    interp.call(proc_true if condition else proc_false)


def op_for(interp) -> None:
    proc = interp.pop()
    limit = interp.pop_number()
    step = interp.pop_number()
    start = interp.pop_number()
    if step == 0:
        raise PSError("rangecheck", "for with zero step")
    control = start
    try:
        if step > 0:
            while control <= limit:
                interp.push(control)
                interp.call(proc)
                control += step
        else:
            while control >= limit:
                interp.push(control)
                interp.call(proc)
                control += step
    except PSExit:
        pass


def op_repeat(interp) -> None:
    proc = interp.pop()
    n = interp.pop_int()
    if n < 0:
        raise PSError("rangecheck", "repeat %d" % n)
    try:
        for _ in range(n):
            interp.call(proc)
    except PSExit:
        pass


def op_loop(interp) -> None:
    proc = interp.pop()
    try:
        while True:
            interp.call(proc)
    except PSExit:
        pass


def op_exit(interp) -> None:
    raise PSExit()


def op_stop(interp) -> None:
    raise PSStop()


def op_stopped(interp) -> None:
    interp.push(interp.stopped_call(interp.pop()))


def op_bind(interp) -> None:
    """Replace executable names bound to operators with the operators."""
    proc = interp.peek()
    if isinstance(proc, PSArray):
        _bind_body(interp, proc)


def _bind_body(interp, proc: PSArray) -> None:
    for i, element in enumerate(proc.items):
        if isinstance(element, Name) and not element.literal:
            try:
                value = interp.lookup(element.text)
            except PSError:
                continue
            if isinstance(value, Operator):
                proc.items[i] = value
        elif isinstance(element, PSArray) and not element.literal:
            _bind_body(interp, element)


def install(interp) -> None:
    interp.defop("exec", op_exec)
    interp.defop("if", op_if)
    interp.defop("ifelse", op_ifelse)
    interp.defop("for", op_for)
    interp.defop("repeat", op_repeat)
    interp.defop("loop", op_loop)
    interp.defop("exit", op_exit)
    interp.defop("stop", op_stop)
    interp.defop("stopped", op_stopped)
    interp.defop("bind", op_bind)
