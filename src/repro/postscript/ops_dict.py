"""Dictionary operators, including the ``<< ... >>`` literal syntax.

The dictionary stack is central to ldb: per-architecture dictionaries are
pushed with ``begin`` to rebind machine-dependent names when the debugger
changes target architectures (paper Sec. 5).
"""

from __future__ import annotations

from .objects import Mark, Name, PSArray, PSDict, PSError, String


def op_dict(interp) -> None:
    interp.pop_int()  # capacity hint, ignored — host dicts grow
    interp.push(PSDict())


def op_dict_begin_mark(interp) -> None:
    """The ``<<`` token: push a dict-mark."""
    interp.push(Mark("dict"))


def op_dict_end(interp) -> None:
    """The ``>>`` token: collect key/value pairs down to the mark."""
    pairs = []
    while True:
        obj = interp.pop()
        if isinstance(obj, Mark):
            break
        pairs.append(obj)
    if len(pairs) % 2 != 0:
        raise PSError("rangecheck", "odd number of objects in << >>")
    d = PSDict()
    pairs.reverse()
    for i in range(0, len(pairs), 2):
        d[pairs[i]] = pairs[i + 1]
    interp.push(d)


def op_begin(interp) -> None:
    interp.push_dict(interp.pop_dict())


def op_end(interp) -> None:
    interp.pop_dict_stack()


def op_def(interp) -> None:
    value = interp.pop()
    key = interp.pop()
    interp.dstack[-1][key] = value


def op_load(interp) -> None:
    key = interp.pop()
    if isinstance(key, (Name, String)):
        interp.push(interp.lookup(key.text))
    else:
        raise PSError("typecheck", "load of %r" % (key,))


def op_store(interp) -> None:
    value = interp.pop()
    key = interp.pop()
    if not isinstance(key, (Name, String)):
        raise PSError("typecheck", "store of %r" % (key,))
    holder = interp.lookup_dict(key.text)
    if holder is None:
        holder = interp.dstack[-1]
    holder[key] = value


def op_get(interp) -> None:
    key = interp.pop()
    container = interp.pop()
    if isinstance(container, PSDict):
        interp.push(container[key])
    elif isinstance(container, PSArray):
        index = _index(key, len(container))
        interp.push(container[index])
    elif isinstance(container, String):
        index = _index(key, len(container))
        interp.push(ord(container.text[index]))
    else:
        raise PSError("typecheck", "get from %r" % (container,))


def op_put(interp) -> None:
    value = interp.pop()
    key = interp.pop()
    container = interp.pop()
    if isinstance(container, PSDict):
        container[key] = value
    elif isinstance(container, PSArray):
        container[_index(key, len(container))] = value
    elif isinstance(container, String):
        raise PSError("invalidaccess", "strings are immutable in this dialect")
    else:
        raise PSError("typecheck", "put into %r" % (container,))


def op_known(interp) -> None:
    key = interp.pop()
    d = interp.pop_dict()
    interp.push(key in d)


def op_where(interp) -> None:
    key = interp.pop()
    if not isinstance(key, (Name, String)):
        raise PSError("typecheck", "where of %r" % (key,))
    holder = interp.lookup_dict(key.text)
    if holder is None:
        interp.push(False)
    else:
        interp.push(holder)
        interp.push(True)


def op_currentdict(interp) -> None:
    interp.push(interp.dstack[-1])


def op_countdictstack(interp) -> None:
    interp.push(len(interp.dstack))


def op_undef(interp) -> None:
    key = interp.pop()
    d = interp.pop_dict()
    if key in d:
        del d[key]


def op_maxlength(interp) -> None:
    d = interp.pop_dict()
    interp.push(max(len(d), 1))


def _index(key, length: int) -> int:
    if isinstance(key, bool) or not isinstance(key, int):
        raise PSError("typecheck", "index %r" % (key,))
    if not 0 <= key < length:
        raise PSError("rangecheck", "index %d out of %d" % (key, length))
    return key


def install(interp) -> None:
    interp.defop("dict", op_dict)
    interp.defop("<<", op_dict_begin_mark)
    interp.defop(">>", op_dict_end)
    interp.defop("begin", op_begin)
    interp.defop("end", op_end)
    interp.defop("def", op_def)
    interp.defop("load", op_load)
    interp.defop("store", op_store)
    interp.defop("get", op_get)
    interp.defop("put", op_put)
    interp.defop("known", op_known)
    interp.defop("where", op_where)
    interp.defop("currentdict", op_currentdict)
    interp.defop("countdictstack", op_countdictstack)
    interp.defop("undef", op_undef)
    interp.defop("maxlength", op_maxlength)
