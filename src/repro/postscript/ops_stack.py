"""Operand-stack operators: dup, pop, exch, copy, index, roll, marks."""

from __future__ import annotations

from .objects import Mark, PSError


def op_dup(interp) -> None:
    interp.push(interp.peek())


def op_pop(interp) -> None:
    interp.pop()


def op_exch(interp) -> None:
    b, a = interp.pop(), interp.pop()
    interp.push(b)
    interp.push(a)


def op_copy(interp) -> None:
    n = interp.pop_int()
    if n < 0:
        raise PSError("rangecheck", "copy %d" % n)
    if n:
        if len(interp.ostack) < n:
            raise PSError("stackunderflow")
        interp.ostack.extend(interp.ostack[-n:])


def op_index(interp) -> None:
    n = interp.pop_int()
    if n < 0:
        raise PSError("rangecheck", "index %d" % n)
    interp.push(interp.peek(n))


def op_roll(interp) -> None:
    j = interp.pop_int()
    n = interp.pop_int()
    if n < 0:
        raise PSError("rangecheck", "roll %d" % n)
    if n == 0:
        return
    if len(interp.ostack) < n:
        raise PSError("stackunderflow")
    j %= n
    if j:
        seg = interp.ostack[-n:]
        interp.ostack[-n:] = seg[-j:] + seg[:-j]


def op_clear(interp) -> None:
    del interp.ostack[:]


def op_count(interp) -> None:
    interp.push(len(interp.ostack))


def op_mark(interp) -> None:
    interp.push(Mark())


def op_cleartomark(interp) -> None:
    while True:
        obj = interp.pop()
        if isinstance(obj, Mark):
            return


def op_counttomark(interp) -> None:
    for depth, obj in enumerate(reversed(interp.ostack)):
        if isinstance(obj, Mark):
            interp.push(depth)
            return
    raise PSError("unmatchedmark")


def install(interp) -> None:
    interp.defop("dup", op_dup)
    interp.defop("pop", op_pop)
    interp.defop("exch", op_exch)
    interp.defop("copy", op_copy)
    interp.defop("index", op_index)
    interp.defop("roll", op_roll)
    interp.defop("clear", op_clear)
    interp.defop("count", op_count)
    interp.defop("mark", op_mark)
    interp.defop("cleartomark", op_cleartomark)
    interp.defop("counttomark", op_counttomark)
