"""Array and polymorphic sequence operators.

There are no subarrays in the dialect (paper Sec. 5), so ``getinterval``
and ``putinterval`` are deliberately absent.
"""

from __future__ import annotations

from .objects import Mark, Name, PSArray, PSDict, PSError, String


def op_array(interp) -> None:
    n = interp.pop_int()
    if n < 0:
        raise PSError("rangecheck", "array %d" % n)
    interp.push(PSArray([None] * n))


def op_array_open(interp) -> None:
    """The ``[`` token: push an array-mark."""
    interp.push(Mark("array"))


def op_array_close(interp) -> None:
    """The ``]`` token: collect objects down to the mark into an array."""
    items = []
    while True:
        obj = interp.pop()
        if isinstance(obj, Mark):
            break
        items.append(obj)
    items.reverse()
    interp.push(PSArray(items))


def op_length(interp) -> None:
    obj = interp.pop()
    if isinstance(obj, (PSArray, PSDict, String)):
        interp.push(len(obj))
    elif isinstance(obj, Name):
        interp.push(len(obj.text))
    else:
        raise PSError("typecheck", "length of %r" % (obj,))


def op_aload(interp) -> None:
    arr = interp.pop_array()
    for item in arr.items:
        interp.push(item)
    interp.push(arr)


def op_astore(interp) -> None:
    arr = interp.pop_array()
    n = len(arr)
    values = interp.pop_n(n)
    arr.items[:] = values
    interp.push(arr)


def op_append(interp) -> None:
    """``array obj append -``: grow an array in place (dialect extension;
    the symbol-table loader accumulates procs/anchors with it)."""
    obj = interp.pop()
    arr = interp.pop_array()
    arr.items.append(obj)


def op_forall(interp) -> None:
    from .objects import PSExit

    proc = interp.pop()
    container = interp.pop()
    try:
        if isinstance(container, PSArray):
            for item in container.items:
                interp.push(item)
                interp.call(proc)
        elif isinstance(container, PSDict):
            for key, value in list(container.items()):
                interp.push(Name(key, literal=True) if isinstance(key, str) else key)
                interp.push(value)
                interp.call(proc)
        elif isinstance(container, String):
            for ch in container.text:
                interp.push(ord(ch))
                interp.call(proc)
        else:
            raise PSError("typecheck", "forall over %r" % (container,))
    except PSExit:
        pass


def install(interp) -> None:
    interp.defop("array", op_array)
    interp.defop("[", op_array_open)
    interp.defop("]", op_array_close)
    interp.defop("length", op_length)
    interp.defop("append", op_append)
    interp.defop("aload", op_aload)
    interp.defop("astore", op_astore)
    interp.defop("forall", op_forall)
