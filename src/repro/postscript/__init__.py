"""ldb's embedded PostScript dialect.

One interpreter instance supports both the code in symbol-table entries
and expression evaluation (paper Sec. 3).  Use :func:`new_interp` to get
an interpreter with the standard operators, the debugging extensions, and
the shared prelude loaded; push a per-architecture dictionary with
:func:`load_arch_dict` to bind machine-dependent names (Sec. 5).
"""

from __future__ import annotations

import os
from typing import Any

from .interp import Interp
from .objects import (
    NULL,
    Mark,
    Name,
    Operator,
    PSArray,
    PSDict,
    PSError,
    PSExit,
    PSStop,
    Reader,
    String,
    Writer,
    cvlit,
    cvx,
    is_executable,
    ps_key,
    type_name,
)
from .memops import (
    ABSOLUTE,
    FLOAT_KINDS,
    IMMEDIATE,
    INT_KINDS,
    KIND_BYTES,
    AbstractMemory,
    Location,
    mask_to_kind,
)
from .printer import PrettyPrinter
from .scanner import EOF, Scanner

_DATA_DIR = os.path.join(os.path.dirname(__file__), "data")

#: Architectures with machine-dependent PostScript shipped in this package.
ARCH_PS = ("rmips", "rsparc", "rm68k", "rvax")


def data_path(name: str) -> str:
    """Path to a PostScript file shipped with the package."""
    return os.path.join(_DATA_DIR, name)


def read_data(name: str) -> str:
    with open(data_path(name)) as f:
        return f.read()


def new_interp(stdout: Any = None, prelude: bool = True) -> Interp:
    """A fresh interpreter with the shared prelude loaded into userdict.

    Reading the initial PostScript is one of the startup phases the paper
    times (Sec. 7); ``bench_table_startup.py`` measures this call.
    """
    interp = Interp(stdout=stdout)
    if prelude:
        interp.run(read_data("prelude.ps"), name="prelude.ps")
        interp.run(read_data("symload.ps"), name="symload.ps")
        # one machine-dependent dictionary per target architecture; the
        # loader table selects one with UseArchitecture (Sec. 5), because
        # register locations like `30 Regset0 Absolute` are computed when
        # the symbol table is interpreted (Sec. 2)
        arch_dicts = PSDict()
        for arch in ARCH_PS:
            arch_dicts[arch] = load_arch_dict(interp, arch)
        arch_dicts["rmipsel"] = arch_dicts["rmips"]  # same MD PostScript
        interp.systemdict["ArchDicts"] = arch_dicts
    return interp


def load_arch_dict(interp: Interp, arch: str) -> PSDict:
    """Build the machine-dependent dictionary for ``arch``.

    The returned dictionary is *not* left on the dictionary stack; ldb
    pushes it (and pops the previous target's) when it changes
    architectures, rebinding the machine-dependent names dynamically
    (paper Sec. 5: "we supply one such dictionary for each target
    architecture").
    """
    if arch not in ARCH_PS:
        raise PSError("undefined", "no machine-dependent PostScript for %r" % arch)
    arch_dict = PSDict()
    interp.push_dict(arch_dict)
    try:
        interp.run(read_data(arch + ".ps"), name=arch + ".ps")
    finally:
        interp.pop_dict_stack()
    return arch_dict


__all__ = [
    "ABSOLUTE",
    "ARCH_PS",
    "AbstractMemory",
    "EOF",
    "FLOAT_KINDS",
    "IMMEDIATE",
    "INT_KINDS",
    "Interp",
    "KIND_BYTES",
    "Location",
    "Mark",
    "NULL",
    "Name",
    "Operator",
    "PSArray",
    "PSDict",
    "PSError",
    "PSExit",
    "PSStop",
    "PrettyPrinter",
    "Reader",
    "Scanner",
    "String",
    "Writer",
    "cvlit",
    "cvx",
    "data_path",
    "is_executable",
    "load_arch_dict",
    "mask_to_kind",
    "new_interp",
    "ps_key",
    "read_data",
    "type_name",
]
