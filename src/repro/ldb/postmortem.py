"""Post-mortem debugging: a dead target behind the live-target API.

A core file (:class:`repro.machines.core.CoreFile`) holds everything
the nub knew at the moment the target died: the memory image, the saved
context address, the fault record, and the planted-breakpoint table.
:class:`CoreTransport` puts that image behind the
:class:`~repro.nub.session.Transport` interface, answering the same
FETCH/BLOCKFETCH/BREAKS conversation a live nub would — byte for byte,
including the big-endian reversal and the machine's saved-context
fixups — so the whole debugger stack above it (the wire cache, the
register DAG, the stack walkers, the expression server, the printers)
runs unchanged with no nub and no target process.

The one synthetic event is the fault itself: the first
:meth:`CoreTransport.recv_event` re-announces the recorded stop exactly
as the nub announced it when the target died.  Everything that would
*change* the target — stores, controls, breakpoint patches — draws
:class:`PostMortemError`, which the layers above already map to their
own typed errors: ``set x = 1`` fails with a clear message instead of
silently patching a corpse.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..machines import get_arch
from ..machines.core import CoreError, CoreFile
from ..nub import protocol
from ..nub.channel import ChannelClosed
from ..nub.nub import nub_md_for
from ..nub.session import NubError, Transport, TransportError


class PostMortemError(TransportError):
    """A request that only a live target could serve (a store, a
    control, a breakpoint patch) reached a core-file transport."""


class CoreTransport(Transport):
    """A read-only :class:`Transport` over a core file.

    Replays the nub's side of the memory conversation against the
    core's memory image:

    * FETCH reads with the target's byte order, answers little-endian,
      and applies the machine's ``fix_fetched`` hook — the rmips
      saved-float word swap happens here exactly as on the live wire;
    * BLOCKFETCH answers raw memory images, with the same
      readable-prefix semantics for spans running off the image;
    * BREAKS answers the planted table recorded in the core, so the
      breakpoint layer adopts (and can display) what the dead debugger
      had planted;
    * DUMPCORE re-serializes the core, so saving a copy works;
    * everything mutating — STORE, BLOCKSTORE, PLANT, UNPLANT, and all
      controls — raises :class:`PostMortemError`.

    ``block_active`` is True (the image is local; blocks are free) and
    ``timetravel_active`` False (the future is over), so the cache runs
    at full speed and reverse commands refuse before "sending".
    """

    block_active = True
    timetravel_active = False
    core_active = True

    def __init__(self, core: CoreFile):
        self.core = core
        try:
            self.arch = get_arch(core.arch_name)
        except KeyError:
            raise CoreError("core names unknown architecture %r"
                            % core.arch_name)
        self.md = nub_md_for(self.arch)
        self.mem = core.memory()
        self._announced = False
        self.closed = False

    # -- the Transport interface ------------------------------------------

    def transact(self, msg: protocol.Message, expect: Iterable[int],
                 timeout: Optional[float] = None) -> protocol.Message:
        expect = tuple(expect)
        reply = self._serve(msg)
        if reply.mtype == protocol.MSG_ERROR:
            raise NubError(protocol.parse_error(reply), request=msg)
        if reply.mtype not in expect:
            raise TransportError("unexpected reply %r to %r" % (reply, msg))
        return reply

    def control(self, msg: protocol.Message) -> None:
        raise PostMortemError(
            "target is post-mortem (a core file): cannot %s"
            % protocol.type_name(msg.mtype).lower())

    def recv_event(self, timeout: Optional[float] = None) -> protocol.Message:
        # the one event a corpse has: the stop that killed it
        if not self._announced:
            self._announced = True
            return protocol.signal(self.core.signo, self.core.code,
                                   self.core.context_addr)
        raise ChannelClosed("no further events from a core file")

    def close(self) -> None:
        self.closed = True

    # -- the nub's half of the conversation, replayed ---------------------

    def _serve(self, msg: protocol.Message) -> protocol.Message:
        if msg.mtype == protocol.MSG_FETCH:
            return self._serve_fetch(msg)
        if msg.mtype == protocol.MSG_BLOCKFETCH:
            return self._serve_blockfetch(msg)
        if msg.mtype == protocol.MSG_BREAKS:
            return protocol.breaklist(self.core.planted)
        if msg.mtype == protocol.MSG_ICOUNT:
            return protocol.ckpt(protocol.NO_CKPT, self.core.icount)
        if msg.mtype == protocol.MSG_DUMPCORE:
            return protocol.data(self.core.to_bytes())
        if msg.mtype in (protocol.MSG_STORE, protocol.MSG_BLOCKSTORE,
                         protocol.MSG_PLANT, protocol.MSG_UNPLANT):
            raise PostMortemError(
                "target is post-mortem (a core file): core files are "
                "read-only, cannot %s" % protocol.type_name(msg.mtype).lower())
        return protocol.error(protocol.ERR_UNSUPPORTED)

    def _serve_fetch(self, msg: protocol.Message) -> protocol.Message:
        space, address, size = protocol.parse_fetch(msg)
        if space not in "cd":
            return protocol.error(protocol.ERR_BAD_SPACE)
        if size == 10 and not self.arch.has_f80:
            return protocol.error(protocol.ERR_BAD_MESSAGE)
        try:
            raw = self.mem.read_bytes(address, size)
        except Exception:
            return protocol.error(protocol.ERR_BAD_ADDRESS)
        raw_le = raw if self.arch.byteorder == "little" else raw[::-1]
        raw_le = self.md.fix_fetched(address, raw_le, self.core.context_addr)
        return protocol.data(raw_le)

    def _serve_blockfetch(self, msg: protocol.Message) -> protocol.Message:
        space, address, length = protocol.parse_blockfetch(msg)
        if space not in "cd":
            return protocol.error(protocol.ERR_BAD_SPACE)
        raw = self._readable_prefix(address, length)
        if raw is None:
            return protocol.error(protocol.ERR_BAD_ADDRESS)
        return protocol.data(raw)

    def _readable_prefix(self, address: int, length: int) -> Optional[bytes]:
        try:
            return self.mem.read_bytes(address, length)
        except Exception:
            pass
        lo, hi = 0, length  # binary-search the longest readable prefix
        while lo + 1 < hi:
            mid = (lo + hi) // 2
            try:
                self.mem.read_bytes(address, mid)
                lo = mid
            except Exception:
                hi = mid
        if lo == 0:
            return None
        return self.mem.read_bytes(address, lo)
