"""A machine-readable command/response layer over the debugger.

The paper's ldb is "usable by other programs" — the CLI is just one
client.  This module is the client interface for *programs*: every
debugger verb is a ``(command, args)`` pair executed against an
:class:`~repro.ldb.debugger.Ldb`, answering a JSON-able dict or raising
a typed :class:`ApiError` whose ``code`` a remote caller can switch on.
The session server (:mod:`repro.serve`) speaks exactly this vocabulary
over its gateway, and a batch triage pipeline can drive cores through
the same surface without ever parsing human-formatted text.

Two properties matter more than the verb list:

* **total**: every command terminates with a result or a typed error —
  unknown verbs, bad arguments, dead targets, and post-mortem refusals
  are all distinct codes, never a raw traceback;
* **bounded**: the blocking verbs (``continue``/``step``/``next``)
  take a ``timeout`` so a supervisor can put a deadline on them.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..cc.lexer import CError
from ..nub.session import DeadlineExceeded, TransportError
from ..postscript import PSError
from ..trace import DivergenceError, TraceError
from .breakpoints import BreakpointError
from .exprserver import EvalError
from .target import Target, TargetDiedError, TargetError

# -- the typed error vocabulary (documented in PROTOCOL.md App. A, and
# -- cross-checked by tools/check_protocol_doc.py) ------------------------

ERR_BAD_COMMAND = "ERR_BAD_COMMAND"    # unknown verb
ERR_BAD_ARGS = "ERR_BAD_ARGS"          # missing/malformed arguments
ERR_NO_TARGET = "ERR_NO_TARGET"        # the debugger has no target
ERR_TARGET_STATE = "ERR_TARGET_STATE"  # verb illegal in this state
ERR_POST_MORTEM = "ERR_POST_MORTEM"    # mutating verb on a core
ERR_TARGET_DIED = "ERR_TARGET_DIED"    # the nub/process is gone
ERR_EVAL = "ERR_EVAL"                  # expression/symbol error
ERR_DIVERGED = "ERR_DIVERGED"          # replay stopped matching the file


class ApiError(Exception):
    """A command failed in a way the caller can reason about."""

    def __init__(self, code: str, message: str,
                 core_path: Optional[str] = None):
        super().__init__(message)
        self.code = code
        self.core_path = core_path

    def to_dict(self) -> dict:
        out = {"code": self.code, "message": str(self)}
        if self.core_path:
            out["core_path"] = self.core_path
        return out


#: verbs that change target state — refused on a post-mortem target
#: before anything else runs, with the dedicated code
MUTATING = frozenset(("continue", "step", "next", "set", "break",
                      "delete_breaks", "kill"))


class DebugAPI:
    """Structured commands against one :class:`Ldb`."""

    def __init__(self, ldb):
        self.ldb = ldb
        self._verbs: Dict[str, Callable] = {
            "ping": self._cmd_ping,
            "status": self._cmd_status,
            "break": self._cmd_break,
            "delete_breaks": self._cmd_delete_breaks,
            "breaks": self._cmd_breaks,
            "continue": self._cmd_continue,
            "step": self._cmd_step,
            "next": self._cmd_next,
            "print": self._cmd_print,
            "set": self._cmd_set,
            "backtrace": self._cmd_backtrace,
            "where": self._cmd_where,
            "fault": self._cmd_fault,
            "registers": self._cmd_registers,
            "kill": self._cmd_kill,
            "dumpcore": self._cmd_dumpcore,
            "sim_stats": self._cmd_sim_stats,
            "record_save": self._cmd_record_save,
            "record_stop": self._cmd_record_stop,
            "replay_open": self._cmd_replay_open,
        }

    def commands(self):
        """Every verb this API answers (the gateway's help surface)."""
        return sorted(self._verbs)

    def execute(self, cmd: str, args: Optional[dict] = None,
                timeout: Optional[float] = None) -> dict:
        """Run one command; returns a JSON-able result dict or raises
        :class:`ApiError`.  ``timeout`` bounds the blocking verbs."""
        handler = self._verbs.get(cmd)
        if handler is None:
            raise ApiError(ERR_BAD_COMMAND, "unknown command %r (try: %s)"
                           % (cmd, " ".join(self.commands())))
        args = args or {}
        if not isinstance(args, dict):
            raise ApiError(ERR_BAD_ARGS, "args must be an object, not %r"
                           % type(args).__name__)
        target = self.ldb.current
        if cmd in MUTATING and target is not None and target.post_mortem:
            raise ApiError(ERR_POST_MORTEM,
                           "target %s is post-mortem (a core file): "
                           "cannot %s" % (target.name, cmd))
        try:
            return handler(args, timeout)
        except ApiError:
            raise
        except DivergenceError as err:
            # must outrank TransportError (its base class): a diverged
            # replay is a verdict about the file, not a dead nub
            raise ApiError(ERR_DIVERGED, str(err))
        except TargetDiedError as err:
            raise ApiError(ERR_TARGET_DIED, str(err),
                           core_path=err.core_path)
        except DeadlineExceeded:
            raise  # the supervisor's time bound, not an API failure
        except TransportError as err:
            # the whole retry budget met nothing: the nub is gone
            target = self.ldb.current
            raise ApiError(ERR_TARGET_DIED, "nub unreachable: %s" % err,
                           core_path=getattr(target, "core_path", None))
        except BreakpointError as err:
            raise ApiError(ERR_BAD_ARGS, str(err))
        except (EvalError, CError, PSError) as err:
            if getattr(err, "transport_error", None) is not None:
                # a transport failure wearing a PostScript error: the
                # nub is unreachable, not the expression wrong
                target = self.ldb.current
                raise ApiError(ERR_TARGET_DIED, str(err),
                               core_path=getattr(target, "core_path", None))
            raise ApiError(ERR_EVAL, str(err))
        except TargetError as err:
            target = self.ldb.current
            if target is not None and target.post_mortem:
                raise ApiError(ERR_POST_MORTEM, str(err))
            raise ApiError(ERR_TARGET_STATE, str(err))

    # -- helpers ------------------------------------------------------------

    def _target(self) -> Target:
        target = self.ldb.current
        if target is None:
            raise ApiError(ERR_NO_TARGET, "no current target")
        return target

    def _arg(self, args: dict, name: str, kind=str):
        value = args.get(name)
        if not isinstance(value, kind):
            raise ApiError(ERR_BAD_ARGS, "command needs %r (a %s), got %r"
                           % (name, kind.__name__, value))
        return value

    def _event_dict(self, event) -> dict:
        out: dict = {"event": event.kind}
        if event.kind in ("breakpoint", "step", "signal"):
            if event.kind == "signal":
                out["signo"] = event.signo
                out["code"] = event.code
            try:
                proc, filename, line = self.ldb.where_am_i(event.target)
                out["where"] = {"proc": proc, "file": filename, "line": line}
            except Exception:
                # a smashed stack must not turn a stop report into a
                # crash: the stop is real even if unlocatable
                out["where"] = None
        elif event.kind == "exit":
            out["status"] = event.status
        elif event.kind == "died":
            out["reason"] = event.reason
            out["core_path"] = event.core_path
        return out

    # -- the verbs ----------------------------------------------------------

    def _cmd_ping(self, args, timeout) -> dict:
        return {"pong": True}

    def _cmd_status(self, args, timeout) -> dict:
        target = self.ldb.current
        if target is None:
            return {"target": None, "targets": []}
        return {"target": target.describe(),
                "targets": [t.describe()
                            for t in self.ldb.targets.values()]}

    def _cmd_break(self, args, timeout) -> dict:
        target = self._target()
        spec = self._arg(args, "at")
        if ":" in spec:
            filename, _, line_text = spec.rpartition(":")
            try:
                line = int(line_text)
            except ValueError:
                raise ApiError(ERR_BAD_ARGS, "bad line number %r" % line_text)
            addresses = self.ldb.break_at_line(filename, line, target)
        else:
            addresses = [self.ldb.break_at_function(spec, target)]
        condition = args.get("condition")
        if condition is not None:
            for address in addresses:
                self.ldb.events.add_condition(address, condition)
        return {"addresses": addresses, "at": spec}

    def _cmd_delete_breaks(self, args, timeout) -> dict:
        target = self._target()
        count = len(target.breakpoints.planted)
        self.ldb.clear_breakpoints(target)
        return {"removed": count}

    def _cmd_breaks(self, args, timeout) -> dict:
        target = self._target()
        return {"breakpoints": [{"address": address, "note": bp.note}
                                for address, bp
                                in sorted(target.breakpoints.planted.items())]}

    def _cmd_continue(self, args, timeout) -> dict:
        target = self._target()
        kwargs = {} if timeout is None else {"timeout": timeout}
        event = self.ldb.events.wait(target, **kwargs)
        return self._event_dict(event)

    def _cmd_step(self, args, timeout) -> dict:
        return self._event_dict(self.ldb.step(self._target()))

    def _cmd_next(self, args, timeout) -> dict:
        return self._event_dict(self.ldb.step_over(self._target()))

    def _cmd_print(self, args, timeout) -> dict:
        target = self._target()
        expr = self._arg(args, "expr")
        if expr.isidentifier():
            try:
                text = self.ldb.print_variable(expr, target=target)
                return {"expr": expr, "text": text.strip()}
            except TargetError:
                pass  # not a printable variable: fall through to eval
        value = self.ldb.evaluate(expr, target=target)
        return {"expr": expr, "value": value}

    def _cmd_set(self, args, timeout) -> dict:
        target = self._target()
        expr = self._arg(args, "expr")
        value = self.ldb.assign(expr, target=target)
        return {"expr": expr, "value": value}

    def _cmd_backtrace(self, args, timeout) -> dict:
        target = self._target()
        limit = args.get("limit", 64)
        frames = []
        for frame in target.frames(limit):
            filename, line = frame.location_line()
            row = {"level": frame.level, "proc": frame.proc_name(),
                   "file": filename, "line": line, "pc": frame.pc,
                   "corrupt": frame.corrupt, "offset": None}
            if not frame.corrupt:
                hit = target.linker.proc_containing(frame.pc)
                if hit is not None:
                    # pc relative to the procedure's entry: what the
                    # triage normalizer folds to "proc+0xoff"
                    row["offset"] = frame.pc - hit[0]
            frames.append(row)
        return {"frames": frames}

    def _cmd_where(self, args, timeout) -> dict:
        proc, filename, line = self.ldb.where_am_i(self._target())
        return {"proc": proc, "file": filename, "line": line}

    def _cmd_fault(self, args, timeout) -> dict:
        # the crash identity in one verb: what killed the target, where,
        # and when — built to stay answerable on damaged artifacts, so
        # the unlocatable parts degrade to None instead of erroring
        target = self._target()
        out = {"arch": target.arch_name, "state": target.state,
               "signo": target.signo, "code": target.sigcode,
               "post_mortem": target.post_mortem,
               "replaying": target.replaying,
               "fault_pc": None, "icount": None}
        core = getattr(target, "core", None)
        if core is not None:
            out["fault_pc"] = core.fault_pc
            out["icount"] = core.icount
            return out
        if target.state == "stopped":
            try:
                out["fault_pc"] = target.stop_pc()
            except (TargetError, PSError, TransportError):
                pass  # a corrupt context leaves the pc unknown, not fatal
            try:
                out["icount"] = target.current_icount()
            except (TargetError, TransportError):
                pass  # a nub without FEATURE_TIMETRAVEL has no icount
        return out

    def _cmd_registers(self, args, timeout) -> dict:
        target = self._target()
        frame = target.top_frame()
        reg_names = target.arch_dict.get("RegNames")
        if reg_names is None:
            names = target.machdep.reg_names()
        else:
            names = [item.text for item in reg_names]
        registers = {}
        for index, name in enumerate(names):
            registers[name] = frame.read_reg(index) & 0xFFFFFFFF
        return {"registers": registers}

    def _cmd_kill(self, args, timeout) -> dict:
        target = self._target()
        target.kill()
        return {"state": target.state}

    def _cmd_dumpcore(self, args, timeout) -> dict:
        target = self._target()
        path = self._arg(args, "path")
        core = target.dump_core(path)
        return {"path": path, "segments": len(core.segments),
                "icount": core.icount}

    def _cmd_record_save(self, args, timeout) -> dict:
        # persist the accumulated recording (start one with the ldb
        # client's start_recording; the CLI's `record --save`)
        target = self._target()
        path = args.get("path")
        if path is not None and not isinstance(path, str):
            raise ApiError(ERR_BAD_ARGS, "path must be a string, got %r"
                           % path)
        partial = args.get("partial", False)
        if not isinstance(partial, bool):
            raise ApiError(ERR_BAD_ARGS, "partial must be a boolean, got %r"
                           % partial)
        try:
            recording = self.ldb.record_save(path, target,
                                             allow_partial=partial)
        except TraceError as err:
            raise ApiError(ERR_TARGET_STATE, str(err))
        return {"path": target.trace_writer.path,
                "spills": len(recording.spills),
                "stops": len(recording.stops),
                "inputs": len(recording.inputs),
                "partial": bool(recording.partial)}

    def _cmd_record_stop(self, args, timeout) -> dict:
        # stop recording without saving: detach the writer, discard
        # the accumulated spills and inputs (time travel stays on)
        target = self._target()
        if target.trace_writer is None:
            raise ApiError(ERR_TARGET_STATE,
                           "no recording in progress on %s" % target.name)
        spills, inputs = self.ldb.record_stop(target)
        return {"stopped": True, "discarded_spills": spills,
                "discarded_inputs": inputs}

    def _cmd_replay_open(self, args, timeout) -> dict:
        path = self._arg(args, "path")
        target = self.ldb.open_recording(path)
        recording = target.recording
        return {"target": target.describe(),
                "spills": len(recording.spills),
                "base_icount": recording.meta.base_icount,
                "final_icount": recording.final_icount}

    def _cmd_sim_stats(self, args, timeout) -> dict:
        # non-mutating: reads the simulator engine's own counters, so
        # it works only on targets whose simulator lives in-process
        target = self._target()
        if target.post_mortem:
            raise ApiError(ERR_POST_MORTEM,
                           "target %s is post-mortem (a core file): "
                           "no simulator is running" % target.name)
        process = getattr(target, "process", None)
        if process is None:
            raise ApiError(ERR_TARGET_STATE,
                           "target %s has no in-process simulator "
                           "(adopted channel?)" % target.name)
        engine = process.cpu.engine
        return {"engine": engine.name, **engine.describe()}
