"""ldb's linker interface (paper Sec. 3, 4.3).

Hides machine dependencies behind a small object built from the loader
table.  The rsparc, rm68k, and rvax targets share the single
machine-independent implementation; rmips cannot, because the machine
has no frame pointer: to walk past an rmips stack frame ldb needs the
frame size, which the MIPS implementation reads from the **runtime
procedure table in the target address space** — not from the object
file (footnote 4).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..postscript import Location, PSDict, PSError
from .memories import WireMemory


#: slack past the last known procedure *entry* when bounding the text
#: segment — the table has no procedure ends, so the top is padded
_TEXT_SLACK = 1 << 16


class LinkerInterface:
    """The shared (machine-independent) implementation."""

    def __init__(self, table: PSDict, wire: WireMemory):
        self.table = table
        self.wire = wire
        self._anchormap: PSDict = table["anchormap"]
        self._externmap: PSDict = table.get("externmap", PSDict())
        self._proctable: List[Tuple[int, str]] = []
        items = list(table["proctable"])
        for i in range(0, len(items) - 1, 2):
            self._proctable.append((items[i], items[i + 1].text))
        self._proctable.sort()

    # -- symbol addresses -------------------------------------------------

    def anchor_address(self, name: str) -> int:
        value = self._anchormap.get(name)
        if value is None:
            raise PSError("undefined", "anchor %s" % name)
        return value

    def global_address(self, label: str) -> Optional[int]:
        value = self._externmap.get(label)
        if value is not None:
            return value
        for address, name in self._proctable:
            if name == label:
                return address
        return None

    def anchor_names(self) -> List[str]:
        return [key for key in self._anchormap.keys()]

    # -- procedures ----------------------------------------------------------

    def proc_containing(self, pc: int) -> Optional[Tuple[int, str]]:
        """(address, name) of the procedure containing ``pc`` — the first
        step in mapping a pc to a symbol-table entry."""
        best = None
        for address, name in self._proctable:
            if address <= pc:
                best = (address, name)
            else:
                break
        return best

    def text_range(self) -> Optional[Tuple[int, int]]:
        """A conservative ``[lo, hi)`` bound on the text segment, from
        the proctable.  Used by the unwinder's corruption defenses: a
        return address far outside every known procedure is stack
        corruption, not a call site."""
        if not self._proctable:
            return None
        return (self._proctable[0][0], self._proctable[-1][0] + _TEXT_SLACK)

    def proc_name_for(self, address: int) -> Optional[str]:
        for addr, name in self._proctable:
            if addr == address:
                return name
        return None

    # -- frame information ------------------------------------------------------

    def frame_size(self, pc: int) -> Optional[int]:
        """Unavailable in the shared implementation: frame-pointer
        targets walk the fp chain instead."""
        return None

    def reg_save_info(self, pc: int) -> Tuple[int, int]:
        return (0, 0)


class MipsLinkerInterface(LinkerInterface):
    """The rmips implementation: reads the runtime procedure table from
    the target address space through the wire (paper footnote 4).

    This is the extra ~250 lines of machine-dependent code the paper's
    LoC table attributes to the MIPS debugger column.
    """

    def __init__(self, table: PSDict, wire: WireMemory):
        super().__init__(table, wire)
        self._rpt: Optional[List[Tuple[int, int, int, int]]] = None
        self._rpt_address = self.global_address("_procedure_table")

    def _read_rpt(self) -> List[Tuple[int, int, int, int]]:
        """Fetch the runtime procedure table, once, via nub fetches."""
        if self._rpt is not None:
            return self._rpt
        if self._rpt_address is None:
            raise PSError("undefined", "no runtime procedure table")
        records: List[Tuple[int, int, int, int]] = []
        offset = self._rpt_address
        while True:
            words = [self.wire.fetch(Location.absolute("d", offset + 4 * i), "i32")
                     for i in range(4)]
            if words[0] == 0:
                break
            address = words[0] & 0xFFFFFFFF
            framesize = words[1] & 0xFFFFFFFF
            regmask = words[2] & 0xFFFFFFFF
            regsave = words[3]  # signed: a vfp-relative offset
            records.append((address, framesize, regmask, regsave))
            offset += 16
        records.sort()
        self._rpt = records
        return records

    def _record_for(self, pc: int) -> Optional[Tuple[int, int, int, int]]:
        best = None
        for record in self._read_rpt():
            if record[0] <= pc:
                best = record
            else:
                break
        return best

    def frame_size(self, pc: int) -> Optional[int]:
        record = self._record_for(pc)
        return record[1] if record is not None else None

    def reg_save_info(self, pc: int) -> Tuple[int, int]:
        """(register mask, vfp-relative save offset) for the procedure."""
        record = self._record_for(pc)
        return (record[2], record[3]) if record is not None else (0, 0)


def linker_for(arch_name: str, table: PSDict, wire: WireMemory) -> LinkerInterface:
    """The VAX, SPARC, and 68020 analogs share one machine-independent
    implementation; the MIPS analog cannot (paper Sec. 4.3)."""
    if arch_name in ("rmips", "rmipsel"):
        return MipsLinkerInterface(table, wire)
    return LinkerInterface(table, wire)
