"""The ldb debugger: the client interface (paper Sec. 6).

Like the paper's ldb, this class is usable by other programs — the
command-line UI (:mod:`repro.ldb.cli`) is just one client.  Users can
set and remove breakpoints, start and stop programs, evaluate
expressions, and make assignments to variables; the debugger can hold
connections to several targets at once, on different architectures.
"""

from __future__ import annotations

import io
import sys
from typing import Dict, List, Optional, Tuple

from ..cc.driver import loader_table_ps
from ..machines import Executable, Process
from ..nub.channel import Channel, connect, pair
from ..nub.nub import Nub, NubRunner
from ..obs import Observability
from ..postscript import Interp, PSDict, new_interp
from .breakpoints import BreakpointError
from .frames import Frame
from .target import Target, TargetError


class Ldb:
    """A retargetable debugger instance."""

    def __init__(self, stdout=None):
        # "Modula-3 initialization" + "read initial PostScript": one
        # embedded interpreter serves symbol tables and expressions
        self.stdout = stdout if stdout is not None else sys.stdout
        self.interp = new_interp(stdout=self.stdout)
        self.targets: Dict[str, Target] = {}
        self.current: Optional[Target] = None
        self._expr_client = None
        self._events = None
        self._next_target = 0
        #: one observability hub for the whole debugger: every target's
        #: session, memory DAG, and replay controller report into it
        self.obs = Observability()

    # -- connecting to targets ---------------------------------------------

    def read_loader_table(self, ps_source: str) -> PSDict:
        """Interpret loader-table PostScript; returns the table."""
        self.interp.run(ps_source, "loader-table")
        table = self.interp.pop()
        if not isinstance(table, PSDict):
            raise TargetError("loader table did not build a dictionary")
        return table

    def _new_target_name(self) -> str:
        name = "t%d" % self._next_target
        self._next_target += 1
        return name

    def adopt_channel(self, channel: Channel, table_ps: str,
                      wait: bool = True, connector=None,
                      cache: bool = True) -> Target:
        """Debug over an existing connection (any transport).

        ``connector`` — a zero-argument callable returning a fresh
        :class:`Channel` — gives the target a reconnect path: if the
        connection dies, ``Target.reconnect()`` re-attaches through it.
        ``cache=False`` turns off the block-transfer memory cache and
        sends every fetch as its own FETCH message.
        """
        table = self.read_loader_table(table_ps)
        target = Target(self.interp, channel, table, self._new_target_name(),
                        connector=connector, cache=cache, obs=self.obs)
        target.loader_ps = table_ps
        self.targets[target.name] = target
        self.current = target
        if wait:
            target.wait_for_stop()
        return target

    def load_program(self, exe: Executable, stop_at_entry: bool = True,
                     table_ps: Optional[str] = None,
                     cache: bool = True, block_nub: bool = True,
                     timetravel_nub: bool = True, core_nub: bool = True,
                     core_path: Optional[str] = None,
                     fault_schedule=None, engine=None) -> Target:
        """Start a target process as a "child": the fork analog.

        ``block_nub=False`` simulates a legacy nub without the
        block-transfer extension; the debugger falls back per-word.
        ``timetravel_nub=False`` simulates one without the checkpoint
        messages; reverse commands then fail with a clear error while
        forward debugging is unaffected.  ``core_nub=False`` simulates
        one without DUMPCORE.  ``core_path`` tells the nub where to
        auto-write a core when the target takes a fatal signal or the
        nub itself dies.  ``fault_schedule`` injects a seeded
        :class:`~repro.nub.faults.FaultSchedule` into the *nub's* sends
        — the hook the session server's chaos harness uses to kill,
        hang, or corrupt hosted sessions.  ``engine`` picks the
        simulator's execution engine ("step", "block", or None for the
        configured default; see :mod:`repro.machines.engine`).
        """
        debugger_end, nub_end = pair()
        process = Process(exe, engine=engine)
        if table_ps is None:
            table_ps = getattr(exe, "loader_ps", None) or loader_table_ps(exe)
        nub = Nub(process, channel=nub_end, stop_at_entry=stop_at_entry,
                  block_extension=block_nub,
                  timetravel_extension=timetravel_nub,
                  core_extension=core_nub, core_path=core_path,
                  loader_ps=table_ps, fault_schedule=fault_schedule)
        runner = NubRunner(nub).start()
        target = self.adopt_channel(debugger_end, table_ps, wait=stop_at_entry,
                                    cache=cache)
        target.process = process
        target.nub = nub
        target.runner = runner
        target.core_path = core_path
        return target

    def open_core(self, path: str, table_ps: Optional[str] = None,
                  cache: bool = True, salvage: bool = True) -> Target:
        """Open a core file for post-mortem debugging: no nub, no
        process — the whole debugger stack runs against the recorded
        memory image.

        The symbol table comes from the core itself when the nub
        embedded one (the usual case); otherwise pass ``table_ps``.
        Backtraces, frame walks, and variable inspection work exactly
        as on the live target at the recorded stop; mutating verbs
        (continue, step, set, break) refuse with a clear error.

        A truncated or tail-corrupt core opens on its longest valid
        prefix with a :class:`~repro.machines.atomicio.SalvagedArtifact`
        warning (``salvage=False`` restores the strict behaviour: any
        damage raises).
        """
        from ..machines.core import CoreError, CoreFile
        from .postmortem import CoreTransport
        try:
            core = CoreFile.load(path, salvage=salvage)
            transport = CoreTransport(core)
        except CoreError as err:
            raise TargetError("cannot open core %s: %s" % (path, err))
        if table_ps is None:
            table_ps = core.loader_ps
            if table_ps is None:
                raise TargetError(
                    "core %s embeds no symbol table; pass table_ps" % path)
        table = self.read_loader_table(table_ps)
        target = Target(self.interp, None, table, self._new_target_name(),
                        transport=transport, cache=cache, obs=self.obs)
        if target.arch_name != core.arch_name:
            raise TargetError(
                "core %s is %s but the symbol table says %s"
                % (path, core.arch_name, target.arch_name))
        self.targets[target.name] = target
        self.current = target
        target.core = core
        target.loader_ps = table_ps
        target.wait_for_stop()  # the recorded fault, re-announced
        # adopt the planted-breakpoint table the dead debugger left
        target.breakpoints.extension_available()
        self.obs.tracer.event("ldb.open_core", path=path,
                              arch=core.arch_name, signo=core.signo)
        return target

    def attach(self, host: str, port: int, table_ps: str,
               wait: bool = True, cache: bool = True) -> Target:
        """Connect to a faulty process waiting on the network."""
        channel = connect(host, port)
        connector = lambda: connect(host, port)
        return self.adopt_channel(channel, table_ps, wait=wait,
                                  connector=connector, cache=cache)

    def switch_target(self, name: str) -> Target:
        """Switch targets — possibly to a different architecture; the
        per-architecture dictionary rebinds the machine-dependent names
        (paper Sec. 5)."""
        self.current = self.targets[name]
        return self.current

    def drop_target(self, name: str) -> None:
        """Forget a target and close its transport: the session-server
        detach path.  Closing the debugger end of a spawned pair tells
        the nub nobody is debugging, so a stopped target is released
        rather than preserved forever."""
        target = self.targets.pop(name, None)
        if target is None:
            return
        try:
            target.transport.close()
        except Exception:
            pass  # a dead transport is already what "dropped" means
        if self.current is target:
            self.current = next(iter(self.targets.values()), None)

    # -- breakpoints -------------------------------------------------------------

    def break_at_function(self, name: str,
                          target: Optional[Target] = None) -> int:
        """Plant a breakpoint at a procedure's entry stopping point."""
        target = target or self._need_target()
        entry = target.symtab.extern_entry(name)
        if entry is None or entry["kind"].text != "procedure":
            raise BreakpointError("no procedure named %s" % name)
        stop = target.symtab.first_stop_of(entry)
        if stop is None:
            raise BreakpointError("%s has no stopping points" % name)
        address = target.symtab.stop_address(stop)
        target.breakpoints.plant(address, note=name)
        return address

    def break_at_line(self, filename: str, line: int,
                      target: Optional[Target] = None) -> List[int]:
        """Plant breakpoints at every stopping point on a source line
        (one line may hold several — Sec. 2)."""
        target = target or self._need_target()
        hits = target.symtab.stops_for_line(filename, line)
        if not hits:
            raise BreakpointError("no stopping point at %s:%d" % (filename, line))
        addresses = []
        for _proc, stop in hits:
            address = target.symtab.stop_address(stop)
            target.breakpoints.plant(address, note="%s:%d" % (filename, line))
            addresses.append(address)
        return addresses

    def break_at_stop(self, proc_name: str, stop_index: int,
                      target: Optional[Target] = None) -> int:
        target = target or self._need_target()
        entry = target.symtab.extern_entry(proc_name)
        stop = target.symtab.loci(entry)[stop_index]
        address = target.symtab.stop_address(stop)
        target.breakpoints.plant(address, note="%s:%d" % (proc_name, stop_index))
        return address

    def clear_breakpoints(self, target: Optional[Target] = None) -> None:
        (target or self._need_target()).breakpoints.remove_all()

    # -- execution ------------------------------------------------------------------

    def run_to_stop(self, target: Optional[Target] = None,
                    timeout: float = 30.0) -> str:
        """Continue and wait for the next stop or exit."""
        target = target or self._need_target()
        if target.replay is not None and target.state == "stopped":
            # recording: the controller chunks execution with RUNTO and
            # drops automatic checkpoints along the way
            return target.replay.continue_forward(timeout=timeout)
        if target.state == "stopped":
            if target.at_breakpoint() or self._at_entry_pause(target):
                target.resume_from_breakpoint()
            else:
                target.cont()
        return target.wait_for_stop(timeout)

    def _at_entry_pause(self, target: Target) -> bool:
        from ..machines.isa import SIGTRAP
        if target.state != "stopped" or target.signo != SIGTRAP:
            return False
        pause = target.linker.global_address("__nub_pause")
        return pause is not None and target.stop_pc() == pause

    def _need_target(self) -> Target:
        if self.current is None:
            raise TargetError("no current target")
        return self.current

    # -- inspection --------------------------------------------------------------------

    def where_am_i(self, target: Optional[Target] = None) -> Tuple[str, str, int]:
        """(procedure, file, line) at the current stop."""
        target = target or self._need_target()
        frame = target.top_frame()
        filename, line = frame.location_line()
        return frame.proc_name(), filename, line

    def print_variable(self, name: str, frame: Optional[Frame] = None,
                       target: Optional[Target] = None) -> str:
        """Print a variable's value; returns the printed text."""
        target = target or self._need_target()
        frame = frame or target.top_frame()
        entry = frame.resolve(name)
        if entry is None:
            raise TargetError("no symbol %r visible here" % name)
        before = _tell(self.stdout)
        target.print_value(entry, frame)
        return _read_back(self.stdout, before)

    def backtrace_text(self, target: Optional[Target] = None,
                       limit: int = 64) -> str:
        target = target or self._need_target()
        lines = []
        for frame in target.frames(limit):
            filename, line = frame.location_line()
            lines.append("#%-2d %s () at %s:%d"
                         % (frame.level, frame.proc_name(), filename, line))
        return "\n".join(lines) + "\n"

    def registers_text(self, target: Optional[Target] = None) -> str:
        """Enumerate the target's registers.

        The register names come from the machine-dependent PostScript
        (the RegNames array in data/<arch>.ps) — "ldb uses machine-
        dependent PostScript to ... enumerate a target's registers"
        (paper Sec. 4.3)."""
        target = target or self._need_target()
        frame = target.top_frame()
        reg_names = target.arch_dict.get("RegNames")
        if reg_names is None:
            names = target.machdep.reg_names()
        else:
            names = [item.text for item in reg_names]
        parts = []
        for index, name in enumerate(names):
            parts.append("%-4s 0x%08x" % (name, frame.read_reg(index) & 0xFFFFFFFF))
        freg_names = target.arch_dict.get("FRegNames")
        if freg_names is not None:
            from ..postscript import Location
            for index, item in enumerate(freg_names):
                value = frame.memory.fetch(Location.absolute("f", index), "f64")
                parts.append("%-4s %g" % (item.text, value))
        return "\n".join(parts) + "\n"

    # -- time travel (checkpoint/replay) -----------------------------------

    def enable_time_travel(self, target: Optional[Target] = None,
                           interval: int = 5_000, capacity: int = 32):
        """Start recording: a base checkpoint now, automatic checkpoints
        every ``interval`` retired instructions from here on, and the
        reverse commands become available."""
        from ..timetravel import ReplayController, ReplayError
        target = target or self._need_target()
        if target.replay is None:
            controller = ReplayController(target, interval=interval,
                                          capacity=capacity)
            try:
                controller.enable()
            except ReplayError as err:
                raise TargetError(str(err))
            target.replay = controller
        return target.replay

    def start_recording(self, target: Optional[Target] = None,
                        path: Optional[str] = None, interval: int = 5_000,
                        capacity: int = 32):
        """Like :meth:`enable_time_travel`, but the session also
        accumulates a persistent recording: every checkpoint is spilled
        (complete machine state pulled over the wire), every stop gets
        a divergence digest, and debugger-injected writes are logged.
        ``record_save`` writes the accumulated file."""
        from ..trace import TraceError, TraceWriter
        target = target or self._need_target()
        replay = self.enable_time_travel(target, interval=interval,
                                         capacity=capacity)
        if target.trace_writer is None:
            try:
                writer = TraceWriter(target, path=path, interval=interval)
            except TraceError as err:
                raise TargetError(str(err))
            replay.writer = writer
            target.trace_writer = writer
            # backfill the current stop: enable_time_travel checkpointed
            # it before the writer existed (spill() dedups)
            writer.spill(replay._ensure_checkpoint_here())
            self.obs.tracer.event("ldb.start_recording", path=path,
                                  interval=interval)
        elif path is not None:
            target.trace_writer.path = path
        return target.trace_writer

    def record_save(self, path: Optional[str] = None,
                    target: Optional[Target] = None,
                    allow_partial: bool = False):
        """Write the accumulated recording to disk (``record save``).

        With ``allow_partial=True`` a target that can no longer answer
        SPILL (dead nub, severed transport) degrades to saving the
        checkpoints already pulled — a salvageable partial recording —
        instead of failing outright."""
        from ..nub.session import TransportError
        from ..trace import TraceError
        target = target or self._need_target()
        writer = target.trace_writer
        if writer is None:
            raise TargetError(
                "no recording in progress on %s (use 'record --save' "
                "first)" % target.name)
        if target.state == "stopped":
            # make sure the position being looked at is in the file
            try:
                writer.spill(target.replay._ensure_checkpoint_here())
            except (TargetError, TransportError):
                if not allow_partial:
                    raise
        try:
            return writer.save(path)
        except (TraceError, TargetError, TransportError, OSError) as err:
            if not allow_partial:
                if isinstance(err, (TraceError, OSError)):
                    raise TargetError(str(err))
                raise
            self.obs.tracer.warn("ldb.record_save_degraded",
                                 reason=str(err))
            try:
                return writer.save(path, partial=True)
            except TraceError as inner:
                raise TargetError(str(inner))

    def record_stop(self, target: Optional[Target] = None):
        """Stop recording without saving: detach the writer and discard
        what it accumulated (``record stop``).  Time travel itself
        stays enabled — only the persistent-recording overlay ends.
        Answers (spill count, input count) discarded."""
        target = target or self._need_target()
        writer = target.trace_writer
        if writer is None:
            raise TargetError(
                "no recording in progress on %s (use 'record --save' "
                "first)" % target.name)
        discarded = (len(writer.spills) + len(writer._pending),
                     len(writer.inputs))
        writer.detach()
        target.trace_writer = None
        if target.replay is not None and getattr(
                target.replay, "writer", None) is writer:
            target.replay.writer = None
        self.obs.metrics.inc("trace.stops")
        self.obs.tracer.event("ldb.record_stop", spills=discarded[0],
                              inputs=discarded[1])
        return discarded

    def open_recording(self, path: str, table_ps: Optional[str] = None,
                       cache: bool = True,
                       check_divergence: bool = True,
                       salvage: bool = True) -> Target:
        """Reopen a saved recording: no nub, no live process — the
        whole debugger stack runs against re-executed machine states
        restored from the file's checkpoint spills.

        Unlike a core, a recording is a *timeline*: forward continue,
        stepping, reverse commands, and ``goto`` all work, and the
        re-execution is verified against the recorded event log —
        a mismatch raises a divergence error naming the first bad
        icount rather than silently serving wrong state.

        A truncated or tail-corrupt file opens on its longest valid
        chunk prefix — the spills, stops, and inputs that survived —
        with a :class:`~repro.machines.atomicio.SalvagedArtifact`
        warning; replay verifies up to the salvage horizon
        (``salvage=False`` restores the strict behaviour)."""
        from ..timetravel import ReplayController
        from ..trace import Recording, ReplayTransport, TraceError
        from ..trace.format import SPILL_AUTO
        from ..timetravel.ring import Checkpoint
        try:
            recording = Recording.load(path, salvage=salvage)
            transport = ReplayTransport(recording,
                                        check_divergence=check_divergence,
                                        obs=self.obs)
        except TraceError as err:
            raise TargetError("cannot open recording %s: %s" % (path, err))
        meta = recording.meta
        if table_ps is None:
            table_ps = meta.loader_ps
            if table_ps is None:
                raise TargetError(
                    "recording %s embeds no symbol table; pass table_ps"
                    % path)
        table = self.read_loader_table(table_ps)
        target = Target(self.interp, None, table, self._new_target_name(),
                        transport=transport, cache=cache, obs=self.obs)
        if target.arch_name != meta.arch_name:
            raise TargetError(
                "recording %s is %s but the symbol table says %s"
                % (path, meta.arch_name, target.arch_name))
        self.targets[target.name] = target
        self.current = target
        target.recording = recording
        target.loader_ps = table_ps
        target.wait_for_stop()  # the final recorded stop, re-announced
        # adopt the planted-breakpoint table the recorded session left
        target.breakpoints.extension_available()
        # seed the reverse machinery with the file's spilled
        # checkpoints: every spill is restorable by its recorded cid
        controller = ReplayController(
            target, interval=meta.interval,
            capacity=max(64, 2 * len(recording.spills) + 8))
        for spill in recording.spills:
            controller.ring.add(Checkpoint(
                spill.cid, spill.icount, spill.pc, None, spill.signo,
                spill.code, "auto" if spill.kind == SPILL_AUTO else "stop"))
        target.replay = controller
        self.obs.tracer.event("ldb.open_recording", path=path,
                              arch=meta.arch_name,
                              spills=len(recording.spills),
                              final_icount=recording.final_icount)
        return target

    def _replay(self, target: Optional[Target] = None):
        target = target or self._need_target()
        if target.replay is None:
            raise TargetError(
                "time travel is not enabled on %s (use 'record' first)"
                % target.name)
        return target.replay

    def _reverse_op(self, op):
        from ..timetravel import ReplayError
        try:
            return op()
        except ReplayError as err:
            raise TargetError(str(err))

    def reverse_continue(self, target: Optional[Target] = None):
        """Rewind to the most recent earlier breakpoint hit."""
        replay = self._replay(target)
        return self._reverse_op(replay.reverse_continue)

    def reverse_step(self, target: Optional[Target] = None):
        """Rewind to the previous stopping point (into calls)."""
        replay = self._replay(target)
        return self._reverse_op(replay.reverse_step)

    def reverse_next(self, target: Optional[Target] = None):
        """Rewind to the previous stopping point at the same or a
        shallower frame depth (over calls)."""
        replay = self._replay(target)
        return self._reverse_op(replay.reverse_next)

    def goto_icount(self, icount: int, target: Optional[Target] = None):
        """Travel to an absolute retired-instruction count."""
        replay = self._replay(target)
        return self._reverse_op(lambda: replay.goto_icount(icount))

    # -- events and stepping (paper Sec. 7.1) -----------------------------------------

    @property
    def events(self):
        """The event engine: typed stop events, conditional breakpoints,
        and source-level stepping built on breakpoints."""
        if self._events is None:
            from .events import EventEngine
            self._events = EventEngine(self)
        return self._events

    def step(self, target: Optional[Target] = None):
        """Source-level step (into): run to the next stopping point."""
        return self.events.step(target or self._need_target())

    def step_over(self, target: Optional[Target] = None):
        """Source-level next: skip stops in deeper frames."""
        return self.events.next(target or self._need_target())

    def break_if(self, name_or_line: str, condition: str,
                 target: Optional[Target] = None) -> int:
        """A conditional breakpoint: stop only when the expression is
        true (event-driven debugging subsumes these, Sec. 7.1)."""
        target = target or self._need_target()
        if ":" in name_or_line:
            filename, _, line = name_or_line.rpartition(":")
            addresses = self.break_at_line(filename, int(line), target)
            for address in addresses:
                self.events.add_condition(address, condition)
            return addresses[0]
        address = self.break_at_function(name_or_line, target)
        self.events.add_condition(address, condition)
        return address

    # -- expressions (via the expression server) ------------------------------------------

    def expression_client(self):
        if self._expr_client is None:
            from .exprserver import ExpressionClient
            self._expr_client = ExpressionClient(self)
        return self._expr_client

    def evaluate(self, expression: str, frame: Optional[Frame] = None,
                 target: Optional[Target] = None):
        """Evaluate a C expression in the current frame's context."""
        target = target or self._need_target()
        frame = frame or target.top_frame()
        return self.expression_client().evaluate(expression, target, frame)

    def assign(self, expression: str, frame: Optional[Frame] = None,
               target: Optional[Target] = None):
        """Assignments are expressions (``a = 5``)."""
        return self.evaluate(expression, frame, target)


def _tell(stream) -> Optional[int]:
    try:
        return stream.tell()
    except (AttributeError, OSError, io.UnsupportedOperation):
        return None


def _read_back(stream, before: Optional[int]) -> str:
    """Recover what was just printed, when the stream allows it; on a
    write-only stream (a terminal) the text is already visible."""
    if before is None:
        return ""
    try:
        end = stream.tell()
        stream.seek(before)
        text = stream.read(end - before)
        stream.seek(end)
        return text
    except (OSError, io.UnsupportedOperation):
        return ""
