"""ldb: the retargetable debugger (the paper's primary contribution).

Quick start::

    from repro.cc.driver import compile_and_link
    from repro.ldb import Ldb

    exe = compile_and_link({"fib.c": source}, "rmips", debug=True)
    ldb = Ldb()
    target = ldb.load_program(exe)        # stops before main
    ldb.break_at_function("fib")
    ldb.run_to_stop()                     # hits the breakpoint
    print(ldb.print_variable("n"))
    print(ldb.backtrace_text())
    print(ldb.evaluate("n * 2 + 1"))
"""

from .breakpoints import Breakpoint, BreakpointError, BreakpointTable
from .debugger import Ldb
from .frames import Frame, backtrace
from .linker import LinkerInterface, MipsLinkerInterface, linker_for
from .memories import (
    AliasMemory,
    JoinedMemory,
    LocalMemory,
    MemoryStats,
    RegisterMemory,
    WireMemory,
)
from .symtab import SymbolTable
from .target import Target, TargetError

__all__ = [
    "AliasMemory",
    "Breakpoint",
    "BreakpointError",
    "BreakpointTable",
    "Frame",
    "JoinedMemory",
    "Ldb",
    "LinkerInterface",
    "LocalMemory",
    "MemoryStats",
    "MipsLinkerInterface",
    "RegisterMemory",
    "SymbolTable",
    "Target",
    "TargetError",
    "WireMemory",
    "backtrace",
    "linker_for",
]
