"""The ldb command-line user interface.

A small client of the :class:`~repro.ldb.debugger.Ldb` interface —
like the paper's ldb, the debugger proper exposes a client interface so
other front ends (GUIs, event-action debuggers) could be built on it.

Usage::

    ldb program.img              # image produced by `rcc -g ... -o program.img`
    ldb --source fib.c --target rmips

Commands::

    break <function> | break <file>:<line>
    run / continue / c
    record [interval]
    record --save <file> [interval]
    record save [file]
    record stop
    replay <file>
    reverse-continue / rc
    reverse-step / rs
    reverse-next / rn
    goto <icount>
    icount / checkpoint
    print <expression> | p <expression>
    set <var> = <expression>
    backtrace / bt
    where
    core <file>
    dumpcore <file>
    registers / regs
    info breaks | info checkpoints
    stats
    sim
    trace on | trace off | trace dump [file]
    triage <dir|manifest.json|artifact> [workers]
    targets / target <name>
    kill / quit

Batch mode::

    ldb triage <dir|manifest.json> [--workers N] [--mode thread|process]
        [--json report.json] [--top N]

See docs/ldb.md for the full command reference.
"""

from __future__ import annotations

import pickle
import sys
import warnings
from typing import List, Optional

from ..cc.driver import compile_and_link
from ..cc.lexer import CError
from .breakpoints import BreakpointError
from ..postscript import PSError
from ..trace import DivergenceError
from .debugger import Ldb
from .exprserver import EvalError
from .target import TargetError


class Cli:
    def __init__(self, stdin=None, stdout=None):
        self.stdin = stdin if stdin is not None else sys.stdin
        self.out = stdout if stdout is not None else sys.stdout
        self.ldb = Ldb(stdout=self.out)
        self.done = False
        self.server = None  # the session server, once `serve` runs

    def close(self) -> None:
        if self.server is not None:
            self.server.close()
            self.server = None

    def say(self, text: str) -> None:
        self.out.write(text + "\n")

    def load_image(self, path: str) -> None:
        with open(path, "rb") as f:
            exe = pickle.load(f)
        self.start_program(exe)

    def compile_source(self, path: str, target_arch: str) -> None:
        with open(path) as f:
            source = f.read()
        exe = compile_and_link({path: source}, target_arch, debug=True)
        self.start_program(exe)

    def start_program(self, exe) -> None:
        target = self.ldb.load_program(exe)
        self.say("target %s (%s) stopped before main"
                 % (target.name, target.arch_name))

    # -- the command loop ---------------------------------------------------

    def repl(self) -> None:
        try:
            while not self.done:
                self.out.write("(ldb) ")
                self.out.flush()
                line = self.stdin.readline()
                if not line:
                    break
                self.command(line.strip())
        finally:
            self.close()

    def command(self, line: str) -> None:
        if not line:
            return
        verb, _, rest = line.partition(" ")
        rest = rest.strip()
        try:
            self.dispatch(verb, rest)
        except DivergenceError as err:
            # replay stopped matching the file: the session is suspect
            # from here on, say so loudly but keep the REPL alive
            self.say("ldb: REPLAY DIVERGED: %s" % err)
        except (TargetError, BreakpointError, EvalError, CError, PSError) as err:
            self.say("ldb: %s" % err)

    def dispatch(self, verb: str, rest: str) -> None:
        if verb in ("quit", "q", "exit"):
            self.done = True
        elif verb == "break" or verb == "b":
            self.cmd_break(rest)
        elif verb in ("run", "continue", "c", "r"):
            self.cmd_continue()
        elif verb in ("step", "s"):
            self.cmd_step(over=False)
        elif verb in ("next", "n"):
            self.cmd_step(over=True)
        elif verb == "record":
            self.cmd_record(rest)
        elif verb == "replay":
            self.cmd_replay(rest)
        elif verb in ("reverse-continue", "rc"):
            self.cmd_reverse("continue")
        elif verb in ("reverse-step", "rs"):
            self.cmd_reverse("step")
        elif verb in ("reverse-next", "rn"):
            self.cmd_reverse("next")
        elif verb == "goto":
            self.cmd_goto(rest)
        elif verb == "icount":
            self.say("icount %d" % self.ldb.current.current_icount())
        elif verb == "checkpoint":
            cid, icount = self.ldb.current.take_checkpoint()
            self.say("checkpoint %d at icount %d" % (cid, icount))
        elif verb == "condition":
            spec, _, expr = rest.partition(" ")
            self.ldb.break_if(spec, expr.strip())
            self.say("conditional breakpoint at %s when %s" % (spec, expr))
        elif verb in ("print", "p"):
            self.cmd_print(rest)
        elif verb == "set":
            self.ldb.assign(rest)
        elif verb in ("backtrace", "bt"):
            self.out.write(self.ldb.backtrace_text())
        elif verb == "where":
            proc, filename, line = self.ldb.where_am_i()
            self.say("%s () at %s:%d" % (proc, filename, line))
        elif verb == "core":
            self.cmd_core(rest)
        elif verb == "dumpcore":
            self.cmd_dumpcore(rest)
        elif verb in ("registers", "regs"):
            self.out.write(self.ldb.registers_text())
        elif verb == "info":
            self.cmd_info(rest)
        elif verb == "stats":
            self.cmd_stats()
        elif verb == "sim":
            self.cmd_sim()
        elif verb == "trace":
            self.cmd_trace(rest)
        elif verb == "triage":
            self.cmd_triage(rest)
        elif verb == "targets":
            for name, target in self.ldb.targets.items():
                marker = "*" if target is self.ldb.current else " "
                self.say("%s %s (%s) %s" % (marker, name, target.arch_name,
                                            target.state))
        elif verb == "target":
            target = self.ldb.switch_target(rest)
            self.say("now debugging %s (%s)" % (target.name, target.arch_name))
        elif verb == "kill":
            self.ldb.current.kill()
            self.say("killed")
        elif verb == "serve":
            self.cmd_serve(rest)
        elif verb == "sessions":
            self.cmd_sessions()
        else:
            self.say("ldb: unknown command %r (try: break condition run step next "
                     "record replay reverse-continue reverse-step reverse-next "
                     "goto print set backtrace where core dumpcore registers "
                     "stats sim trace triage targets serve sessions quit)" % verb)

    def _open_salvageable(self, opener, path: str):
        """Run ``opener(path)`` surfacing any SalvagedArtifact warning
        as a visible CLI line (damaged artifacts open read-only on
        their valid prefix — the user should know)."""
        from ..machines.atomicio import SalvagedArtifact
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always", SalvagedArtifact)
            target = opener(path)
        for entry in caught:
            if issubclass(entry.category, SalvagedArtifact):
                self.say("warning: %s" % entry.message)
        return target

    def cmd_core(self, path: str) -> None:
        """Open a core file: a post-mortem target with no nub behind it."""
        if not path:
            self.say("usage: core <file>")
            return
        target = self._open_salvageable(self.ldb.open_core, path)
        self.say("post-mortem target %s (%s): signal %d, icount %d"
                 % (target.name, target.arch_name, target.signo,
                    target.core.icount))
        try:
            proc, filename, line = self.ldb.where_am_i()
            self.say("died in %s () at %s:%d" % (proc, filename, line))
        except Exception:
            self.say("died at an unknown location (saved context unreadable)")

    def cmd_dumpcore(self, path: str) -> None:
        """Snapshot the stopped target into a core file."""
        if not path:
            self.say("usage: dumpcore <file>")
            return
        core = self.ldb.current.dump_core(path)
        self.say("core written to %s (%d memory segments, icount %d)"
                 % (path, len(core.segments), core.icount))

    def cmd_record(self, rest: str) -> None:
        words = rest.split()
        if words and words[0] == "stop":
            # `record stop`: detach the writer without saving
            spills, inputs = self.ldb.record_stop()
            self.say("recording stopped without saving (%d checkpoint "
                     "spills, %d inputs discarded; time travel stays on)"
                     % (spills, inputs))
            return
        if words and words[0] == "save":
            # `record save [file]`: write the accumulated recording
            path = words[1] if len(words) > 1 else None
            recording = self.ldb.record_save(path)
            writer = self.ldb.current.trace_writer
            self.say("recording saved to %s (%d checkpoint spills, "
                     "%d stops, %d inputs)"
                     % (writer.path, len(recording.spills),
                        len(recording.stops), len(recording.inputs)))
            return
        if words and words[0] == "--save":
            # `record --save <file> [interval]`: persistent recording
            if len(words) < 2:
                self.say("usage: record --save <file> [interval]")
                return
            path = words[1]
            interval = int(words[2]) if len(words) > 2 else 5_000
            writer = self.ldb.start_recording(path=path, interval=interval)
            self.say("recording to %s: checkpoint spill every %d "
                     "instructions (write it with: record save)"
                     % (writer.path, writer.interval))
            return
        interval = int(rest) if rest else 5_000
        replay = self.ldb.enable_time_travel(interval=interval)
        self.say("recording: checkpoint every %d instructions"
                 % replay.interval)

    def cmd_replay(self, path: str) -> None:
        """Reopen a saved recording: a replay target with no nub."""
        if not path:
            self.say("usage: replay <file>")
            return
        target = self._open_salvageable(self.ldb.open_recording, path)
        recording = target.recording
        self.say("replay target %s (%s): %d checkpoint spills, "
                 "icounts %d..%d"
                 % (target.name, target.arch_name, len(recording.spills),
                    recording.meta.base_icount, recording.final_icount))
        try:
            proc, filename, line = self.ldb.where_am_i()
            self.say("recording ends in %s () at %s:%d (signal %d)"
                     % (proc, filename, line, target.signo))
        except Exception:
            self.say("recording ends at an unknown location")

    def cmd_reverse(self, how: str) -> None:
        if how == "continue":
            hit = self.ldb.reverse_continue()
        elif how == "step":
            hit = self.ldb.reverse_step()
        else:
            hit = self.ldb.reverse_next()
        proc, filename, line = self.ldb.where_am_i()
        self.say("back at icount %d: %s () at %s:%d"
                 % (hit.icount, proc, filename, line))

    def cmd_goto(self, rest: str) -> None:
        state = self.ldb.goto_icount(int(rest))
        if state == "stopped":
            self.say("now at icount %d" % self.ldb.current.current_icount())
        else:
            self.say("target is %s" % state)

    def cmd_break(self, spec: str) -> None:
        if ":" in spec:
            filename, _, line_text = spec.rpartition(":")
            addresses = self.ldb.break_at_line(filename, int(line_text))
            for address in addresses:
                self.say("breakpoint at 0x%x (%s)" % (address, spec))
        else:
            address = self.ldb.break_at_function(spec)
            self.say("breakpoint at 0x%x (%s)" % (address, spec))

    def cmd_step(self, over: bool) -> None:
        event = self.ldb.step_over() if over else self.ldb.step()
        if event.kind in ("step", "breakpoint"):
            proc, filename, line = self.ldb.where_am_i()
            self.say("%s () at %s:%d" % (proc, filename, line))
        elif event.kind == "exit":
            self.say("program exited with status %s" % event.status)
        else:
            self.say("stopped: %s" % event.kind)

    def cmd_continue(self) -> None:
        # the event engine applies breakpoint conditions (Sec. 7.1)
        event = self.ldb.events.wait()
        target = self.ldb.current
        if event.kind in ("breakpoint", "step"):
            proc, filename, line = self.ldb.where_am_i()
            self.say("stopped in %s () at %s:%d" % (proc, filename, line))
        elif event.kind == "signal":
            proc, filename, line = self.ldb.where_am_i()
            self.say("signal %d in %s () at %s:%d"
                     % (event.signo, proc, filename, line))
        elif event.kind == "exit":
            self.say("program exited with status %s" % event.status)
            if hasattr(target, "process"):
                self.out.write(target.process.output())
        elif event.kind == "died":
            self.say("target died: %s" % event.reason)
            if event.core_path:
                self.say("a core was written; open it with: core %s"
                         % event.core_path)
        else:
            self.say("target is %s" % event.kind)

    def cmd_print(self, expr: str) -> None:
        # a bare variable name prints via its type's printer procedure;
        # anything else goes through the expression server
        if expr.isidentifier():
            try:
                self.ldb.print_variable(expr)
                return
            except TargetError:
                pass
        value = self.ldb.evaluate(expr)
        self.say(str(value))

    def cmd_info(self, what: str) -> None:
        if what.startswith("break"):
            target = self.ldb.current
            for address, bp in sorted(target.breakpoints.planted.items()):
                self.say("0x%x %s" % (address, bp.note))
        elif what.startswith("checkpoint"):
            target = self.ldb.current
            if target.replay is None:
                self.say("not recording")
                return
            for ck in target.replay.ring.entries:
                self.say("ckpt %d at icount %d pc=0x%x (%s)"
                         % (ck.cid, ck.icount, ck.pc, ck.kind))
        else:
            self.say("info: breaks | checkpoints")

    # -- observability ------------------------------------------------------

    def cmd_stats(self) -> None:
        """Print every nonzero metric in the debugger's registry."""
        snapshot = self.ldb.obs.metrics.snapshot()
        if not snapshot:
            self.say("no metrics recorded")
            return
        width = max(len(name) for name in snapshot)
        for name in sorted(snapshot):
            value = snapshot[name]
            text = "%g" % value if isinstance(value, float) else str(value)
            self.say("%-*s  %s" % (width, name, text))

    def cmd_sim(self) -> None:
        """Print the current target's simulator-engine counters."""
        target = self.ldb.current
        if target is None:
            self.say("no target")
            return
        process = getattr(target, "process", None)
        if process is None:
            self.say("target %s has no in-process simulator" % target.name)
            return
        engine = process.cpu.engine
        info = engine.describe()
        self.say("engine %s" % engine.name)
        if not info:
            return
        width = max(len(name) for name in info)
        for name in sorted(info):
            self.say("%-*s  %s" % (width, name, info[name]))

    def cmd_trace(self, rest: str) -> None:
        tracer = self.ldb.obs.tracer
        arg, _, operand = rest.partition(" ")
        if arg == "on":
            tracer.enable()
            self.say("tracing on")
        elif arg == "off":
            tracer.disable()
            self.say("tracing off")
        elif arg == "dump":
            path = operand.strip()
            if path:
                from ..machines.atomicio import atomic_write_text
                count = len(tracer.records())
                atomic_write_text(path, tracer.dump())
                self.say("%d trace records written to %s" % (count, path))
            else:
                self.out.write(tracer.dump())
        elif arg == "clear":
            tracer.clear()
            self.say("trace buffer cleared")
        else:
            self.say("trace: on | off | dump [file] | clear")

    def cmd_triage(self, rest: str) -> None:
        """Batch-triage a corpus of crash artifacts from inside the
        REPL: `triage <dir|manifest.json|artifact> [workers]`.  The
        full flag surface lives on the `ldb triage` subcommand."""
        from ..triage import TriageEngine, TriageError
        words = rest.split()
        if not words:
            self.say("usage: triage <dir|manifest.json|artifact> [workers]")
            return
        workers = int(words[1]) if len(words) > 1 else 4
        # share the debugger's registry so `stats` shows triage.*
        engine = TriageEngine(workers=workers, obs=self.ldb.obs)
        try:
            report = engine.triage(words[0])
        except TriageError as err:
            self.say("ldb: triage: %s" % err)
            return
        self.out.write(report.render())

    def cmd_serve(self, rest: str) -> None:
        """Start the session server (docs/ldb.md, DESIGN.md Sec. 11)
        on a background thread; this CLI keeps working beside it."""
        if self.server is not None:
            self.say("session server already listening on %s:%d"
                     % (self.server.host, self.server.port))
            return
        from ..serve import DebugServer
        port = int(rest) if rest else 0
        self.server = DebugServer(port=port)
        self.say("session server listening on %s:%d"
                 % (self.server.host, self.server.port))

    def cmd_sessions(self) -> None:
        if self.server is None:
            self.say("no session server (start one with: serve [port])")
            return
        rows = self.server.manager.list_sessions()
        if not rows:
            self.say("no sessions")
            return
        for row in rows:
            self.say("%s  %-8s queued=%d busy=%s idle=%.1fs done=%d  %s"
                     % (row["session"], row["state"], row["queued"],
                        "y" if row["busy"] else "n", row["idle_seconds"],
                        row["commands_done"], row.get("reason", "")))


def triage_main(argv: List[str]) -> int:
    """The `ldb triage` subcommand: batch mode, no REPL."""
    import argparse

    ap = argparse.ArgumentParser(
        prog="ldb triage",
        description="batch-triage a corpus of crash artifacts (core "
                    "files and .ldbrec recordings) into ranked, "
                    "deduplicated crash groups")
    ap.add_argument("corpus",
                    help="a directory of artifacts, a JSON manifest, "
                         "or a single artifact file")
    ap.add_argument("--workers", type=int, default=4,
                    help="parallel triage workers (default 4; 1 = serial)")
    ap.add_argument("--mode", default="thread",
                    choices=["thread", "process"],
                    help="worker pool flavor (default thread)")
    ap.add_argument("--json", metavar="FILE",
                    help="also write the full report as JSON")
    ap.add_argument("--top", type=int, default=10,
                    help="crash groups to show (default 10)")
    ap.add_argument("--frames", type=int, default=8,
                    help="exemplar backtrace frames to show (default 8)")
    args = ap.parse_args(argv)

    from ..triage import TriageEngine, TriageError
    engine = TriageEngine(workers=args.workers, mode=args.mode)
    try:
        report = engine.triage(args.corpus)
    except TriageError as err:
        sys.stderr.write("ldb triage: %s\n" % err)
        return 2
    sys.stdout.write(report.render(top=args.top, frames=args.frames))
    if args.json:
        report.dump_json(args.json)
        sys.stdout.write("full report written to %s\n" % args.json)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "triage":
        return triage_main(argv[1:])

    ap = argparse.ArgumentParser(prog="ldb", description="a retargetable debugger")
    ap.add_argument("image", nargs="?", help="program image from rcc -o")
    ap.add_argument("--source", help="compile and debug a C source file")
    ap.add_argument("--core", help="open a core file post-mortem")
    ap.add_argument("--replay", help="reopen a saved recording (.ldbrec)")
    ap.add_argument("--target", default="rmips",
                    choices=["rmips", "rmipsel", "rsparc", "rm68k", "rvax"])
    args = ap.parse_args(argv)
    cli = Cli()
    if args.source:
        cli.compile_source(args.source, args.target)
    elif args.core:
        cli.cmd_core(args.core)
    elif args.replay:
        cli.cmd_replay(args.replay)
    elif args.image:
        cli.load_image(args.image)
    else:
        ap.error("give an image, --source, --core, or --replay")
    cli.repl()
    return 0


if __name__ == "__main__":
    sys.exit(main())
