"""The expression server (paper Sec. 3, Fig. 3).

Assignment and expression evaluation use an "expression server" — a
variant of the compiler front end in a separate conversation, connected
to ldb by byte streams.  To evaluate an expression ldb sends it to the
server; the server parses and type-checks it and produces an
intermediate-code tree.  When the server fails to find an identifier
``a``, it sends ``/a ExpressionServer.lookup`` back to ldb; interpreting
that procedure makes ldb find ``a``'s symbol-table dictionary and send
type and symbol data (sequences of C tokens) back, from which the server
reconstructs the entry on the fly.

The server's IR tree is not passed to a compiler back end: it is
**rewritten as a PostScript procedure** (:func:`rewrite_to_ps` — the
analog of the paper's 124-line rewriter for lcc's 112-operator IR),
sent to ldb followed by ``ExpressionServer.result``, and interpreted by
the same embedded interpreter that reads symbol tables.  ldb drives the
conversation by applying ``cvx stopped`` to the open pipe.

New symbol entries are discarded after each expression; type
information persists until the debugger switches targets (RESET).
Procedure calls into the target are not yet supported — exactly the
paper's future-work limitation.
"""

from __future__ import annotations

import json
import socket
import threading
from typing import Dict, List, Optional

from ..cc import tree as ast
from ..cc.ctypes_ import (
    ArrayType,
    CType,
    FunctionType,
    PointerType,
    StructType,
    TypeSystem,
    UnionType,
)
from ..cc.ir import BINOP, CNST, CVT, INDIR, IRNode
from ..cc.irgen import kind_of
from ..cc.lexer import CError, tokenize
from ..cc.parser import Parser
from ..cc.sema import Sema
from ..cc.symtab import CSymbol
from ..postscript import Location, Name, PSArray, PSDict, PSStop, Reader, String


class EvalError(Exception):
    """An expression failed to parse, type-check, or evaluate."""


# ======================================================================
# pure expression lowering: typed AST -> a single IR tree

_BINOP_NAMES = {"+": "ADD", "-": "SUB", "*": "MUL", "/": "DIV", "%": "MOD",
                "&": "BAND", "|": "BOR", "^": "BXOR", "<<": "LSH", ">>": "RSH"}
_CMP_NAMES = {"==": "EQ", "!=": "NE", "<": "LT", "<=": "LE", ">": "GT", ">=": "GE"}


def WHERE(sym: CSymbol) -> IRNode:
    """A symbol's location, carried as its PostScript where-fragment."""
    node = IRNode("WHERE", "p", symbol=sym)
    node.value = sym.where_ps
    return node


class PureLowering:
    """Lower a typed expression AST to one side-effect-free-ish IR tree
    (assignments allowed; statements and target calls are not)."""

    def lower(self, e: ast.Expr) -> IRNode:
        method = getattr(self, "_lw_" + type(e).__name__, None)
        if method is None:
            raise EvalError("cannot evaluate %s here" % type(e).__name__)
        return method(e)

    def _lw_IntLit(self, e):
        return CNST(kind_of(e.ctype), e.value)

    def _lw_FloatLit(self, e):
        return CNST(kind_of(e.ctype), e.value)

    def _lw_Ident(self, e):
        sym = e.symbol
        if isinstance(sym.ctype, (ArrayType, FunctionType)):
            return self.addr(e)
        return INDIR(kind_of(sym.ctype), WHERE(sym))

    def _lw_Unary(self, e):
        op = e.op
        if op == "&":
            return self.addr(e.operand)
        if op == "*":
            return INDIR(kind_of(e.ctype), self.lower(e.operand))
        if op == "+":
            return self.lower(e.operand)
        if op == "-":
            return IRNode("NEG", kind_of(e.ctype), [self.lower(e.operand)])
        if op == "~":
            return IRNode("BCOM", kind_of(e.ctype), [self.lower(e.operand)])
        if op == "!":
            return IRNode("NOT", "i4", [self.lower(e.operand)])
        if op in ("pre++", "pre--", "post++", "post--"):
            raise EvalError("++/-- in debugger expressions is not supported")
        raise EvalError("cannot evaluate unary %s" % op)

    def _lw_Binary(self, e):
        op = e.op
        if op in _CMP_NAMES:
            kind = kind_of(e.left.ctype)
            return BINOP(_CMP_NAMES[op], kind, self.lower(e.left), self.lower(e.right))
        if op == "&&":
            return IRNode("ANDAND", "i4", [self.lower(e.left), self.lower(e.right)])
        if op == "||":
            return IRNode("OROR", "i4", [self.lower(e.left), self.lower(e.right)])
        kind = kind_of(e.ctype)
        left = self.lower(e.left)
        right = self.lower(e.right)
        if kind == "p":  # pointer arithmetic: scale the integer operand
            elem = e.ctype.ref.size if isinstance(e.ctype, PointerType) else 1
            if self._pointerish(e.left):
                right = BINOP("MUL", "i4", right, CNST("i4", max(elem, 1)))
            else:
                left = BINOP("MUL", "i4", left, CNST("i4", max(elem, 1)))
        return BINOP(_BINOP_NAMES[op], kind, left, right)

    def _pointerish(self, e) -> bool:
        t = e.ctype
        return isinstance(t, (PointerType, ArrayType))

    def _lw_Assign(self, e):
        if e.op != "=":
            raise EvalError("compound assignment is not supported; "
                            "write it out")
        kind = kind_of(e.target.ctype)
        node = IRNode("ASGN", kind, [self.addr_or_where(e.target),
                                     self.lower(e.value)])
        return node

    def _lw_Cond(self, e):
        return IRNode("COND", kind_of(e.ctype),
                      [self.lower(e.cond), self.lower(e.then), self.lower(e.els)])

    def _lw_Cast(self, e):
        inner = self.lower(e.operand)
        from_kind = kind_of(e.operand.ctype)
        to_kind = kind_of(e.target_type)
        if from_kind == to_kind or e.target_type.is_void():
            return inner
        return CVT(to_kind, from_kind, inner)

    def _lw_Index(self, e):
        base = self.lower(e.base)
        elem = max(e.ctype.size, 1)
        index = BINOP("MUL", "i4", self.lower(e.index), CNST("i4", elem))
        addr = BINOP("ADD", "p", base, index)
        if isinstance(e.ctype, ArrayType):
            return addr
        return INDIR(kind_of(e.ctype), addr)

    def _lw_Member(self, e):
        if e.arrow:
            base = self.lower(e.base)
        else:
            base = self.addr(e.base)
        addr = BINOP("ADD", "p", base, CNST("i4", e.field.offset)) \
            if e.field.offset else base
        if isinstance(e.ctype, ArrayType):
            return addr
        if isinstance(e.ctype, (StructType, UnionType)):
            raise EvalError("cannot produce a whole struct value; "
                            "pick a member")
        return INDIR(kind_of(e.ctype), addr)

    def _lw_Comma(self, e):
        raise EvalError("the comma operator is not supported here")

    def _lw_Call(self, e):
        # the paper, Sec. 7.1: "ldb cannot evaluate expressions that
        # include procedure calls into the target process"
        raise EvalError("procedure calls into the target are not yet supported")

    def addr(self, e) -> IRNode:
        if isinstance(e, ast.Ident):
            node = WHERE(e.symbol)
            return IRNode("LOCADDR", "p", [node])
        if isinstance(e, ast.Unary) and e.op == "*":
            return self.lower(e.operand)
        if isinstance(e, ast.Index):
            base = self.lower(e.base)
            elem = max(e.ctype.size, 1)
            index = BINOP("MUL", "i4", self.lower(e.index), CNST("i4", elem))
            return BINOP("ADD", "p", base, index)
        if isinstance(e, ast.Member):
            base = self.lower(e.base) if e.arrow else self.addr(e.base)
            if e.field.offset:
                return BINOP("ADD", "p", base, CNST("i4", e.field.offset))
            return base
        if isinstance(e, ast.Cast) and e.implicit:
            return self.addr(e.operand)
        raise EvalError("expression has no address")

    def addr_or_where(self, e) -> IRNode:
        """Assignment targets: a WHERE (registers allowed) or an address."""
        if isinstance(e, ast.Ident):
            return WHERE(e.symbol)
        return self.addr(e)


# ======================================================================
# IR -> PostScript: the rewriter (the paper's 124 lines for 112 operators)

_FETCH = {"i1": "fetch8", "u1": "fetch8", "i2": "fetch16", "u2": "fetch16",
          "i4": "fetch32", "u4": "fetch32", "p": "fetch32",
          "f4": "fetchf32", "f8": "fetchf64", "f10": "fetchf80"}
_STORE = {"i1": "store8", "u1": "store8", "i2": "store16", "u2": "store16",
          "i4": "store32", "u4": "store32", "p": "store32",
          "f4": "storef32", "f8": "storef64", "f10": "storef80"}
_UNSIGNED_FIX = {"u1": " zx8", "u2": " zx16", "u4": " u32", "p": " u32"}
_ARITH = {"ADD": "add", "SUB": "sub", "MUL": "mul",
          "BAND": "and", "BOR": "or", "BXOR": "xor"}
_CMP = {"EQ": "eq", "NE": "ne", "LT": "lt", "LE": "le", "GT": "gt", "GE": "ge"}


def rewrite_to_ps(node: IRNode) -> str:
    """Rewrite an expression-server IR tree into PostScript."""
    op, kind = node.op, node.kind
    unsigned = kind.startswith("u") or kind == "p"
    floaty = kind.startswith("f")
    if op == "CNST":
        return repr(float(node.value)) if floaty else str(int(node.value))
    if op == "WHERE":
        return node.value  # the symbol's where-fragment: pushes a location
    if op == "LOCADDR":
        return "%s locoffset" % rewrite_to_ps(node.kids[0])
    if op == "INDIR":
        addr = node.kids[0]
        if addr.op == "WHERE":
            return "ExprMem %s %s" % (addr.value, _FETCH[kind])
        return "ExprMem %s (d) Absolute %s" % (rewrite_to_ps(addr), _FETCH[kind])
    if op == "ASGN":
        target, value = node.kids
        loc = target.value if target.op == "WHERE" \
            else "%s (d) Absolute" % rewrite_to_ps(target)
        return "%s dup ExprMem %s 3 -1 roll %s" \
            % (rewrite_to_ps(value), loc, _STORE[kind])
    if op == "CVT":
        return _rewrite_cvt(node)
    if op == "NEG":
        return "%s neg%s" % (rewrite_to_ps(node.kids[0]), "" if floaty else " c32")
    if op == "BCOM":
        return "%s not c32" % rewrite_to_ps(node.kids[0])
    if op == "NOT":
        return "%s 0 eq { 1 } { 0 } ifelse" % rewrite_to_ps(node.kids[0])
    if op in _ARITH:
        a, b = (rewrite_to_ps(k) for k in node.kids)
        if floaty:
            return "%s %s %s" % (a, b, _ARITH[op])
        return "%s %s %s c32" % (a, b, _ARITH[op])
    if op == "DIV":
        a, b = (rewrite_to_ps(k) for k in node.kids)
        if floaty:
            return "%s %s div" % (a, b)
        if unsigned:
            return "%s u32 %s u32 cdiv c32" % (a, b)
        return "%s %s cdiv" % (a, b)
    if op == "MOD":
        a, b = (rewrite_to_ps(k) for k in node.kids)
        if unsigned:
            return "%s u32 %s u32 cmod c32" % (a, b)
        return "%s %s cmod" % (a, b)
    if op == "LSH":
        return "%s %s bitshift c32" % tuple(rewrite_to_ps(k) for k in node.kids)
    if op == "RSH":
        a, b = (rewrite_to_ps(k) for k in node.kids)
        if unsigned:
            return "%s u32 %s neg bitshift" % (a, b)
        return "%s %s asr32" % (a, b)
    if op in _CMP:
        a, b = (rewrite_to_ps(k) for k in node.kids)
        fix = _UNSIGNED_FIX.get(kind, "")
        return "%s%s %s%s %s { 1 } { 0 } ifelse" % (a, fix, b, fix, _CMP[op])
    if op == "COND":
        c, t, f = (rewrite_to_ps(k) for k in node.kids)
        return "%s 0 ne { %s } { %s } ifelse" % (c, t, f)
    if op == "ANDAND":
        a, b = (rewrite_to_ps(k) for k in node.kids)
        return "%s 0 ne { %s 0 ne { 1 } { 0 } ifelse } { 0 } ifelse" % (a, b)
    if op == "OROR":
        a, b = (rewrite_to_ps(k) for k in node.kids)
        return "%s 0 ne { 1 } { %s 0 ne { 1 } { 0 } ifelse } ifelse" % (a, b)
    raise EvalError("the rewriter has no case for %s.%s" % (op, kind))


def _rewrite_cvt(node: IRNode) -> str:
    inner = rewrite_to_ps(node.kids[0])
    to_kind, from_kind = node.kind, node.from_kind
    if to_kind.startswith("f") and from_kind.startswith("f"):
        return inner
    if to_kind.startswith("f"):
        if from_kind in ("u4", "p"):
            return "%s u32 cvr" % inner
        return "%s cvr" % inner
    if from_kind.startswith("f"):
        body = "%s truncate cvi c32" % inner
    else:
        body = inner
    narrowing = {"i1": " sx8", "u1": " zx8", "i2": " sx16", "u2": " zx16"}
    return body + narrowing.get(to_kind, "")


# ======================================================================
# the server

class ServerSema(Sema):
    """The modified front end: a symbol-table miss asks the debugger."""

    def __init__(self, types: TypeSystem, lookup_miss, unit_name="<expr>"):
        super().__init__(types, unit_name)
        self.lookup_miss = lookup_miss

    def _expr_Ident(self, e):
        if self.scope.lookup(e.name) is None:
            sym = self.lookup_miss(e.name)
            if sym is not None:
                self.globals.declare(sym)
        return super()._expr_Ident(e)


class ExpressionServer:
    """The server process body: speaks the two byte streams of Fig. 3."""

    def __init__(self, cmd_in, ps_out):
        self.cmd_in = cmd_in
        self.ps_out = ps_out
        self.types: Optional[TypeSystem] = None
        #: persistent type source text (saved until the target changes)
        self.type_defs: List[str] = []
        self._known_defs = set()

    def serve_forever(self) -> None:
        while True:
            line = self.cmd_in.readline()
            if not line:
                return
            line = line.strip()
            if not line:
                continue
            verb, _, payload = line.partition(" ")
            if verb == "QUIT":
                return
            if verb == "RESET":
                arch = json.loads(payload)["arch"]
                self.types = TypeSystem(arch)
                self.type_defs = []
                self._known_defs = set()
                continue
            if verb == "EXPR":
                self.evaluate_one(json.loads(payload)["text"])
                continue
            # stray SYM/NOSYM outside a lookup: ignore

    # -- one expression ------------------------------------------------------

    def evaluate_one(self, text: str) -> None:
        try:
            ps_code = self.compile_expression(text)
        except (CError, EvalError) as err:
            self._emit("%s ExpressionServer.error\n" % _ps_quote(str(err)))
            return
        self._emit("%s\nExpressionServer.result\n" % ps_code)

    def compile_expression(self, text: str) -> str:
        if self.types is None:
            self.types = TypeSystem("rmips")
        parser = self._primed_parser()
        parser.tokens = tokenize(text, "<expr>")
        parser.pos = 0
        expr = parser.expression()
        if parser.peek().kind != "eof":
            raise EvalError("trailing junk after expression")
        sema = ServerSema(self.types, self._lookup_miss_factory(parser))
        self._declare_type_constants(parser, sema)
        typed = sema.expr(expr)
        tree_ir = PureLowering().lower(typed)
        return rewrite_to_ps(tree_ir)

    def _primed_parser(self) -> Parser:
        source = "\n".join(self.type_defs)
        parser = Parser(source, "<types>", self.types)
        self._pending_decls = parser.parse_translation_unit().decls
        return parser

    def _declare_type_constants(self, parser: Parser, sema: Sema) -> None:
        for decl in self._pending_decls:
            if isinstance(decl, ast.VarDecl) and decl.storage == "enumconst":
                sema.global_decl(decl)

    def _lookup_miss_factory(self, parser: Parser):
        def lookup_miss(name: str) -> Optional[CSymbol]:
            # ask the debugger: "/name ExpressionServer.lookup"
            self._emit("/%s ExpressionServer.lookup\n" % name)
            reply = self.cmd_in.readline()
            if not reply:
                raise EvalError("debugger went away during lookup")
            verb, _, payload = reply.strip().partition(" ")
            if verb == "NOSYM":
                raise EvalError("undeclared identifier %r" % name)
            if verb != "SYM":
                raise EvalError("bad lookup reply %r" % reply)
            info = json.loads(payload)
            for cdef in info.get("cdefs", ()):
                self._learn_type(cdef, parser)
            ctype = self._parse_decl_type(info["decl"], parser)
            sym = CSymbol(info["name"], ctype, "extern")
            sym.where_ps = info["where"]
            return sym

        return lookup_miss

    def _learn_type(self, cdef: str, parser: Parser) -> None:
        if cdef in self._known_defs:
            return
        self._known_defs.add(cdef)
        self.type_defs.append(cdef + ";")
        # feed it to the current parser so this expression sees it too
        saved_tokens, saved_pos = parser.tokens, parser.pos
        parser.tokens = tokenize(cdef + ";", "<cdef>")
        parser.pos = 0
        self._pending_decls.extend(parser.external_declaration())
        parser.tokens, parser.pos = saved_tokens, saved_pos

    def _parse_decl_type(self, decl: str, parser: Parser) -> CType:
        saved_tokens, saved_pos = parser.tokens, parser.pos
        parser.tokens = tokenize(decl + ";", "<decl>")
        parser.pos = 0
        base, _storage, _out = parser.declaration_specifiers()
        _name, ctype, _token = parser.declarator(base)
        parser.tokens, parser.pos = saved_tokens, saved_pos
        return ctype

    def _emit(self, text: str) -> None:
        self.ps_out.write(text)
        self.ps_out.flush()


def _ps_quote(text: str) -> str:
    out = []
    for ch in text:
        out.append("\\" + ch if ch in "()\\" else ch)
    return "(%s)" % "".join(out)


# ======================================================================
# the debugger side

class ExpressionClient:
    """ldb's end: two pipes to a server thread (Fig. 3).

    Putting the server in a separate conversation means the debugger
    treats each expression as a string and then interprets PostScript
    until the server tells it to stop (``cvx stopped``).
    """

    def __init__(self, debugger):
        self.debugger = debugger
        cmd_a, cmd_b = socket.socketpair()
        ps_a, ps_b = socket.socketpair()
        self.cmd_out = cmd_a.makefile("w", encoding="latin-1", newline="\n")
        self.ps_in = ps_a.makefile("r", encoding="latin-1", newline="\n")
        server = ExpressionServer(
            cmd_b.makefile("r", encoding="latin-1", newline="\n"),
            ps_b.makefile("w", encoding="latin-1", newline="\n"))
        self.server = server
        self.thread = threading.Thread(target=server.serve_forever, daemon=True)
        self.thread.start()
        self.reader = Reader(self.ps_in, "expression-server")
        self._arch_sent: Optional[str] = None
        self._error: Optional[str] = None

    # -- interpreter operators the server conversation uses ---------------------

    def _install_ops(self, interp, target, frame) -> PSDict:
        d = PSDict()
        client = self

        def op_lookup(ip) -> None:
            name = ip.pop_name_or_string_text()
            entry = frame.resolve(name)
            if entry is None:
                client._send("NOSYM %s" % name)
                return
            client._send("SYM %s" % json.dumps(client._symbol_info(
                name, entry, target, frame)))

        def op_result(ip) -> None:
            raise PSStop()

        def op_error(ip) -> None:
            client._error = ip.pop_string().text
            raise PSStop()

        from ..postscript import Operator
        d["ExpressionServer.lookup"] = Operator("ExpressionServer.lookup", op_lookup)
        d["ExpressionServer.result"] = Operator("ExpressionServer.result", op_result)
        d["ExpressionServer.error"] = Operator("ExpressionServer.error", op_error)
        d["ExprMem"] = frame.memory
        return d

    def _symbol_info(self, name: str, entry: PSDict, target, frame) -> Dict:
        """Type and symbol data, as C tokens plus a where-fragment."""
        typedict = entry["type"]
        decl_pattern = typedict["decl"].text
        decl = decl_pattern.replace("%s", name) if "%s" in decl_pattern \
            else "%s %s" % (decl_pattern, name)
        cdefs: List[str] = []
        self._collect_cdefs(typedict, cdefs, set())
        where = entry["where"]
        if isinstance(where, String):
            where_src = where.text
        elif isinstance(where, Location):
            where_src = _location_source(where)
        elif isinstance(where, PSArray):
            where_src = _proc_source(where)
        else:
            raise EvalError("symbol %s has no usable location" % name)
        return {"name": name, "decl": decl, "cdefs": cdefs, "where": where_src}

    def _collect_cdefs(self, typedict: PSDict, out: List[str], seen) -> None:
        if id(typedict) in seen:
            return
        seen.add(id(typedict))
        for key in ("elemtype", "pointee"):
            inner = typedict.get(key)
            if isinstance(inner, PSDict):
                self._collect_cdefs(inner, out, seen)
        fields = typedict.get("fields")
        if fields is not None:
            for field in fields:
                self._collect_cdefs(field["ftype"], out, seen)
        cdef = typedict.get("cdef")
        if cdef is not None and cdef.text not in out:
            out.append(cdef.text)

    # -- evaluation -------------------------------------------------------------------

    def evaluate(self, text: str, target, frame):
        interp = self.debugger.interp
        if self._arch_sent != target.arch_name:
            self._send("RESET %s" % json.dumps({"arch": target.arch_name}))
            self._arch_sent = target.arch_name
        self._error = None
        ops = self._install_ops(interp, target, frame)
        pushed = 0
        for d in target.eval_dicts():
            interp.push_dict(d)
            pushed += 1
        frame_dict = PSDict()
        frame_dict["FrameBase"] = frame.frame_base
        interp.push_dict(frame_dict)
        interp.push_dict(ops)
        pushed += 2
        depth = len(interp.ostack)
        try:
            self._send("EXPR %s" % json.dumps({"text": text}))
            # "cvx stopped" applied to the open pipe from the server
            interp.push(self.reader)
            interp.run("cvx stopped pop")
            if self._error is not None:
                raise EvalError(self._error)
            if interp.stop_error is not None:
                # the run stopped on an interpreter error, not on the
                # server's final ``stop`` — a failed fetch/store (bad
                # address, read-only post-mortem target ...) must not
                # pass off whatever is on the stack as the result
                self._drain_failed_program()
                raise EvalError("expression failed: %s" % interp.stop_error)
            if len(interp.ostack) <= depth:
                raise EvalError("expression produced no value")
            return interp.pop()
        finally:
            del interp.ostack[depth:]
            for _ in range(pushed):
                interp.pop_dict_stack()

    def _send(self, line: str) -> None:
        self.cmd_out.write(line + "\n")
        self.cmd_out.flush()

    def _drain_failed_program(self) -> None:
        """An error stopped the run mid-program: the server's final
        ``ExpressionServer.result`` line is still in the pipe and would
        prefix (and wreck) the *next* expression — consume the tail."""
        while True:
            line = self.ps_in.readline()
            if not line or line.strip() == "ExpressionServer.result":
                return


def _location_source(loc: Location) -> str:
    if loc.mode == "immediate":
        return "%d Immediate" % loc.value
    return "%d (%s) Absolute" % (loc.offset, loc.space)


def _proc_source(proc: PSArray) -> str:
    parts = []
    for item in proc.items:
        if isinstance(item, PSArray):
            parts.append("{ %s }" % _proc_source(item))
        elif isinstance(item, String):
            parts.append(_ps_quote(item.text))
        elif isinstance(item, Name):
            parts.append(("/" if item.literal else "") + item.text)
        else:
            parts.append(str(item))
    return " ".join(parts)
