"""Breakpoints (paper Sec. 3, 6).

Implemented entirely in the debugger with fetches and stores — the nub
protocol never mentions breakpoints or single-stepping.  ldb plants a
breakpoint at an instruction by overwriting it with the trap pattern;
to resume, it "interprets" the instruction out of line.  In the interim
scheme breakpoints go only at the no-op instructions the compiler
placed at stopping points, so interpreting one means skipping it.

The implementation is machine-independent but manipulates four items of
machine-dependent data: the break and no-op bit patterns, the type used
to fetch and store instructions, and the pc advance after interpreting
the no-op.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..nub import protocol
from ..nub.session import NubError
from ..postscript import Location

_KIND_BY_SIZE = {1: "i8", 2: "i16", 4: "i32"}


class BreakpointError(Exception):
    pass


class Breakpoint:
    __slots__ = ("address", "saved", "enabled", "note")

    def __init__(self, address: int, saved: int, note: str = ""):
        self.address = address
        self.saved = saved
        self.enabled = True
        self.note = note

    def __repr__(self) -> str:
        return "<bp 0x%x %s>" % (self.address, self.note)


class BreakpointTable:
    """All breakpoints planted in one target."""

    def __init__(self, target):
        self.target = target
        md = target.machdep
        self.kind = _KIND_BY_SIZE[md.insn_fetch_size]
        self.nop_pattern = int.from_bytes(md.nop_bytes_le, "little")
        self.break_pattern = int.from_bytes(md.break_bytes_le, "little")
        self.noop_advance = md.noop_advance
        self.planted: Dict[int, Breakpoint] = {}
        #: does this nub speak the Sec. 7.1 breakpoint extension?
        #: None = not yet probed; probing happens lazily because the
        #: baseline debugger must work against a minimal nub
        self._extension: Dict[str, bool] = {}

    # -- the Sec. 7.1 protocol extension --------------------------------------

    def _request(self, msg, expect):
        """One exchange through the target's transport: session and
        bare-channel targets surface errors identically."""
        return self.target.transport.transact(msg, expect=expect)

    def extension_available(self) -> bool:
        """Probe the nub (once) for the breakpoint-aware protocol."""
        if "ok" not in self._extension:
            try:
                reply = self._request(protocol.breaks(),
                                      expect=(protocol.MSG_BREAKLIST,))
            except NubError:
                self._extension["ok"] = False  # a minimal nub
            else:
                self._extension["ok"] = True
                self._adopt(protocol.parse_breaklist(reply))
        return self._extension["ok"]

    def resync(self) -> None:
        """After a reconnect: replay BREAKS and adopt whatever the nub
        still has planted — the paper's Sec. 7.1 recovery, for a session
        that survived its own connection's death."""
        if not self._extension.get("ok"):
            return  # never probed, or a minimal nub: nothing to replay
        try:
            reply = self._request(protocol.breaks(),
                                  expect=(protocol.MSG_BREAKLIST,))
        except NubError:
            return
        self._adopt(protocol.parse_breaklist(reply))

    def resync_after_restore(self) -> None:
        """After a checkpoint RESTORE: the target's memory (and the
        nub's planted table) rewound to checkpoint time, but *this*
        table is what the user sees — make the target match it.
        Checkpoint-time traps the user has since removed are unplanted;
        breakpoints set since the checkpoint are re-planted."""
        if self.extension_available():
            try:
                reply = self._request(protocol.breaks(),
                                      expect=(protocol.MSG_BREAKLIST,))
            except NubError:
                return
            nub_has = {address for address, _ in
                       protocol.parse_breaklist(reply)}
            for address in nub_has - set(self.planted):
                try:
                    self._request(protocol.unplant(address),
                                  expect=(protocol.MSG_OK,))
                except NubError:
                    pass  # the nub lost it on its own; nothing to undo
                self._invalidate_insn(address,
                                      len(self.target.machdep.nop_bytes_le))
            for address in set(self.planted) - nub_has:
                self._plant_via_extension(address)
        else:
            # plain stores: re-arm the current table (idempotent); traps
            # the checkpoint held for since-removed breakpoints cannot
            # be identified without the extension and stay planted
            for address in self.planted:
                self.store_insn(address, self.break_pattern)

    def _adopt(self, entries) -> None:
        """Recover breakpoints a previous (crashed) debugger planted."""
        for address, original_le in entries:
            if address not in self.planted:
                saved = int.from_bytes(original_le, "little")
                self.planted[address] = Breakpoint(address, saved,
                                                   note="adopted")

    def _plant_via_extension(self, address: int) -> bool:
        if not self.extension_available():
            return False
        trap = self.break_pattern.to_bytes(len(self.target.machdep.nop_bytes_le),
                                           "little")
        try:
            self._request(protocol.plant(address, trap),
                          expect=(protocol.MSG_OK,))
        except NubError:
            raise BreakpointError("nub rejected plant at 0x%x" % address)
        self._invalidate_insn(address, len(trap))
        return True

    def _remove_via_extension(self, address: int) -> bool:
        if not self.extension_available():
            return False
        try:
            self._request(protocol.unplant(address),
                          expect=(protocol.MSG_OK,))
        except NubError:
            raise BreakpointError("nub rejected unplant at 0x%x" % address)
        self._invalidate_insn(address, len(self.target.machdep.nop_bytes_le))
        return True

    def _invalidate_insn(self, address: int, length: int) -> None:
        # the extension writes code behind the wire memory's back; the
        # nub's code and data spaces address the same memory, so drop
        # cached blocks under both names
        self.target.wire.invalidate_range("c", address, length)
        self.target.wire.invalidate_range("d", address, length)

    def _code_loc(self, address: int) -> Location:
        return Location.absolute("c", address)

    def fetch_insn(self, address: int) -> int:
        value = self.target.wire.fetch(self._code_loc(address), self.kind)
        bits = 8 * len(self.target.machdep.nop_bytes_le)
        return value & ((1 << bits) - 1)

    def store_insn(self, address: int, pattern: int) -> None:
        self.target.wire.store(self._code_loc(address), self.kind, pattern)

    def _require_live(self) -> None:
        # planting patches target code; a core file has no code to patch
        if getattr(self.target, "post_mortem", False):
            raise BreakpointError(
                "target is post-mortem (a core file): breakpoints "
                "cannot be planted or removed")

    def plant(self, address: int, note: str = "") -> Breakpoint:
        """Overwrite the no-op at ``address`` with the trap pattern."""
        self._require_live()
        if address in self.planted:
            return self.planted[address]
        original = self.fetch_insn(address)
        if original != self.nop_pattern:
            raise BreakpointError(
                "0x%x does not hold a no-op (found 0x%x): the interim "
                "scheme plants breakpoints only at stopping points"
                % (address, original))
        if not self._plant_via_extension(address):
            self.store_insn(address, self.break_pattern)  # plain stores
        bp = Breakpoint(address, original, note)
        self.planted[address] = bp
        return bp

    def remove(self, address: int) -> None:
        self._require_live()
        bp = self.planted.pop(address, None)
        if bp is None:
            raise BreakpointError("no breakpoint at 0x%x" % address)
        if not self._remove_via_extension(address):
            self.store_insn(address, bp.saved)

    def remove_all(self) -> None:
        for address in list(self.planted):
            self.remove(address)

    def at(self, address: int) -> Optional[Breakpoint]:
        return self.planted.get(address)

    def resume_pc(self, trap_pc: int) -> int:
        """Where execution resumes after a breakpoint trap: the no-op is
        interpreted out of line by skipping it (machine-dependent
        advance)."""
        return trap_pc + self.noop_advance
