"""ldb's view of PostScript symbol tables (paper Sec. 2).

Wraps the top-level dictionary built by interpreting the loader table:
maps program counters to procedure entries (via the procs array),
resolves names by walking the uplink tree and then the statics and
externs dictionaries, finds stopping points by source location, and
*forces* lazily-evaluated values — ``where`` procedures, deferred
strings — replacing them with their results so each is interpreted at
most once per entry (Sec. 5, 7).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..postscript import (
    Interp,
    Location,
    PSArray,
    PSDict,
    PSError,
    String,
    is_executable,
)


class SymbolTable:
    """The program's top-level dictionary plus lookup machinery."""

    def __init__(self, interp: Interp, toplevel: PSDict, target=None):
        self.interp = interp
        self.toplevel = toplevel
        self.target = target  # supplies the dictionaries forcing needs
        self.architecture = toplevel["architecture"].text
        self._proc_addr_map: Optional[Dict[int, PSDict]] = None

    # -- forcing -----------------------------------------------------------

    def force(self, entry: PSDict, key: str):
        """Get ``entry[key]``, executing a deferred procedure once.

        Attempts to execute a literal object push it back, so procedures
        interpreted at most once are replaced by their results (Sec. 5).
        """
        value = entry[key]
        if isinstance(value, (PSArray, String)) and is_executable(value):
            value = self._execute(value)
            entry[key] = value
        return value

    def _execute(self, proc):
        interp = self.interp
        pushed = 0
        if self.target is not None:
            for d in self.target.eval_dicts():
                interp.push_dict(d)
                pushed += 1
        try:
            depth = len(interp.ostack)
            interp.call(proc)
            if len(interp.ostack) <= depth:
                raise PSError("stackunderflow", "deferred value produced nothing")
            return interp.pop()
        finally:
            for _ in range(pushed):
                interp.pop_dict_stack()

    # -- procedures -------------------------------------------------------------

    def procs(self) -> List[PSDict]:
        return list(self.toplevel["procs"])

    def proc_address(self, entry: PSDict) -> int:
        """The procedure's code address (forces the where value)."""
        where = self.force(entry, "where")
        if isinstance(where, Location):
            return where.offset
        if isinstance(where, (int,)):
            return where
        raise PSError("typecheck", "procedure where is %r" % (where,))

    def proc_entry_for_pc(self, pc: int) -> Optional[PSDict]:
        """Map a pc to the symbol-table entry of its procedure.

        ldb uses the procs array to build a table mapping procedure
        addresses to entries; mapping the pc to a procedure address is
        the linker interface's job (Sec. 2).
        """
        if self._proc_addr_map is None:
            self._proc_addr_map = {}
            for entry in self.procs():
                self._proc_addr_map[self.proc_address(entry)] = entry
        if self.target is not None:
            hit = self.target.linker.proc_containing(pc)
            if hit is None:
                return None
            address = hit[0]
            entry = self._proc_addr_map.get(address)
            return entry
        # without a linker, fall back to a scan
        best = None
        best_addr = -1
        for address, entry in self._proc_addr_map.items():
            if address <= pc and address > best_addr:
                best, best_addr = entry, address
        return best

    def extern_entry(self, name: str) -> Optional[PSDict]:
        return self.toplevel["externs"].get(name)

    # -- stopping points ----------------------------------------------------------

    def loci(self, proc_entry: PSDict) -> List[PSDict]:
        """The stopping points; deferred arrays are forced on first use
        and replaced with their results (Sec. 5)."""
        return list(self.force(proc_entry, "loci"))

    def stop_address(self, stop: PSDict) -> Optional[int]:
        where = None
        if "where" in stop:
            value = stop["where"]
            if isinstance(value, (PSArray, String)) and is_executable(value):
                value = self._execute(value)
                stop["where"] = value
            where = value
        if isinstance(where, Location):
            return where.offset
        return where if isinstance(where, int) else None

    def stop_for_pc(self, proc_entry: PSDict, pc: int) -> Optional[Tuple[int, PSDict]]:
        """The stopping point at (or nearest at-or-before) ``pc``."""
        best: Optional[Tuple[int, PSDict]] = None
        best_addr = -1
        for index, stop in enumerate(self.loci(proc_entry)):
            address = self.stop_address(stop)
            if address is None:
                continue
            if address <= pc and address > best_addr:
                best, best_addr = (index, stop), address
        return best

    def stops_for_line(self, filename: str, line: int) -> List[Tuple[PSDict, PSDict]]:
        """All stopping points at a source line (there can be several —
        the C preprocessor can put multiple stops on one line, Sec. 2).

        Returns (procedure entry, stop) pairs.
        """
        out: List[Tuple[PSDict, PSDict]] = []
        sourcemap = self.toplevel["sourcemap"]
        entries = sourcemap.get(filename)
        if entries is None:
            return out
        for proc_entry in entries:
            for stop in self.loci(proc_entry):
                if stop["sourcey"] == line:
                    out.append((proc_entry, stop))
        return out

    def first_stop_of(self, proc_entry: PSDict) -> Optional[PSDict]:
        loci = self.loci(proc_entry)
        return loci[0] if loci else None

    # -- name resolution -------------------------------------------------------------

    def resolve(self, name: str, stop: Optional[PSDict],
                proc_entry: Optional[PSDict]) -> Optional[PSDict]:
        """Resolve a name from a stopping point's context (Sec. 2).

        Walk up the tree of local entries from the stopping point's
        symbol; at the root search the procedure's statics, then the
        program's externs.
        """
        if stop is not None:
            entry = stop.get("syms")
            while entry is not None:
                if entry["name"].text == name:
                    return entry
                entry = entry.get("uplink")
        if proc_entry is not None:
            statics = proc_entry.get("statics")
            if statics is not None and name in statics:
                return statics[name]
        return self.extern_entry(name)

    # -- values ---------------------------------------------------------------------

    def location_of(self, entry: PSDict) -> Location:
        where = self.force(entry, "where")
        if not isinstance(where, Location):
            raise PSError("typecheck", "where of %s is %r"
                          % (entry["name"].text, where))
        return where

    def type_of(self, entry: PSDict) -> PSDict:
        return entry["type"]

    def decl_of(self, entry: PSDict) -> str:
        pattern = self.type_of(entry)["decl"].text
        name = entry["name"].text
        return pattern.replace("%s", name) if "%s" in pattern \
            else "%s %s" % (pattern, name)
