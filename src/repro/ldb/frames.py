"""The stack-frame abstraction (paper Sec. 4).

The machine-independent class holds the program counter, the
symbol-table entry of the corresponding procedure, and methods that
compute scopes for name resolution.  Machine-dependent subtypes (in
:mod:`repro.ldb.machdep`) supply only two methods: one that walks down
the stack and one that restores registers from the stack — together
they build the caller's abstract memory, reusing aliases from the called
frame for callee-saved registers it did not modify (Sec. 4.1).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..postscript import ABSOLUTE, KIND_BYTES, Location, PSDict, PSError
from .memories import AliasMemory, JoinedMemory, MemoryStats, RegisterMemory

#: registers whose save slots lie within this many bytes of each other
#: are prefetched as one span (context slots are adjacent; a frame's
#: stack save area is a second tight cluster)
_PREFETCH_GAP = 64


class CorruptStackError(Exception):
    """A down-stack walker found evidence of corruption — a misaligned
    or non-monotonic stack pointer, a return address outside the text
    segment, a backwards fp chain.  :func:`build_stack` converts it into
    a terminating :class:`CorruptFrame` instead of letting it surface."""


class Frame:
    """One procedure activation.

    ``memory`` is the joined abstract memory of Fig. 4; ``frame_base``
    is the value the per-architecture PostScript binds as ``FrameBase``
    to address locals (the vfp on rmips, the fp elsewhere).
    """

    #: True only on the :class:`CorruptFrame` sentinel
    corrupt = False

    def __init__(self, target, pc: int, memory: JoinedMemory,
                 frame_base: int, sp: int, level: int = 0):
        self.target = target
        self.pc = pc
        self.memory = memory
        self.frame_base = frame_base
        self.sp = sp
        self.level = level

    # -- machine-independent methods ------------------------------------

    def proc_entry(self) -> Optional[PSDict]:
        """The symbol-table entry of this frame's procedure."""
        return self.target.symtab.proc_entry_for_pc(self.pc)

    def proc_name(self) -> str:
        entry = self.proc_entry()
        if entry is not None:
            return entry["name"].text
        hit = self.target.linker.proc_containing(self.pc)
        return hit[1] if hit else "0x%x" % self.pc

    def stop(self) -> Optional[Tuple[int, PSDict]]:
        """The stopping point at or before the pc, with its index."""
        entry = self.proc_entry()
        if entry is None:
            return None
        return self.target.symtab.stop_for_pc(entry, self.pc)

    def scope_stop(self) -> Optional[PSDict]:
        hit = self.stop()
        return hit[1] if hit else None

    def resolve(self, name: str) -> Optional[PSDict]:
        """Resolve a name in this frame's scope (the paper's context:
        a particular stopping point in a particular procedure)."""
        return self.target.symtab.resolve(name, self.scope_stop(),
                                          self.proc_entry())

    def visible_names(self) -> List[str]:
        names: List[str] = []
        stop = self.scope_stop()
        entry = stop.get("syms") if stop is not None else None
        while entry is not None:
            names.append(entry["name"].text)
            entry = entry.get("uplink")
        proc = self.proc_entry()
        if proc is not None:
            for key in proc["statics"].keys():
                names.append(key if isinstance(key, str) else str(key))
        return names

    def read_reg(self, index: int) -> int:
        return self.memory.fetch(Location.absolute("r", index), "i32")

    def write_reg(self, index: int, value: int) -> None:
        self.memory.store(Location.absolute("r", index), "i32", value)

    def location_line(self) -> Tuple[str, int]:
        entry = self.proc_entry()
        if entry is None:
            return ("?", 0)
        stop = self.scope_stop()
        if stop is not None:
            return (entry["sourcefile"].text, stop["sourcey"])
        return (entry["sourcefile"].text, entry["sourcey"])

    # -- machine-dependent methods (supplied by subtypes) ------------------

    def caller(self) -> Optional["Frame"]:
        """Walk down the stack: build the caller's frame, or None."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return "<frame #%d %s pc=0x%x>" % (self.level, self.proc_name(), self.pc)


class CorruptFrame(Frame):
    """The sentinel that ends a truncated backtrace: the walk hit
    evidence of stack corruption and stopped.  It prints as
    ``<corrupt frame>``, resolves no names, and has no caller — so a
    smashed stack yields a partial, labelled backtrace on live and
    post-mortem targets alike, never a debugger crash."""

    corrupt = True

    def __init__(self, target, level: int, reason: str):
        super().__init__(target, 0, None, 0, 0, level=level)
        #: why the walk stopped (for traces and curious users)
        self.reason = reason

    def proc_entry(self) -> None:
        return None

    def proc_name(self) -> str:
        return "<corrupt frame>"

    def location_line(self) -> Tuple[str, int]:
        return ("?", 0)

    def stop(self) -> None:
        return None

    def resolve(self, name: str) -> None:
        return None

    def visible_names(self) -> List[str]:
        return []

    def caller(self) -> None:
        return None

    def __repr__(self) -> str:
        return "<frame #%d <corrupt frame> (%s)>" % (self.level, self.reason)


def corrupt_frame(target, level: int, reason: str) -> CorruptFrame:
    """Make the sentinel, leaving a mark in the observability hub —
    every corrupt-frame bailout should be visible in metrics/traces."""
    obs = getattr(target, "obs", None)
    if obs is not None:
        obs.metrics.inc("target.corrupt_frames")
        obs.tracer.warn("target.corrupt_frame", reason=reason)
    return CorruptFrame(target, level, reason)


def guard_down_stack(target, caller_pc: int, caller_sp: int, callee_sp: int,
                     stack_align: int, pc_align: int) -> None:
    """The corruption defenses shared by the machdep down-stack walkers.

    Walking *down* the stack (toward callers), stack addresses only
    grow and return addresses land inside the text segment; anything
    else is a smashed frame, reported as :class:`CorruptStackError`
    rather than followed into the weeds.
    """
    if pc_align > 1 and caller_pc % pc_align:
        raise CorruptStackError("misaligned return pc 0x%x" % caller_pc)
    bounds = target.linker.text_range()
    if bounds is not None and not bounds[0] <= caller_pc < bounds[1]:
        raise CorruptStackError(
            "return pc 0x%x outside text [0x%x, 0x%x)"
            % (caller_pc, bounds[0], bounds[1]))
    if stack_align > 1 and caller_sp % stack_align:
        raise CorruptStackError("misaligned caller sp 0x%x" % caller_sp)
    if caller_sp < callee_sp:
        raise CorruptStackError(
            "caller sp 0x%x below callee sp 0x%x (stack walked backwards)"
            % (caller_sp, callee_sp))


def backtrace(frame: Optional[Frame], limit: int = 64) -> List[Frame]:
    """The frames from ``frame`` outward."""
    frames: List[Frame] = []
    while frame is not None and len(frames) < limit:
        frames.append(frame)
        frame = frame.caller()
    return frames


def build_stack(frame: Optional[Frame], limit: int = 64) -> List[Frame]:
    """A defensive :func:`backtrace`: given a frame it never raises and
    always returns at least that frame.

    Any evidence of corruption — a walker's :class:`CorruptStackError`,
    unreadable frame memory, or a frame cycle — truncates the walk with
    a :class:`CorruptFrame` sentinel instead of surfacing an exception.
    """
    frames: List[Frame] = []
    seen = set()
    while frame is not None and len(frames) < limit:
        if frame.corrupt:
            frames.append(frame)
            break
        key = (frame.pc, frame.sp, frame.frame_base)
        if key in seen:
            frames.append(corrupt_frame(frame.target, frame.level,
                                        "frame cycle at pc 0x%x" % frame.pc))
            break
        seen.add(key)
        frames.append(frame)
        try:
            frame = frame.caller()
        except CorruptStackError as err:
            frames.append(corrupt_frame(frame.target, frame.level + 1,
                                        str(err)))
            break
        except PSError as err:
            frames.append(corrupt_frame(frame.target, frame.level + 1,
                                        "unreadable frame memory: %s" % err))
            break
    return frames


def prefetch_alias_targets(wire, aliases: Dict[Tuple[str, int], Location],
                           widths: Dict[str, str]) -> None:
    """Warm the wire cache for every saved-register slot the aliases
    point at, coalescing neighbours into block transfers.

    A frame's register aliases land in a few tight clusters — the saved
    context, and (in caller frames) the procedure's stack save area —
    but a single min..max span would drag in everything between a low
    context address and a high stack address, so near neighbours
    (within ``_PREFETCH_GAP``) coalesce and distant ones get their own
    span.  On an uncached or legacy path ``prefetch`` is a no-op.
    """
    per_space: Dict[str, list] = {}
    for (space, _reg), loc in aliases.items():
        if loc.mode != ABSOLUTE:
            continue  # immediates live in the debugger
        size = KIND_BYTES.get(widths.get(space, "i32"), 4)
        per_space.setdefault(loc.space, []).append((loc.offset, size))
    for target_space, slots in per_space.items():
        slots.sort()
        start = end = None
        for offset, size in slots:
            if start is None:
                start, end = offset, offset + size
            elif offset - end <= _PREFETCH_GAP:
                end = max(end, offset + size)
            else:
                wire.prefetch(target_space, start, end - start)
                start, end = offset, offset + size
        if start is not None:
            wire.prefetch(target_space, start, end - start)


def make_register_dag(target, aliases: Dict[Tuple[str, int], Location],
                      widths: Dict[str, str],
                      stats: Optional[MemoryStats] = None) -> JoinedMemory:
    """Assemble the Fig. 4 DAG: wire <- alias <- register <- joined."""
    stats = stats if stats is not None else MemoryStats()
    wire = target.wire
    prefetch_alias_targets(wire, aliases, widths)
    alias = AliasMemory(wire, aliases, stats=stats)
    register = RegisterMemory(alias, widths, stats=stats)
    routes: Dict[str, object] = {"c": wire, "d": wire}
    for space in widths:
        routes[space] = register
    routes["x"] = register
    return JoinedMemory(routes, stats=stats)
