"""ldb machine-dependent support for the rvax target.

Little-endian, frame-pointer chains (saved fp at fp+0, return address at
fp+4), byte-granular instructions — the breakpoint data is a single
byte, the real VAX BPT opcode.  No register variables, so no save masks.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ...postscript import Location
from ..frames import (
    CorruptStackError,
    Frame,
    guard_down_stack,
    make_register_dag,
)
from ..memories import MemoryStats

NREGS = 16
NFREGS = 4
AP_REG = 12
FP_REG = 13
SP_REG = 14

CTX_PC = 0
CTX_REGS = 4
CTX_FREGS = CTX_REGS + 4 * NREGS
CTX_SIZE = CTX_FREGS + 8 * NFREGS + 4

REGSET_WIDTHS = {"r": "i32", "f": "f64"}


class VaxMachine:
    noop_advance = 1
    insn_fetch_size = 1
    ps_arch = "rvax"
    frame_base_is_vfp = False
    arch_name = "rvax"
    byteorder = "little"

    break_bytes_le = bytes([0x03])  # BPT
    nop_bytes_le = bytes([0x01])    # NOP

    def cache_fixup(self, target):
        return None  # saved contexts need no per-value fixing

    def reg_names(self):
        return ["r0", "r1", "r2", "r3", "r4", "r5", "r6", "r7",
                "r8", "r9", "r10", "r11", "ap", "fp", "sp", "pc"]

    def context_aliases(self, context_addr: int, pc: int):
        aliases: Dict[Tuple[str, int], Location] = {}
        for i in range(NREGS):
            aliases[("r", i)] = Location.absolute("d", context_addr + CTX_REGS + 4 * i)
        for i in range(NFREGS):
            aliases[("f", i)] = Location.absolute("d", context_addr + CTX_FREGS + 8 * i)
        aliases[("x", 0)] = Location.immediate(pc)
        return aliases

    def pc_context_location(self, context_addr: int) -> Location:
        return Location.absolute("d", context_addr + CTX_PC)

    def new_top_frame(self, target, context_addr: int) -> "VaxFrame":
        wire = target.wire
        wire.prefetch("d", context_addr, CTX_SIZE)  # one block transfer
        pc = wire.fetch(self.pc_context_location(context_addr), "i32") & 0xFFFFFFFF
        fp = wire.fetch(Location.absolute(
            "d", context_addr + CTX_REGS + 4 * FP_REG), "i32") & 0xFFFFFFFF
        sp = wire.fetch(Location.absolute(
            "d", context_addr + CTX_REGS + 4 * SP_REG), "i32") & 0xFFFFFFFF
        stats = MemoryStats()
        memory = make_register_dag(target, self.context_aliases(context_addr, pc),
                                   REGSET_WIDTHS, stats=stats)
        frame = VaxFrame(target, pc, memory, fp, sp)
        frame.machine = self
        frame.stats = stats
        return frame


class VaxFrame(Frame):
    machine: VaxMachine = None
    stats = None

    def caller(self) -> Optional["VaxFrame"]:
        fp = self.frame_base
        if fp == 0:
            return None
        old_fp = self.memory.fetch(Location.absolute("d", fp), "i32") & 0xFFFFFFFF
        ra = self.memory.fetch(Location.absolute("d", fp + 4), "i32") & 0xFFFFFFFF
        if ra == 0:
            return None
        caller_pc = ra - 1
        # byte-granular instructions: no pc alignment to check
        guard_down_stack(self.target, caller_pc, fp + 8, self.sp,
                         stack_align=4, pc_align=1)
        if old_fp and old_fp < fp:
            raise CorruptStackError("saved fp 0x%x below fp 0x%x "
                                    "(fp chain walked backwards)"
                                    % (old_fp, fp))
        hit = self.target.linker.proc_containing(caller_pc)
        if hit is None or hit[1].startswith("__"):  # startup code
            return None
        aliases = dict(self.memory.routes["r"].underlying.aliases)
        aliases[("r", SP_REG)] = Location.immediate(fp + 8)
        aliases[("r", FP_REG)] = Location.immediate(old_fp)
        aliases[("x", 0)] = Location.immediate(caller_pc)
        memory = make_register_dag(self.target, aliases, REGSET_WIDTHS,
                                   stats=self.stats)
        frame = VaxFrame(self.target, caller_pc, memory, old_fp, fp + 8,
                         level=self.level + 1)
        frame.machine = self.machine
        frame.stats = self.stats
        return frame
