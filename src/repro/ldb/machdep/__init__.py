"""ldb's machine-dependent modules: one per target architecture.

Each module supplies the debugger's own machine-dependent data and the
stack-frame subtype (paper Sec. 4.3):

* the four items of breakpoint data — the break and no-op bit patterns,
  the instruction fetch size, and the pc advance that "interprets" a
  skipped no-op;
* the context-field description parameterizing the machine-independent
  context access code;
* the frame subtype's two methods (walk down, restore registers);
* which register spaces exist and how wide their registers are.

These descriptions deliberately do not import the simulator's Arch
classes: the debugger carries its own copies of machine facts, exactly
as the paper's ldb does — agreement is enforced by the integration
tests, not by sharing code with the target.
"""

from __future__ import annotations


def machdep_for(arch_name: str):
    """The machine-dependent module for a target architecture name."""
    if arch_name in ("rmips", "rmipsel"):
        from . import mips
        return mips.MipsMachine(arch_name)
    if arch_name == "rsparc":
        from . import sparc
        return sparc.SparcMachine()
    if arch_name == "rm68k":
        from . import m68k
        return m68k.M68kMachine()
    if arch_name == "rvax":
        from . import vax
        return vax.VaxMachine()
    raise KeyError("no machine-dependent support for %r" % arch_name)
