"""ldb machine-dependent support for the rm68k target.

Frame-pointer chains (LINK/UNLK): the saved fp is at fp+0 and the
return address at fp+4.  Register variables live in the callee-saved
data registers d4-d7; which ones a procedure saved — and where — comes
from the register-save mask the compiler adds to its symbol-table entry
(paper Sec. 5).  Floating registers hold 80-bit extended values, so the
``f`` space is 10 bytes wide here.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ...postscript import Location
from ..frames import (
    CorruptStackError,
    Frame,
    guard_down_stack,
    make_register_dag,
)
from ..memories import MemoryStats

NREGS = 16
NFREGS = 8
SP_REG = 15  # a7
FP_REG = 14  # a6

CTX_PC = 0
CTX_REGS = 4
CTX_FREGS = CTX_REGS + 4 * NREGS
CTX_SIZE = CTX_FREGS + 10 * NFREGS + 4

REGSET_WIDTHS = {"r": "i32", "f": "f80"}


class M68kMachine:
    noop_advance = 2
    insn_fetch_size = 2
    ps_arch = "rm68k"
    frame_base_is_vfp = False
    arch_name = "rm68k"
    byteorder = "big"

    break_bytes_le = bytes([0x48, 0x48])  # BKPT as a little-endian value
    nop_bytes_le = bytes([0x71, 0x4E])    # NOP (0x4E71)

    def cache_fixup(self, target):
        return None  # saved contexts need no per-value fixing

    def reg_names(self):
        return ["d0", "d1", "d2", "d3", "d4", "d5", "d6", "d7",
                "a0", "a1", "a2", "a3", "a4", "a5", "fp", "sp"]

    def context_aliases(self, context_addr: int, pc: int):
        aliases: Dict[Tuple[str, int], Location] = {}
        for i in range(NREGS):
            aliases[("r", i)] = Location.absolute("d", context_addr + CTX_REGS + 4 * i)
        for i in range(NFREGS):
            aliases[("f", i)] = Location.absolute("d", context_addr + CTX_FREGS + 10 * i)
        aliases[("x", 0)] = Location.immediate(pc)
        return aliases

    def pc_context_location(self, context_addr: int) -> Location:
        return Location.absolute("d", context_addr + CTX_PC)

    def new_top_frame(self, target, context_addr: int) -> "M68kFrame":
        wire = target.wire
        wire.prefetch("d", context_addr, CTX_SIZE)  # one block transfer
        pc = wire.fetch(self.pc_context_location(context_addr), "i32") & 0xFFFFFFFF
        fp = wire.fetch(Location.absolute(
            "d", context_addr + CTX_REGS + 4 * FP_REG), "i32") & 0xFFFFFFFF
        sp = wire.fetch(Location.absolute(
            "d", context_addr + CTX_REGS + 4 * SP_REG), "i32") & 0xFFFFFFFF
        stats = MemoryStats()
        memory = make_register_dag(target, self.context_aliases(context_addr, pc),
                                   REGSET_WIDTHS, stats=stats)
        frame = M68kFrame(target, pc, memory, fp, sp)
        frame.machine = self
        frame.stats = stats
        return frame


class M68kFrame(Frame):
    machine: M68kMachine = None
    stats = None

    def _saved_reg_slots(self) -> Dict[int, int]:
        """Use the compiler's register-save mask from the symbol table."""
        entry = self.proc_entry()
        if entry is None or "savemask" not in entry:
            return {}
        mask = entry["savemask"]
        offset = entry["saveoffset"]
        regs = sorted(bit for bit in range(NREGS) if mask & (1 << bit))
        base = self.frame_base + offset
        return {reg: base + 4 * k for k, reg in enumerate(regs)}

    def caller(self) -> Optional["M68kFrame"]:
        fp = self.frame_base
        if fp == 0:
            return None
        old_fp = self.memory.fetch(Location.absolute("d", fp), "i32") & 0xFFFFFFFF
        ra = self.memory.fetch(Location.absolute("d", fp + 4), "i32") & 0xFFFFFFFF
        if ra == 0:
            return None
        caller_pc = ra - 2
        guard_down_stack(self.target, caller_pc, fp + 8, self.sp,
                         stack_align=2, pc_align=2)
        if old_fp and old_fp < fp:
            raise CorruptStackError("saved fp 0x%x below fp 0x%x "
                                    "(fp chain walked backwards)"
                                    % (old_fp, fp))
        hit = self.target.linker.proc_containing(caller_pc)
        if hit is None or hit[1].startswith("__"):  # startup code
            return None
        aliases = dict(self.memory.routes["r"].underlying.aliases)
        for reg, address in self._saved_reg_slots().items():
            aliases[("r", reg)] = Location.absolute("d", address)
        aliases[("r", SP_REG)] = Location.immediate(fp + 8)
        aliases[("r", FP_REG)] = Location.immediate(old_fp)
        aliases[("x", 0)] = Location.immediate(caller_pc)
        memory = make_register_dag(self.target, aliases, REGSET_WIDTHS,
                                   stats=self.stats)
        frame = M68kFrame(self.target, caller_pc, memory, old_fp, fp + 8,
                          level=self.level + 1)
        frame.machine = self.machine
        frame.stats = self.stats
        return frame
