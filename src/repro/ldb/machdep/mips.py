"""ldb machine-dependent support for the rmips target.

The machine has no frame pointer, so locals are addressed off the
virtual frame pointer vfp = sp + frame size; the frame size, the
register-save mask, and the save-area offset come from the runtime
procedure table through the MIPS linker interface (paper Sec. 4.1, 4.3).
Saved registers lie at the save offset in ascending register number,
with the return address (r31) last.

``MipsFrame.new`` takes the context from the nub and creates the
top-frame abstract memory: general and floating registers alias their
saved slots in the context; the extra registers (pc and vfp) are
aliases for immediate locations.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ...postscript import Location
from ..frames import Frame, guard_down_stack, make_register_dag
from ..memories import MemoryStats

NREGS = 32
NFREGS = 16
SP_REG = 29
RA_REG = 31

#: context layout: pc, then 32 integer registers, then 16 doubles, flags
CTX_PC = 0
CTX_REGS = 4
CTX_FREGS = CTX_REGS + 4 * NREGS
CTX_SIZE = CTX_FREGS + 8 * NFREGS + 4

#: register spaces and widths (r integer words, f doubles)
REGSET_WIDTHS = {"r": "i32", "f": "f64"}


class MipsMachine:
    """Machine-dependent data and constructors for rmips/rmipsel."""

    #: the four machine-dependent breakpoint items (paper Sec. 3)
    noop_advance = 4
    insn_fetch_size = 4
    ps_arch = "rmips"
    frame_base_is_vfp = True

    def __init__(self, arch_name: str = "rmips"):
        self.arch_name = arch_name
        big = arch_name == "rmips"
        self.byteorder = "big" if big else "little"
        self.break_bytes_le = bytes([0, 0, 0, 4])  # break, little-endian value
        self.nop_bytes_le = bytes(4)

    def reg_names(self):
        return (["r%d" % i for i in range(29)] + ["sp", "r30", "ra"])

    # -- context ------------------------------------------------------------

    def context_aliases(self, context_addr: int, pc: int, vfp: int):
        aliases: Dict[Tuple[str, int], Location] = {}
        for i in range(NREGS):
            aliases[("r", i)] = Location.absolute("d", context_addr + CTX_REGS + 4 * i)
        for i in range(NFREGS):
            aliases[("f", i)] = Location.absolute("d", context_addr + CTX_FREGS + 8 * i)
        aliases[("x", 0)] = Location.immediate(pc)
        aliases[("x", 1)] = Location.immediate(vfp)
        return aliases

    def pc_context_location(self, context_addr: int) -> Location:
        return Location.absolute("d", context_addr + CTX_PC)

    def cache_fixup(self, target):
        """The debugger-side replica of the nub's ``fix_fetched`` hook.

        On rmips the kernel-saved context stores doubleword floating
        registers least-significant word first (footnote 3); the nub
        swaps the words when answering a per-value FETCH, so values
        sliced out of raw blocks must be swapped the same way.  The
        closure reads ``target.context_addr`` at fetch time — the
        region moves with each stop announcement.
        """
        if self.byteorder != "big":
            return None  # rmipsel contexts need no fixing

        def fixup(space: str, address: int, raw_le: bytes) -> bytes:
            base = target.context_addr
            if (base and len(raw_le) == 8
                    and base + CTX_FREGS <= address
                    < base + CTX_FREGS + 8 * NFREGS):
                return raw_le[4:] + raw_le[:4]
            return raw_le

        return fixup

    # -- frames ---------------------------------------------------------------

    def new_top_frame(self, target, context_addr: int) -> "MipsFrame":
        """MipsFrame.New of the paper: context -> topmost frame."""
        wire = target.wire
        # the whole saved context in one block transfer (when the nub
        # speaks blocks): the pc/sp reads below and the register DAG's
        # fetches then hit the cache
        wire.prefetch("d", context_addr, CTX_SIZE)
        pc = wire.fetch(self.pc_context_location(context_addr), "i32") & 0xFFFFFFFF
        sp = wire.fetch(Location.absolute(
            "d", context_addr + CTX_REGS + 4 * SP_REG), "i32") & 0xFFFFFFFF
        framesize = target.linker.frame_size(pc) or 0
        vfp = sp + framesize
        stats = MemoryStats()
        memory = make_register_dag(
            target, self.context_aliases(context_addr, pc, vfp),
            REGSET_WIDTHS, stats=stats)
        frame = MipsFrame(target, pc, memory, vfp, sp)
        frame.machine = self
        frame.stats = stats
        return frame


class MipsFrame(Frame):
    """The rmips frame subtype: its two machine-dependent methods."""

    machine: MipsMachine = None
    stats = None

    def _saved_reg_slots(self) -> Dict[int, int]:
        """reg number -> stack address of its save slot in this frame."""
        mask, save_offset = self.target.linker.reg_save_info(self.pc)
        regs = sorted(bit for bit in range(31) if mask & (1 << bit))
        if mask & (1 << RA_REG):
            regs.append(RA_REG)  # the return address is saved last
        base = self.frame_base + save_offset
        return {reg: base + 4 * k for k, reg in enumerate(regs)}

    def _return_address(self) -> int:
        slots = self._saved_reg_slots()
        if RA_REG in slots:
            return self.memory.fetch(
                Location.absolute("d", slots[RA_REG]), "i32") & 0xFFFFFFFF
        return self.read_reg(RA_REG) & 0xFFFFFFFF

    def caller(self) -> Optional["MipsFrame"]:
        """Walk down the stack and restore registers from it.

        The aliases for registers this procedure saved point at its
        save area; aliases for untouched callee-saved registers are
        reused from the called frame (paper Sec. 4.1).
        """
        ra = self._return_address()
        if ra == 0:
            return None
        caller_pc = ra - 4  # the call site
        caller_sp = self.frame_base  # our vfp is the caller's sp
        guard_down_stack(self.target, caller_pc, caller_sp, self.sp,
                         stack_align=4, pc_align=4)
        hit = self.target.linker.proc_containing(caller_pc)
        if hit is None or hit[1].startswith("__"):  # startup code
            return None
        framesize = self.target.linker.frame_size(caller_pc) or 0
        caller_vfp = caller_sp + framesize
        aliases = dict(self.memory.routes["r"].underlying.aliases)
        for reg, address in self._saved_reg_slots().items():
            aliases[("r", reg)] = Location.absolute("d", address)
        aliases[("r", SP_REG)] = Location.immediate(caller_sp)
        aliases[("x", 0)] = Location.immediate(caller_pc)
        aliases[("x", 1)] = Location.immediate(caller_vfp)
        memory = make_register_dag(self.target, aliases, REGSET_WIDTHS,
                                   stats=self.stats)
        frame = MipsFrame(self.target, caller_pc, memory, caller_vfp,
                          caller_sp, level=self.level + 1)
        frame.machine = self.machine
        frame.stats = self.stats
        return frame
