"""ldb machine-dependent support for the rsparc target.

Frame-pointer chains: the saved fp lives at fp-4 and the return address
at fp-8, so walking needs no linker help — this target shares the
machine-independent linker interface (paper Sec. 4.3).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ...postscript import Location
from ..frames import (
    CorruptStackError,
    Frame,
    guard_down_stack,
    make_register_dag,
)
from ..memories import MemoryStats

NREGS = 32
NFREGS = 8
SP_REG = 14
RA_REG = 15
FP_REG = 30

CTX_PC = 0
CTX_REGS = 4
CTX_FREGS = CTX_REGS + 4 * NREGS
CTX_SIZE = CTX_FREGS + 8 * NFREGS + 4

REGSET_WIDTHS = {"r": "i32", "f": "f64"}


class SparcMachine:
    noop_advance = 4
    insn_fetch_size = 4
    ps_arch = "rsparc"
    frame_base_is_vfp = False
    arch_name = "rsparc"
    byteorder = "big"

    break_bytes_le = bytes([0, 0, 0, 1])
    nop_bytes_le = bytes(4)

    def cache_fixup(self, target):
        return None  # saved contexts need no per-value fixing

    def reg_names(self):
        return (["g%d" % i for i in range(8)]
                + ["o0", "o1", "o2", "o3", "o4", "o5", "sp", "o7"]
                + ["l%d" % i for i in range(8)]
                + ["i0", "i1", "i2", "i3", "i4", "i5", "fp", "i7"])

    def context_aliases(self, context_addr: int, pc: int):
        aliases: Dict[Tuple[str, int], Location] = {}
        for i in range(NREGS):
            aliases[("r", i)] = Location.absolute("d", context_addr + CTX_REGS + 4 * i)
        for i in range(NFREGS):
            aliases[("f", i)] = Location.absolute("d", context_addr + CTX_FREGS + 8 * i)
        aliases[("x", 0)] = Location.immediate(pc)
        return aliases

    def pc_context_location(self, context_addr: int) -> Location:
        return Location.absolute("d", context_addr + CTX_PC)

    def new_top_frame(self, target, context_addr: int) -> "SparcFrame":
        wire = target.wire
        wire.prefetch("d", context_addr, CTX_SIZE)  # one block transfer
        pc = wire.fetch(self.pc_context_location(context_addr), "i32") & 0xFFFFFFFF
        fp = wire.fetch(Location.absolute(
            "d", context_addr + CTX_REGS + 4 * FP_REG), "i32") & 0xFFFFFFFF
        sp = wire.fetch(Location.absolute(
            "d", context_addr + CTX_REGS + 4 * SP_REG), "i32") & 0xFFFFFFFF
        stats = MemoryStats()
        memory = make_register_dag(target, self.context_aliases(context_addr, pc),
                                   REGSET_WIDTHS, stats=stats)
        frame = SparcFrame(target, pc, memory, fp, sp)
        frame.machine = self
        frame.stats = stats
        return frame


class SparcFrame(Frame):
    machine: SparcMachine = None
    stats = None

    def caller(self) -> Optional["SparcFrame"]:
        fp = self.frame_base
        if fp == 0:
            return None
        ra = self.memory.fetch(Location.absolute("d", fp - 8), "i32") & 0xFFFFFFFF
        old_fp = self.memory.fetch(Location.absolute("d", fp - 4), "i32") & 0xFFFFFFFF
        if ra == 0:
            return None
        caller_pc = ra - 4
        # the caller resumes with sp = our fp; its own fp must lie
        # further down-stack still (or be 0, ending the walk cleanly)
        guard_down_stack(self.target, caller_pc, fp, self.sp,
                         stack_align=4, pc_align=4)
        if old_fp and old_fp < fp:
            raise CorruptStackError("saved fp 0x%x below fp 0x%x "
                                    "(fp chain walked backwards)"
                                    % (old_fp, fp))
        hit = self.target.linker.proc_containing(caller_pc)
        if hit is None or hit[1].startswith("__"):  # startup code
            return None
        aliases = dict(self.memory.routes["r"].underlying.aliases)
        aliases[("r", SP_REG)] = Location.immediate(fp)
        aliases[("r", FP_REG)] = Location.immediate(old_fp)
        aliases[("r", RA_REG)] = Location.immediate(ra)
        aliases[("x", 0)] = Location.immediate(caller_pc)
        memory = make_register_dag(self.target, aliases, REGSET_WIDTHS,
                                   stats=self.stats)
        frame = SparcFrame(self.target, caller_pc, memory, old_fp, fp,
                           level=self.level + 1)
        frame.machine = self.machine
        frame.stats = self.stats
        return frame
