"""Event-driven debugging facilities (paper Sec. 7.1).

The paper's future work: "One solution is to make the debugger
internals event-driven ...  Exporting the mechanisms used to make the
debugger event-driven would simplify the implementation of event-driven
clients.  Event-driven debugging subsumes conditional breakpoints as a
special case."

This module supplies exactly that layer:

* every stop becomes a typed :class:`Event` (breakpoint hit, signal,
  step complete, exit, disconnect);
* clients register handlers; a handler may *resume* the target, which
  is how conditional breakpoints work — a condition that evaluates
  false simply continues;
* source-level single stepping is implemented **on top of
  breakpoints**, as the paper prescribes, and copes with "the event
  that is expected may not be the one that occurs": a fault or an
  unrelated breakpoint during a step is delivered as itself, and the
  step's temporary breakpoints are cleaned up either way.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..machines.isa import SIGTRAP
from ..postscript import PSError
from .target import TargetDiedError, TargetError


class Event:
    """Base class: something happened to a target."""

    kind = "event"

    def __init__(self, target):
        self.target = target
        #: a handler sets this to resume the target silently
        self.resume = False

    def __repr__(self) -> str:
        return "<%s %s>" % (self.kind, self.target.name)


class BreakpointHit(Event):
    kind = "breakpoint"

    def __init__(self, target, breakpoint, frame):
        super().__init__(target)
        self.breakpoint = breakpoint
        self.frame = frame


class StepDone(Event):
    """A source-level step reached its next stopping point."""

    kind = "step"

    def __init__(self, target, frame):
        super().__init__(target)
        self.frame = frame


class SignalStop(Event):
    kind = "signal"

    def __init__(self, target, signo, code):
        super().__init__(target)
        self.signo = signo
        self.code = code


class TargetExited(Event):
    kind = "exit"

    def __init__(self, target, status):
        super().__init__(target)
        self.status = status


class TargetDisconnected(Event):
    kind = "disconnect"


class TargetDied(Event):
    """The target's process is gone for good — the nub died or the
    target exited behind the debugger's back.  When the nub wrote a
    core on its way down, ``core_path`` points at it, so the session
    can continue post-mortem (``ldb core <file>``)."""

    kind = "died"

    def __init__(self, target, reason: str, core_path=None):
        super().__init__(target)
        self.reason = reason
        self.core_path = core_path


class EventEngine:
    """Dispatches events for one debugger; drives stepping.

    A thin, synchronous engine: ``wait()`` runs/continues the target,
    classifies what happened, offers it to handlers, and — if some
    handler asked to resume — keeps going.
    """

    def __init__(self, debugger):
        self.debugger = debugger
        self.handlers: List[Callable[[Event], None]] = []
        #: conditional breakpoints: address -> condition source
        self.conditions: Dict[int, str] = {}
        self._step_temps: Dict[int, List[int]] = {}  # per-target temp bps

    # -- handler registration ------------------------------------------------

    def on_event(self, handler: Callable[[Event], None]) -> None:
        self.handlers.append(handler)

    def add_condition(self, address: int, condition: str) -> None:
        """Make the breakpoint at ``address`` conditional: the target
        resumes silently when the expression evaluates false."""
        self.conditions[address] = condition

    # -- the dispatch loop ------------------------------------------------------

    def wait(self, target=None, timeout: float = 30.0,
             max_resumes: int = 10_000) -> Event:
        """Continue the target until an event a client should see."""
        target = target or self.debugger.current
        for _ in range(max_resumes):
            try:
                state = self.debugger.run_to_stop(target=target,
                                                  timeout=timeout)
                # the target ran: nothing cached from before the stop may
                # leak into classification or the handlers (Target already
                # invalidates on resume and stop; this covers subclasses)
                target.wire.invalidate()
                event = self._classify(target, state)
            except (TargetError, PSError) as err:
                # the nub can die at *any* point of the conversation —
                # mid-continue, or mid-fetch while classifying a stop
                # that did arrive.  If the session is dead underneath,
                # that failure IS the event; anything else propagates.
                if not self._session_dead(target):
                    raise
                target.state = "disconnected"
                target.wire.invalidate()
                event = self._classify_disconnect(target)
            self._cleanup_step_temps_if_done(target, event)
            for handler in self.handlers:
                handler(event)
            if event.resume and isinstance(event, (BreakpointHit, StepDone,
                                                   SignalStop)):
                continue
            return event
        raise RuntimeError("event loop resumed %d times without "
                           "surfacing an event" % max_resumes)

    def _session_dead(self, target) -> bool:
        """Did the target's session lose its connection for good (the
        retry engine already exhausted its reconnect budget)?"""
        session = getattr(target, "session", None)
        return session is not None and session.channel is None

    def _classify(self, target, state: str) -> Event:
        if state == "exited":
            return TargetExited(target, target.exit_status)
        if state in ("disconnected", "reconnecting"):
            return self._classify_disconnect(target)
        if target.signo != SIGTRAP:
            return SignalStop(target, target.signo, target.sigcode)
        pc = target.stop_pc()
        bp = target.breakpoints.at(pc)
        frame = target.top_frame()
        temps = self._step_temps.get(id(target), [])
        if bp is not None and pc in temps:
            return StepDone(target, frame)
        if bp is not None:
            event = BreakpointHit(target, bp, frame)
            condition = self.conditions.get(pc)
            if condition is not None:
                try:
                    value = self.debugger.evaluate(condition, frame=frame,
                                                   target=target)
                except Exception:
                    value = 1  # a broken condition stops, loudly visible
                if not value:
                    event.resume = True
            return event
        return SignalStop(target, target.signo, target.sigcode)

    def _classify_disconnect(self, target) -> Event:
        """A lost connection: one reconnect attempt decides whether this
        is a transient disconnect or a dead target.

        With no reconnect path the event is a plain disconnect (the
        caller may have its own recovery).  With one, a failed attempt
        means the nub is gone for good: the *typed* death event carries
        the pointer to the auto-written core instead of leaving the
        client to retry forever."""
        session = getattr(target, "session", None)
        if session is None or session.connector is None:
            return TargetDisconnected(target)
        try:
            target.reconnect()
        except TargetDiedError as err:
            return TargetDied(target, str(err),
                              core_path=err.core_path or target.core_path)
        except TargetError:
            return TargetDisconnected(target)
        if target.state == "stopped":
            return self._classify(target, "stopped")
        if target.state == "exited":
            return TargetExited(target, target.exit_status)
        return TargetDisconnected(target)

    # -- source-level stepping (on top of breakpoints, Sec. 7.1) ---------------

    def step(self, target=None, timeout: float = 30.0) -> Event:
        """Run to the next stopping point anywhere (step into)."""
        target = target or self.debugger.current
        self._plant_step_temps(target)
        return self.wait(target, timeout=timeout)

    def next(self, target=None, timeout: float = 30.0,
             max_inner: int = 10_000) -> Event:
        """Run to the next stopping point at the same or a shallower
        frame (step over): stops inside callees resume silently."""
        target = target or self.debugger.current
        origin_sp = target.top_frame().sp
        origin_depth_guard = 0
        for _ in range(max_inner):
            self._plant_step_temps(target)
            event = self.wait(target, timeout=timeout)
            if not isinstance(event, StepDone):
                return event
            # stacks grow downward: a smaller sp means a deeper frame
            if event.frame.sp >= origin_sp:
                return event
            origin_depth_guard += 1
        raise RuntimeError("step-over never surfaced")

    def _plant_step_temps(self, target) -> None:
        """Plant temporary breakpoints at every stopping point of every
        procedure (skipping ones the user already owns)."""
        temps = self._step_temps.setdefault(id(target), [])
        if temps:
            return  # already armed
        current_pc = target.stop_pc()
        for proc_entry in target.symtab.procs():
            for stop in target.symtab.loci(proc_entry):
                address = target.symtab.stop_address(stop)
                if address is None or address == current_pc:
                    continue
                if target.breakpoints.at(address) is not None:
                    continue  # a user breakpoint; leave it alone
                target.breakpoints.plant(address, note="step")
                temps.append(address)

    def _cleanup_step_temps_if_done(self, target, event: Event) -> None:
        """Whatever arrived — the step, a user breakpoint, a fault, an
        exit — the step's temporaries come out (the paper's warning that
        the expected event may not be the one that occurs)."""
        temps = self._step_temps.get(id(target), [])
        if not temps:
            return
        if target.state == "stopped":
            for address in temps:
                try:
                    target.breakpoints.remove(address)
                except Exception:
                    pass  # a dying target cannot be patched; give up
        self._step_temps[id(target)] = []
