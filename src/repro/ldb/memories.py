"""Abstract memories: the DAG of Fig. 4 (paper Sec. 4.1).

An abstract memory represents the registers and memory of a target
process as a collection of spaces.  ldb combines several instances to
represent the state during one procedure activation:

* the **wire** holds the connection to the nub and forwards fetch/store
  requests for the code and data spaces;
* the **alias** memory translates register-space locations into code or
  data locations (the saved context) or immediate locations;
* the **register** memory turns sub-word register accesses into
  full-word operations, making target byte order irrelevant — the same
  debugger code runs against little- and big-endian targets;
* the **joined** memory routes each space to the right underlying
  memory and is the instance the rest of the debugger sees.

Machine-independent code manipulates machine-dependent *data* (the alias
table), so cross-architecture debugging comes for free.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, Optional, Tuple, Union

from ..machines import float80
from ..nub import protocol
from ..nub.session import DeadlineExceeded, NubError, Transport, TransportError
from ..postscript import AbstractMemory, KIND_BYTES, Location, PSError


class MemoryStats:
    """Fetch/store counters, shared down a DAG.

    Keys are ``memory.operation``; the ``wire.*`` family counts actual
    nub round-trips while every other family counts logical accesses at
    one DAG node.  Consumers use :meth:`snapshot` to freeze the
    counters, :meth:`diff` to get the increments since a snapshot, and
    :meth:`round_trips` for the wire-message total — the number the
    block-transfer protocol exists to shrink.

    When constructed with a ``metrics`` registry
    (:class:`repro.obs.Metrics`), every count is mirrored into it under
    the same dotted name, folding the DAG's counters into the unified
    observability registry — :class:`~repro.ldb.target.Target` passes
    its hub's registry, which is what ``ldb stats`` and the benchmarks
    read.  The local snapshot/diff API is unchanged either way.
    """

    def __init__(self, metrics=None):
        self.counts: Dict[str, int] = {}
        #: optional repro.obs.Metrics registry mirroring these counts
        self.metrics = metrics

    def note(self, memory_name: str, what: str) -> None:
        key = "%s.%s" % (memory_name, what)
        self.counts[key] = self.counts.get(key, 0) + 1
        if self.metrics is not None:
            self.metrics.inc(key)

    def of(self, memory_name: str, what: str) -> int:
        return self.counts.get("%s.%s" % (memory_name, what), 0)

    def snapshot(self) -> Dict[str, int]:
        """An immutable copy of the counters, for :meth:`diff` later."""
        return dict(self.counts)

    def diff(self, earlier: Union["MemoryStats", Dict[str, int]]) -> Dict[str, int]:
        """The counter increments since ``earlier`` (a snapshot or
        another stats object); zero deltas are omitted."""
        base = earlier.counts if isinstance(earlier, MemoryStats) else earlier
        out: Dict[str, int] = {}
        for key, value in self.counts.items():
            delta = value - base.get(key, 0)
            if delta:
                out[key] = delta
        return out

    def round_trips(self) -> int:
        """Total nub round-trips: every ``wire.*`` message counts one."""
        return sum(v for k, v in self.counts.items() if k.startswith("wire."))


class BlockUnsupported(Exception):
    """The peer cannot move memory blocks (a legacy nub, or a connection
    negotiated without FEATURE_BLOCK); callers fall back per-word."""


class WireMemory(AbstractMemory):
    """Forwards fetches and stores to the nub through a
    :class:`~repro.nub.session.Transport`.

    Values travel little-endian on the wire whatever the target's byte
    order; the nub does the target-order memory access.  Blocks travel
    as raw memory images (ascending address order) and are interpreted
    by :class:`CachingMemory` above.

    The transport is explicit: a :class:`~repro.nub.session.NubSession`
    for retry/backoff and crash-reconnect, or a
    :class:`~repro.nub.session.ChannelTransport` for direct, unretried
    access over a bare channel.  Both surface nub errors the same way,
    so the PSError behaviour here is mode-independent.
    """

    spaces = "cd"

    def __init__(self, transport: Transport, stats: Optional[MemoryStats] = None):
        if not isinstance(transport, Transport):
            raise TypeError(
                "WireMemory needs a Transport, not %r — wrap bare "
                "channels in ChannelTransport" % (transport,))
        self.transport = transport
        self.stats = stats if stats is not None else MemoryStats()

    def _transact(self, msg, expect, what: str):
        try:
            return self.transport.transact(msg, expect=expect)
        except NubError as err:
            raise PSError("invalidaccess", "nub error %d %s" % (err.code, what))
        except DeadlineExceeded:
            raise  # the supervisor's time bound: never masked as an ioerror
        except TransportError as err:
            ps = PSError("ioerror", "nub request failed: %s" % err)
            # tag the wrapped cause: callers that can answer typed (the
            # command API) map this to "target died", not "bad expression"
            ps.transport_error = err
            raise ps

    def fetch_absolute(self, loc: Location, kind: str):
        self.stats.note("wire", "fetch")
        size = KIND_BYTES[kind]
        reply = self._transact(protocol.fetch(loc.space, loc.offset, size),
                               expect=(protocol.MSG_DATA,),
                               what="at %s+%d" % (loc.space, loc.offset))
        return decode_value(reply.payload, kind)

    def store_absolute(self, loc: Location, kind: str, value) -> None:
        self.stats.note("wire", "store")
        raw = encode_value(value, kind)
        self._transact(protocol.store(loc.space, loc.offset, raw),
                       expect=(protocol.MSG_OK,),
                       what="storing %s+%d" % (loc.space, loc.offset))

    # -- block transfers (FEATURE_BLOCK) -----------------------------------

    def fetch_block(self, space: str, address: int, length: int) -> bytes:
        """Raw memory-image bytes for ``[address, address+length)``.

        The nub may answer with a shorter readable prefix when the span
        runs off mapped memory.  Raises :class:`BlockUnsupported` when
        the connection was negotiated without blocks or the peer answers
        ``ERR_UNSUPPORTED``; the caller falls back to per-word FETCH.
        """
        if self.transport.block_active is False:
            raise BlockUnsupported("connection negotiated without blocks")
        self.stats.note("wire", "blockfetch")
        try:
            reply = self.transport.transact(
                protocol.blockfetch(space, address, length),
                expect=(protocol.MSG_DATA,))
        except NubError as err:
            if err.code in (protocol.ERR_UNSUPPORTED, protocol.ERR_BAD_MESSAGE):
                raise BlockUnsupported("nub error %d" % err.code)
            raise PSError("invalidaccess", "nub error %d for block %s+%d"
                          % (err.code, space, address))
        except DeadlineExceeded:
            raise  # the supervisor's time bound: never masked as an ioerror
        except TransportError as err:
            ps = PSError("ioerror", "nub request failed: %s" % err)
            # tag the wrapped cause: callers that can answer typed (the
            # command API) map this to "target died", not "bad expression"
            ps.transport_error = err
            raise ps
        return reply.payload

    def store_block(self, space: str, address: int, data: bytes) -> None:
        """Write raw memory-image bytes verbatim (no byte-order or
        fixup interpretation — that is the caller's business)."""
        if self.transport.block_active is False:
            raise BlockUnsupported("connection negotiated without blocks")
        self.stats.note("wire", "blockstore")
        try:
            self.transport.transact(protocol.blockstore(space, address, data),
                                    expect=(protocol.MSG_OK,))
        except NubError as err:
            if err.code in (protocol.ERR_UNSUPPORTED, protocol.ERR_BAD_MESSAGE):
                raise BlockUnsupported("nub error %d" % err.code)
            raise PSError("invalidaccess", "nub error %d for block %s+%d"
                          % (err.code, space, address))
        except DeadlineExceeded:
            raise  # the supervisor's time bound: never masked as an ioerror
        except TransportError as err:
            ps = PSError("ioerror", "nub request failed: %s" % err)
            # tag the wrapped cause: callers that can answer typed (the
            # command API) map this to "target died", not "bad expression"
            ps.transport_error = err
            raise ps


def decode_value(raw_le: bytes, kind: str):
    """Decode a little-endian wire value into a host value.

    Kinds use the abstract-memory vocabulary (``i8 i16 i32 f32 f64 f80``).
    """
    if kind == "f32":
        return struct.unpack("<f", raw_le)[0]
    if kind == "f64":
        return struct.unpack("<d", raw_le)[0]
    if kind == "f80":
        return float80.decode(raw_le)
    return int.from_bytes(raw_le, "little", signed=True)


def encode_value(value, kind: str) -> bytes:
    """Encode a host value as little-endian wire bytes."""
    if kind == "f32":
        return struct.pack("<f", float(value))
    if kind == "f64":
        return struct.pack("<d", float(value))
    if kind == "f80":
        return float80.encode(float(value))
    size = KIND_BYTES[kind]
    return (int(value) & ((1 << (8 * size)) - 1)).to_bytes(size, "little")


class CachingMemory(AbstractMemory):
    """A write-through, block-filling cache in front of a WireMemory.

    Fetches are served from cached blocks filled by BLOCKFETCH, turning
    the stack walker's and expression server's sprays of tiny FETCH
    messages into a handful of block transfers.  The semantics are
    byte-identical to the uncached path:

    * a block is the raw memory image, so a value is the slice at its
      address, reversed for big-endian targets — exactly what the nub's
      per-value FETCH computes;
    * targets whose saved contexts need fixing (the rmips saved-float
      word swap, paper footnote 3) supply a ``fixup`` hook that
      replicates the nub's ``fix_fetched`` on the debugger side;
    * stores write through per-word (so the nub's ``fix_stored`` hook
      still applies) and invalidate the stored span.

    The cache must be dropped whenever the target can have run:
    :class:`~repro.ldb.target.Target` calls :meth:`invalidate` on every
    resume, stop, and reconnect.  When the peer cannot do blocks —
    negotiated off, or a legacy nub answering ERR_UNSUPPORTED — the
    cache disables itself permanently and every access falls through
    per-word, so debugging a legacy nub keeps working.
    """

    spaces = "cd"

    #: cache line size; spans are block-aligned on the wire
    BLOCK = 128

    def __init__(self, wire: WireMemory, byteorder: str = "little",
                 fixup: Optional[Callable[[str, int, bytes], bytes]] = None,
                 stats: Optional[MemoryStats] = None):
        if byteorder not in ("big", "little"):
            raise ValueError("byteorder must be 'big' or 'little'")
        self.wire = wire
        self.byteorder = byteorder
        self.fixup = fixup
        self.stats = stats if stats is not None else wire.stats
        #: (space, block_start) -> raw bytes; short when the block runs
        #: off mapped memory
        self.blocks: Dict[Tuple[str, int], bytes] = {}
        self._block_ok = True

    # -- invalidation ------------------------------------------------------

    def invalidate(self) -> None:
        """Drop everything: the target may have run."""
        if self.blocks:
            self.stats.note("cache", "invalidate")
            self.blocks.clear()

    def invalidate_range(self, space: str, start: int, length: int) -> None:
        """Drop the blocks covering ``[start, start+length)``."""
        if length <= 0:
            return
        first = start // self.BLOCK
        last = (start + length - 1) // self.BLOCK
        for n in range(first, last + 1):
            self.blocks.pop((space, n * self.BLOCK), None)

    # -- prefetch ----------------------------------------------------------

    def prefetch(self, space: str, start: int, length: int) -> None:
        """Warm the cache for a span in one round-trip (best effort).

        The stack walker uses this to pull a frame's whole saved
        context, or the cluster of saved-register slots, in a single
        BLOCKFETCH before the per-register fetches hit the cache.
        """
        if not self._block_ok or length <= 0:
            return
        first = (start // self.BLOCK) * self.BLOCK
        end = start + length
        span = ((end - first + self.BLOCK - 1) // self.BLOCK) * self.BLOCK
        span = min(span, protocol.MAX_BLOCK)
        if all((space, first + off) in self.blocks
               for off in range(0, span, self.BLOCK)):
            return
        try:
            raw = self.wire.fetch_block(space, first, span)
        except BlockUnsupported:
            self._block_ok = False
            return
        except PSError:
            return  # unmapped start etc.; the demand path will surface it
        self.stats.note("cache", "prefetch")
        self._install(space, first, raw)

    # -- the cache proper --------------------------------------------------

    def _install(self, space: str, start: int, raw: bytes) -> None:
        # ``start`` is block-aligned; the tail piece may be short when
        # the nub answered a readable prefix
        for off in range(0, len(raw), self.BLOCK):
            self.blocks[(space, start + off)] = raw[off:off + self.BLOCK]

    def _ensure_block(self, space: str, bstart: int) -> bytes:
        blk = self.blocks.get((space, bstart))
        if blk is None:
            self.stats.note("cache", "miss")
            raw = self.wire.fetch_block(space, bstart, self.BLOCK)
            self._install(space, bstart, raw)
            blk = self.blocks[(space, bstart)]
        return blk

    def _read_span(self, space: str, start: int, size: int) -> Optional[bytes]:
        """The raw memory image for a span, or None when the span is not
        fully coverable by (possibly short) blocks."""
        out = []
        addr, need = start, size
        while need > 0:
            bstart = (addr // self.BLOCK) * self.BLOCK
            blk = self._ensure_block(space, bstart)
            avail = len(blk) - (addr - bstart)
            if avail <= 0:
                return None
            take = min(avail, need)
            lo = addr - bstart
            out.append(blk[lo:lo + take])
            addr += take
            need -= take
            if need > 0 and len(blk) < self.BLOCK:
                return None  # a short block: the rest is unmapped
        return b"".join(out)

    def _image_to_value(self, space: str, offset: int, raw_img: bytes, kind: str):
        # the same interpretation the nub applies per value: reverse for
        # big-endian targets, then the machine's saved-context fixup
        raw_le = raw_img[::-1] if self.byteorder == "big" else raw_img
        if self.fixup is not None:
            raw_le = self.fixup(space, offset, raw_le)
        return decode_value(raw_le, kind)

    def fetch_absolute(self, loc: Location, kind: str):
        self.stats.note("cache", "fetch")
        size = KIND_BYTES[kind]
        raw_img = None
        if self._block_ok:
            misses = self.stats.of("cache", "miss")
            try:
                raw_img = self._read_span(loc.space, loc.offset, size)
            except BlockUnsupported:
                self._block_ok = False
            except PSError:
                raw_img = None  # block start unmapped; retry per-word
            else:
                if raw_img is not None and self.stats.of("cache", "miss") == misses:
                    self.stats.note("cache", "hit")
        if raw_img is None:
            self.stats.note("cache", "fallback")
            return self.wire.fetch_absolute(loc, kind)
        return self._image_to_value(loc.space, loc.offset, raw_img, kind)

    def store_absolute(self, loc: Location, kind: str, value) -> None:
        # write through per-word — the nub's fix_stored hook must see the
        # store exactly as on the uncached path — then drop the span
        self.stats.note("cache", "store")
        self.wire.store_absolute(loc, kind, value)
        # the nub's c and d spaces address one memory: drop both names
        for space in self.spaces:
            self.invalidate_range(space, loc.offset, KIND_BYTES[kind])


class AliasMemory(AbstractMemory):
    """Records where each register lives: a context or stack location in
    the data space, or an immediate location.  The aliases are
    machine-dependent data; this code is machine-independent."""

    def __init__(self, underlying: AbstractMemory,
                 aliases: Optional[Dict[Tuple[str, int], Location]] = None,
                 stats: Optional[MemoryStats] = None):
        self.underlying = underlying
        self.aliases = aliases if aliases is not None else {}
        self.stats = stats if stats is not None else getattr(
            underlying, "stats", MemoryStats())

    def alias(self, space: str, offset: int, target: Location) -> "AliasMemory":
        self.aliases[(space, offset)] = target
        return self

    def target_of(self, loc: Location) -> Location:
        key = (loc.space, loc.offset)
        if key not in self.aliases:
            raise PSError("invalidaccess",
                          "no alias for %s+%d" % (loc.space, loc.offset))
        return self.aliases[key]

    def fetch_absolute(self, loc: Location, kind: str):
        self.stats.note("alias", "fetch")
        return self.underlying.fetch(self.target_of(loc), kind)

    def store_absolute(self, loc: Location, kind: str, value) -> None:
        self.stats.note("alias", "store")
        self.underlying.store(self.target_of(loc), kind, value)


class RegisterMemory(AbstractMemory):
    """Solves the byte-order problem for sub-word register access.

    Fetching the least significant byte of a register would need the
    target's byte order; instead, sub-word fetches and stores become
    full-word operations here, and only the low-order *bits* of the word
    value are used — byte order becomes irrelevant (paper Sec. 4.1).

    ``widths`` maps each register space to its full-register kind
    (``r -> i32``, ``f -> f64`` — or ``f80`` on the 68020 analog).
    """

    def __init__(self, underlying: AbstractMemory, widths: Dict[str, str],
                 stats: Optional[MemoryStats] = None):
        self.underlying = underlying
        self.widths = widths
        self.stats = stats if stats is not None else getattr(
            underlying, "stats", MemoryStats())

    def fetch_absolute(self, loc: Location, kind: str):
        self.stats.note("register", "fetch")
        full = self.widths.get(loc.space, "i32")
        if kind in ("i8", "i16") and full.startswith("i"):
            word = self.underlying.fetch(loc, full)
            bits = 8 * KIND_BYTES[kind]
            value = word & ((1 << bits) - 1)
            if value >= 1 << (bits - 1):
                value -= 1 << bits
            return value
        return self.underlying.fetch(loc, full if kind.startswith(full[0]) else kind)

    def store_absolute(self, loc: Location, kind: str, value) -> None:
        self.stats.note("register", "store")
        full = self.widths.get(loc.space, "i32")
        if kind in ("i8", "i16") and full.startswith("i"):
            word = self.underlying.fetch(loc, full)
            bits = 8 * KIND_BYTES[kind]
            mask = (1 << bits) - 1
            merged = (word & ~mask) | (int(value) & mask)
            self.underlying.store(loc, full, merged)
            return
        self.underlying.store(loc, full if kind.startswith(full[0]) else kind, value)


class JoinedMemory(AbstractMemory):
    """Routes fetch and store requests by space: the instance presented
    to the rest of the debugger as the frame's abstract memory."""

    def __init__(self, routes: Dict[str, AbstractMemory],
                 stats: Optional[MemoryStats] = None):
        self.routes = routes
        self.stats = stats if stats is not None else MemoryStats()

    def route(self, loc: Location) -> AbstractMemory:
        memory = self.routes.get(loc.space)
        if memory is None:
            raise PSError("invalidaccess", "no memory serves space %r" % loc.space)
        return memory

    def fetch_absolute(self, loc: Location, kind: str):
        self.stats.note("joined", "fetch")
        return self.route(loc).fetch(loc, kind)

    def store_absolute(self, loc: Location, kind: str, value) -> None:
        self.stats.note("joined", "store")
        self.route(loc).store(loc, kind, value)


class LocalMemory(AbstractMemory):
    """A concrete in-host memory for tests and the expression server's
    immediate values; stores one value per (space, offset)."""

    def __init__(self):
        self.slots: Dict[Tuple[str, int], Union[int, float]] = {}

    def fetch_absolute(self, loc: Location, kind: str):
        key = (loc.space, loc.offset)
        if key not in self.slots:
            raise PSError("invalidaccess", "nothing at %s+%d" % key)
        return self.slots[key]

    def store_absolute(self, loc: Location, kind: str, value) -> None:
        self.slots[(loc.space, loc.offset)] = value
