"""Abstract memories: the DAG of Fig. 4 (paper Sec. 4.1).

An abstract memory represents the registers and memory of a target
process as a collection of spaces.  ldb combines several instances to
represent the state during one procedure activation:

* the **wire** holds the connection to the nub and forwards fetch/store
  requests for the code and data spaces;
* the **alias** memory translates register-space locations into code or
  data locations (the saved context) or immediate locations;
* the **register** memory turns sub-word register accesses into
  full-word operations, making target byte order irrelevant — the same
  debugger code runs against little- and big-endian targets;
* the **joined** memory routes each space to the right underlying
  memory and is the instance the rest of the debugger sees.

Machine-independent code manipulates machine-dependent *data* (the alias
table), so cross-architecture debugging comes for free.
"""

from __future__ import annotations

import struct
from typing import Dict, Optional, Tuple, Union

from ..machines import float80
from ..nub import protocol
from ..nub.channel import Channel
from ..nub.session import SessionError
from ..postscript import AbstractMemory, KIND_BYTES, Location, PSError


class MemoryStats:
    """Fetch/store counters, shared down a DAG (bench_fig4 uses them)."""

    def __init__(self):
        self.counts: Dict[str, int] = {}

    def note(self, memory_name: str, what: str) -> None:
        key = "%s.%s" % (memory_name, what)
        self.counts[key] = self.counts.get(key, 0) + 1

    def of(self, memory_name: str, what: str) -> int:
        return self.counts.get("%s.%s" % (memory_name, what), 0)


class WireMemory(AbstractMemory):
    """Forwards fetches and stores to the nub over the channel.

    Values travel little-endian on the wire whatever the target's byte
    order; the nub does the target-order memory access.

    ``link`` is either a :class:`~repro.nub.session.NubSession` — the
    normal case, giving every fetch and store retry/backoff and
    crash-reconnect for free — or a bare :class:`Channel` for direct,
    unretried access.
    """

    spaces = "cd"

    #: how long to wait for the nub before giving up (bare-channel mode)
    REPLY_TIMEOUT = 15.0

    def __init__(self, link, stats: Optional[MemoryStats] = None):
        self.link = link
        self.stats = stats if stats is not None else MemoryStats()

    def _transact(self, msg, expect):
        if hasattr(self.link, "request"):
            try:
                return self.link.request(msg, expect=expect)
            except SessionError as err:
                raise PSError("ioerror", "nub request failed: %s" % err)
        self.link.send(msg)
        return self.link.recv(self.REPLY_TIMEOUT)

    def fetch_absolute(self, loc: Location, kind: str):
        self.stats.note("wire", "fetch")
        size = KIND_BYTES[kind]
        reply = self._transact(protocol.fetch(loc.space, loc.offset, size),
                               expect=(protocol.MSG_DATA,))
        if reply.mtype == protocol.MSG_ERROR:
            raise PSError("invalidaccess", "nub error %d at %s+%d"
                          % (protocol.parse_error(reply), loc.space, loc.offset))
        if reply.mtype != protocol.MSG_DATA:
            raise PSError("ioerror", "unexpected reply %r" % (reply,))
        return decode_value(reply.payload, kind)

    def store_absolute(self, loc: Location, kind: str, value) -> None:
        self.stats.note("wire", "store")
        raw = encode_value(value, kind)
        reply = self._transact(protocol.store(loc.space, loc.offset, raw),
                               expect=(protocol.MSG_OK,))
        if reply.mtype == protocol.MSG_ERROR:
            raise PSError("invalidaccess", "nub store error %d"
                          % protocol.parse_error(reply))


def decode_value(raw_le: bytes, kind: str):
    """Decode a little-endian wire value into a host value.

    Kinds use the abstract-memory vocabulary (``i8 i16 i32 f32 f64 f80``).
    """
    if kind == "f32":
        return struct.unpack("<f", raw_le)[0]
    if kind == "f64":
        return struct.unpack("<d", raw_le)[0]
    if kind == "f80":
        return float80.decode(raw_le)
    return int.from_bytes(raw_le, "little", signed=True)


def encode_value(value, kind: str) -> bytes:
    """Encode a host value as little-endian wire bytes."""
    if kind == "f32":
        return struct.pack("<f", float(value))
    if kind == "f64":
        return struct.pack("<d", float(value))
    if kind == "f80":
        return float80.encode(float(value))
    size = KIND_BYTES[kind]
    return (int(value) & ((1 << (8 * size)) - 1)).to_bytes(size, "little")


class AliasMemory(AbstractMemory):
    """Records where each register lives: a context or stack location in
    the data space, or an immediate location.  The aliases are
    machine-dependent data; this code is machine-independent."""

    def __init__(self, underlying: AbstractMemory,
                 aliases: Optional[Dict[Tuple[str, int], Location]] = None,
                 stats: Optional[MemoryStats] = None):
        self.underlying = underlying
        self.aliases = aliases if aliases is not None else {}
        self.stats = stats if stats is not None else getattr(
            underlying, "stats", MemoryStats())

    def alias(self, space: str, offset: int, target: Location) -> "AliasMemory":
        self.aliases[(space, offset)] = target
        return self

    def target_of(self, loc: Location) -> Location:
        key = (loc.space, loc.offset)
        if key not in self.aliases:
            raise PSError("invalidaccess",
                          "no alias for %s+%d" % (loc.space, loc.offset))
        return self.aliases[key]

    def fetch_absolute(self, loc: Location, kind: str):
        self.stats.note("alias", "fetch")
        return self.underlying.fetch(self.target_of(loc), kind)

    def store_absolute(self, loc: Location, kind: str, value) -> None:
        self.stats.note("alias", "store")
        self.underlying.store(self.target_of(loc), kind, value)


class RegisterMemory(AbstractMemory):
    """Solves the byte-order problem for sub-word register access.

    Fetching the least significant byte of a register would need the
    target's byte order; instead, sub-word fetches and stores become
    full-word operations here, and only the low-order *bits* of the word
    value are used — byte order becomes irrelevant (paper Sec. 4.1).

    ``widths`` maps each register space to its full-register kind
    (``r -> i32``, ``f -> f64`` — or ``f80`` on the 68020 analog).
    """

    def __init__(self, underlying: AbstractMemory, widths: Dict[str, str],
                 stats: Optional[MemoryStats] = None):
        self.underlying = underlying
        self.widths = widths
        self.stats = stats if stats is not None else getattr(
            underlying, "stats", MemoryStats())

    def fetch_absolute(self, loc: Location, kind: str):
        self.stats.note("register", "fetch")
        full = self.widths.get(loc.space, "i32")
        if kind in ("i8", "i16") and full.startswith("i"):
            word = self.underlying.fetch(loc, full)
            bits = 8 * KIND_BYTES[kind]
            value = word & ((1 << bits) - 1)
            if value >= 1 << (bits - 1):
                value -= 1 << bits
            return value
        return self.underlying.fetch(loc, full if kind.startswith(full[0]) else kind)

    def store_absolute(self, loc: Location, kind: str, value) -> None:
        self.stats.note("register", "store")
        full = self.widths.get(loc.space, "i32")
        if kind in ("i8", "i16") and full.startswith("i"):
            word = self.underlying.fetch(loc, full)
            bits = 8 * KIND_BYTES[kind]
            mask = (1 << bits) - 1
            merged = (word & ~mask) | (int(value) & mask)
            self.underlying.store(loc, full, merged)
            return
        self.underlying.store(loc, full if kind.startswith(full[0]) else kind, value)


class JoinedMemory(AbstractMemory):
    """Routes fetch and store requests by space: the instance presented
    to the rest of the debugger as the frame's abstract memory."""

    def __init__(self, routes: Dict[str, AbstractMemory],
                 stats: Optional[MemoryStats] = None):
        self.routes = routes
        self.stats = stats if stats is not None else MemoryStats()

    def route(self, loc: Location) -> AbstractMemory:
        memory = self.routes.get(loc.space)
        if memory is None:
            raise PSError("invalidaccess", "no memory serves space %r" % loc.space)
        return memory

    def fetch_absolute(self, loc: Location, kind: str):
        self.stats.note("joined", "fetch")
        return self.route(loc).fetch(loc, kind)

    def store_absolute(self, loc: Location, kind: str, value) -> None:
        self.stats.note("joined", "store")
        self.route(loc).store(loc, kind, value)


class LocalMemory(AbstractMemory):
    """A concrete in-host memory for tests and the expression server's
    immediate values; stores one value per (space, offset)."""

    def __init__(self):
        self.slots: Dict[Tuple[str, int], Union[int, float]] = {}

    def fetch_absolute(self, loc: Location, kind: str):
        key = (loc.space, loc.offset)
        if key not in self.slots:
            raise PSError("invalidaccess", "nothing at %s+%d" % key)
        return self.slots[key]

    def store_absolute(self, loc: Location, kind: str, value) -> None:
        self.slots[(loc.space, loc.offset)] = value
