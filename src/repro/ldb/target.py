"""Target objects (paper Sec. 7).

ldb can connect to multiple targets simultaneously, so target-specific
state never lives in globals: the connection, the loader table, the
linker interface, the machine-dependent dictionaries, the breakpoint
table, and the stopped/running state all hang off a :class:`Target`.

The target's architecture comes from the top-level dictionary at debug
time, and is used to find the machine-dependent code and data — which is
what lets ldb change architectures dynamically and debug across
architectures (Sec. 1, 4).
"""

from __future__ import annotations

from typing import List, Optional

from ..nub import protocol
from ..nub.channel import Channel, ChannelClosed
from ..nub.session import (
    NubError,
    NubSession,
    RetryPolicy,
    SessionError,
    Transport,
    TransportError,
)
from ..postscript import (
    Interp,
    Location,
    Name,
    Operator,
    PSDict,
    PSError,
    String,
)
from .breakpoints import BreakpointTable
from .frames import Frame, build_stack, corrupt_frame
from .linker import linker_for
from .machdep import machdep_for
from .memories import CachingMemory, MemoryStats, WireMemory
from .symtab import SymbolTable


class TargetError(Exception):
    pass


class TargetDiedError(TargetError):
    """The target's process is gone for good — the nub died, or the
    target exited while the debugger was away.  When the nub managed to
    write a core on its way down, ``core_path`` points at it: the
    session can continue post-mortem with ``ldb core <file>``."""

    def __init__(self, message: str, core_path: Optional[str] = None):
        if core_path:
            message += " (core written to %s)" % core_path
        super().__init__(message)
        self.core_path = core_path


class Target:
    """One debugged process: connection + tables + state."""

    def __init__(self, interp: Interp, channel: Optional[Channel],
                 loader_table: PSDict, name: str = "t0", connector=None,
                 retry_policy: Optional[RetryPolicy] = None,
                 transport: Optional[Transport] = None, cache: bool = True,
                 obs=None):
        self.interp = interp
        # one observability hub per debug stack: adopt the caller's
        # (usually the Ldb's), else share the session's, else make one
        from ..obs import Observability  # deferred: obs decodes via repro.nub
        if obs is None and isinstance(transport, NubSession):
            obs = transport.obs
        #: the shared metrics registry + tracer (repro.obs.Observability)
        self.obs = obs if obs is not None else Observability()
        if transport is None:
            transport = NubSession(channel=channel, connector=connector,
                                   policy=retry_policy,
                                   on_reconnect=self._session_reconnected,
                                   obs=self.obs)
        elif isinstance(transport, NubSession):
            transport.obs = self.obs
            if transport.on_reconnect is None:
                transport.on_reconnect = self._session_reconnected
        #: how this target talks to its nub (the memory, breakpoint, and
        #: control paths all go through it)
        self.transport = transport
        #: the session view of the transport, None for bare channels
        self.session = transport if isinstance(transport, NubSession) else None
        self.name = name
        self.table = loader_table
        toplevel = loader_table["symtab"]
        self.arch_name = toplevel["architecture"].text
        # the architecture name selects the machine-dependent code & data
        self.machdep = machdep_for(self.arch_name)
        self.stats = MemoryStats(metrics=self.obs.metrics)
        self.wiremem = WireMemory(self.transport, stats=self.stats)
        if cache:
            self.wire = CachingMemory(self.wiremem,
                                      byteorder=self.machdep.byteorder,
                                      fixup=self.machdep.cache_fixup(self),
                                      stats=self.stats)
        else:
            self.wire = self.wiremem
        self.linker = linker_for(self.arch_name, loader_table, self.wire)
        self.symtab = SymbolTable(interp, toplevel, target=self)
        # the same per-architecture dictionary the loader-table PostScript
        # pushed with UseArchitecture: symbol definitions made while the
        # table was interpreted live there, and deferred values forced
        # later must resolve against them
        self.arch_dict = interp.systemdict["ArchDicts"][self.machdep.ps_arch]
        self.target_dict = self._make_target_dict()
        self.breakpoints = BreakpointTable(self)
        #: is this a post-mortem target (a core file, nothing live)?
        from .postmortem import CoreTransport  # deferred: avoid a cycle
        self.post_mortem = isinstance(transport, CoreTransport)
        #: is this target a reopened recording (a ReplayTransport)?
        from ..trace.replay import ReplayTransport  # deferred: avoid a cycle
        self.replaying = isinstance(transport, ReplayTransport)
        #: the TraceWriter capturing this session to a file, if any
        self.trace_writer = None
        #: the loaded Recording when replaying (set by open_recording)
        self.recording = None
        #: the loader-table PostScript source this target was opened
        #: with (recordings embed it so they reopen self-contained)
        self.loader_ps: Optional[str] = None
        #: where the nub auto-writes a core when the target dies (set by
        #: the debugger when it launched the nub with a core path)
        self.core_path: Optional[str] = None
        #: 'running' | 'stopped' | 'exited' | 'disconnected' | 'reconnecting'
        self.state = "running"
        self.signo = 0
        self.sigcode = 0
        self.context_addr = 0
        self.exit_status: Optional[int] = None
        self._top_frame: Optional[Frame] = None
        #: the ReplayController once time travel is enabled (see
        #: repro.timetravel); None means "not recording"
        self.replay = None

    @property
    def channel(self) -> Optional[Channel]:
        """The transport's current channel (None while disconnected)."""
        return getattr(self.transport, "channel", None)

    def describe(self) -> dict:
        """A machine-readable status snapshot — JSON-able, and built
        only from state already in hand (no wire traffic: a dead or
        wedged nub must not make *describing* the target hang too)."""
        return {
            "name": self.name,
            "arch": self.arch_name,
            "state": self.state,
            "post_mortem": self.post_mortem,
            "signo": self.signo,
            "sigcode": self.sigcode,
            "exit_status": self.exit_status,
            "breakpoints": len(self.breakpoints.planted),
            "core_path": self.core_path,
            "recording": self.replay is not None,
            "recording_path": (self.trace_writer.path
                               if self.trace_writer is not None else None),
            "replaying": self.replaying,
        }

    # -- PostScript context ------------------------------------------------

    def _make_target_dict(self) -> PSDict:
        """Target-bound operators: LazyData, GlobalData, ProcName."""
        d = PSDict()

        def op_lazydata(interp) -> None:
            # (anchor) k LazyData -> loc : fetch the k-th word after the
            # anchor from the target address space (paper Sec. 2)
            index = interp.pop_int()
            anchor = interp.pop_name_or_string_text()
            base = self.linker.anchor_address(anchor)
            address = self.wire.fetch(
                Location.absolute("d", base + 4 * index), "i32") & 0xFFFFFFFF
            interp.push(Location.absolute("d", address))

        def op_globaldata(interp) -> None:
            # (label) GlobalData -> loc : an external symbol, via nm
            label = interp.pop_name_or_string_text()
            address = self.linker.global_address(label)
            if address is None:
                raise PSError("undefined", "no external symbol %s" % label)
            interp.push(Location.absolute("d", address))

        def op_procname(interp) -> None:
            # addr ProcName -> name|null : used by the PTR printer
            address = interp.pop_int()
            hit = self.linker.proc_containing(address)
            if hit is not None and hit[0] == address:
                interp.push(String(hit[1].lstrip("_")))
            else:
                interp.push(None)

        d["LazyData"] = Operator("LazyData", op_lazydata)
        d["GlobalData"] = Operator("GlobalData", op_globaldata)
        d["ProcName"] = Operator("ProcName", op_procname)
        return d

    def eval_dicts(self) -> List[PSDict]:
        """Dictionaries to push when interpreting this target's
        PostScript: machine-dependent names first, then target ops."""
        return [self.arch_dict, self.target_dict]

    # -- nub conversation -----------------------------------------------------

    def wait_for_stop(self, timeout: Optional[float] = 30.0) -> str:
        """Block until the nub reports a signal or an exit.

        If the connection dies while waiting and the target was attached
        with a reconnect path, the state becomes ``reconnecting`` — call
        :meth:`reconnect` to re-attach; the nub preserves the target.
        """
        try:
            msg = self.transport.recv_event(timeout)
        except ChannelClosed:
            self.wire.invalidate()
            self.state = ("reconnecting"
                          if getattr(self.transport, "connector", None)
                          is not None else "disconnected")
            return self.state
        except TransportError as err:
            if not getattr(err, "diverged", False):
                raise
            # replay divergence: the transport parked on the divergent
            # re-executed state as a stop.  Mark the target stopped
            # there before the typed error surfaces, so the session
            # stays debuggable (inspect the divergent world, resume)
            # instead of wedging in a phantom "running" state.
            self.wire.invalidate()
            if err.signo is not None:
                self.signo, self.sigcode = err.signo, err.sigcode
            self.state = "stopped"
            self._top_frame = None
            self.obs.metrics.inc("target.stops")
            self.obs.tracer.event("target.stop", target=self.name,
                                  signo=self.signo, code=self.sigcode)
            raise
        # whatever arrived, the target has run since we last looked:
        # every cached block is stale (the nub rewrote the context too)
        self.wire.invalidate()
        if msg.mtype == protocol.MSG_SIGNAL:
            self.signo, self.sigcode, self.context_addr = protocol.parse_signal(msg)
            self.state = "stopped"
            self._top_frame = None
            self.obs.metrics.inc("target.stops")
            # record only fields already in hand: fetching the pc here
            # would add wire traffic, breaking tracing neutrality
            self.obs.tracer.event("target.stop", target=self.name,
                                  signo=self.signo, code=self.sigcode)
        elif msg.mtype == protocol.MSG_EXITED:
            self.exit_status = protocol.parse_exited(msg)
            self.state = "exited"
            self.obs.metrics.inc("target.exits")
            self.obs.tracer.event("target.exit", target=self.name,
                                  status=self.exit_status)
        else:
            raise TargetError("unexpected nub message %r" % (msg,))
        return self.state

    def _require_stopped(self) -> None:
        # several parts of the debugger must know whether the target is
        # running or stopped (paper Sec. 7)
        if self.state != "stopped":
            raise TargetError("target %s is %s, not stopped"
                              % (self.name, self.state))

    def _require_live(self, what: str) -> None:
        """Refuse mutating verbs on a corpse, before anything is sent."""
        if self.post_mortem:
            raise TargetError(
                "target %s is post-mortem (a core file): cannot %s"
                % (self.name, what))

    def cont(self, at_pc: Optional[int] = None) -> None:
        """Resume execution, optionally at a new pc."""
        self._require_live("continue")
        self._require_stopped()
        if at_pc is not None:
            self.wire.store(self.machdep.pc_context_location(self.context_addr),
                            "i32", at_pc)
        try:
            self.transport.control(protocol.cont())
        except TransportError as err:
            raise TargetError("continue failed: %s" % err)
        self.obs.tracer.event("target.cont", target=self.name)
        self.state = "running"
        self._top_frame = None
        self.wire.invalidate()

    def resume_from_breakpoint(self) -> None:
        """Continue past the trapped no-op (skip it out of line)."""
        self._require_stopped()
        pc = self.stop_pc()
        self.cont(at_pc=self.breakpoints.resume_pc(pc))

    def kill(self) -> None:
        self._require_live("kill")
        self._require_stopped()
        try:
            self.transport.control(protocol.kill())
        except TransportError as err:
            raise TargetError("kill failed: %s" % err)
        self.obs.tracer.event("target.kill", target=self.name)
        self.state = "exited"
        self.wire.invalidate()

    def detach(self) -> None:
        """Break the connection; the nub preserves the target's state."""
        self._require_live("detach")
        self._require_stopped()
        try:
            self.transport.control(protocol.detach())
        except TransportError as err:
            raise TargetError("detach failed: %s" % err)
        self.obs.tracer.event("target.detach", target=self.name)
        self.transport.close()
        self.state = "disconnected"
        self.wire.invalidate()

    # -- time travel (checkpoint/replay over the nub) ----------------------

    def _tt_transact(self, msg, expect):
        """One time-travel exchange, degrading to a clear error against
        a nub that cannot time-travel.

        A session that negotiated the feature away (legacy nub) is
        refused before anything crosses the wire — sending would draw
        ``ERR_BAD_MESSAGE``, which the retry engine treats as a mangled
        frame.  A bare channel (no negotiation) tries the request and
        maps the nub's error answer to the same :class:`TargetError`.
        """
        if getattr(self.transport, "timetravel_active", None) is False:
            raise TargetError(
                "nub does not support time travel "
                "(FEATURE_TIMETRAVEL was not negotiated)")
        try:
            return self.transport.transact(msg, expect=expect)
        except NubError as err:
            if err.code in (protocol.ERR_UNSUPPORTED,
                            protocol.ERR_BAD_MESSAGE):
                raise TargetError(
                    "nub does not support time travel (error %d)" % err.code)
            if err.code == protocol.ERR_BAD_CHECKPOINT:
                raise TargetError("no such checkpoint on the nub")
            raise TargetError("time-travel request failed: nub error %d"
                              % err.code)
        except TransportError as err:
            raise TargetError("time-travel request failed: %s" % err)

    def current_icount(self) -> int:
        """The target's retired-instruction count (at the current stop)."""
        self._require_stopped()
        reply = self._tt_transact(protocol.icount(),
                                  expect=(protocol.MSG_CKPT,))
        _cid, icount = protocol.parse_ckpt(reply)
        return icount

    def take_checkpoint(self):
        """Checkpoint the target nub-side; returns ``(id, icount)``.
        Only the id and the instruction count cross the wire — the
        image stays with the nub."""
        self._require_stopped()
        self.stats.note("wire", "checkpoint")
        reply = self._tt_transact(protocol.checkpoint(),
                                  expect=(protocol.MSG_CKPT,))
        cid, icount = protocol.parse_ckpt(reply)
        self.obs.metrics.inc("target.checkpoints")
        self.obs.tracer.event("target.checkpoint", target=self.name,
                              ckpt=cid, icount=icount)
        return cid, icount

    def restore_checkpoint(self, cid: int) -> int:
        """Rewind the target to a checkpoint; returns its icount.

        The whole machine state changed under the debugger, so this
        resembles a reconnect: drop every cached block, forget the
        frame chain, and reconcile the nub's (checkpoint-time) planted
        traps with this session's breakpoint table — the table is the
        source of truth.
        """
        self._require_stopped()
        self.stats.note("wire", "restore")
        reply = self._tt_transact(protocol.restore(cid),
                                  expect=(protocol.MSG_CKPT,))
        _cid, icount = protocol.parse_ckpt(reply)
        # like a reconnect, this silently rewrites the whole machine
        # state under the debugger: one warning-level mark per restore
        self.obs.metrics.inc("target.restores")
        self.obs.tracer.warn("target.restore", target=self.name,
                             ckpt=cid, icount=icount)
        self.wire.invalidate()
        self._top_frame = None
        from ..machines.isa import SIGTRAP
        # checkpoints are taken at stops, so the restored state is the
        # checkpoint's SIGTRAP stop (context area included)
        self.signo = SIGTRAP
        self.sigcode = 0
        self.state = "stopped"
        self.breakpoints.resync_after_restore()
        return icount

    def drop_checkpoint(self, cid: int) -> None:
        """Release a nub-side checkpoint (stop paying its COW cost)."""
        self.stats.note("wire", "dropckpt")
        self._tt_transact(protocol.drop_checkpoint(cid),
                          expect=(protocol.MSG_OK,))

    def run_to_icount(self, target_icount: int,
                      at_pc: Optional[int] = None) -> None:
        """Resume, asking the nub to stop after ``target_icount``
        retired instructions (surfaces as a SIGTRAP/CODE_ICOUNT stop)."""
        self._require_live("run")
        self._require_stopped()
        if getattr(self.transport, "timetravel_active", None) is False:
            raise TargetError(
                "nub does not support time travel "
                "(FEATURE_TIMETRAVEL was not negotiated)")
        if at_pc is not None:
            self.wire.store(self.machdep.pc_context_location(self.context_addr),
                            "i32", at_pc)
        self.stats.note("wire", "runto")
        self.obs.tracer.event("target.runto", target=self.name,
                              icount=target_icount)
        try:
            self.transport.control(protocol.runto(target_icount))
        except TransportError as err:
            raise TargetError("run-to-icount failed: %s" % err)
        self.state = "running"
        self._top_frame = None
        self.wire.invalidate()

    def at_icount_stop(self) -> bool:
        """Did the target stop because a RUNTO count was reached?"""
        from ..machines.isa import CODE_ICOUNT, SIGTRAP
        return (self.state == "stopped" and self.signo == SIGTRAP
                and self.sigcode == CODE_ICOUNT)

    # -- post-mortem (core dumps) ------------------------------------------

    def dump_core(self, path: str):
        """Ask the nub to serialize the stopped target (DUMPCORE) and
        write the image to ``path``; returns the parsed
        :class:`~repro.machines.core.CoreFile`.

        Degrades like time travel: a session that negotiated the
        feature away refuses before anything crosses the wire, and a
        bare channel maps the nub's error answer to the same
        :class:`TargetError`.
        """
        self._require_stopped()
        if getattr(self.transport, "core_active", None) is False:
            raise TargetError(
                "nub does not support core dumps "
                "(FEATURE_CORE was not negotiated)")
        from ..machines.core import CoreError, CoreFile
        self.stats.note("wire", "dumpcore")
        try:
            reply = self.transport.transact(protocol.dumpcore(),
                                            expect=(protocol.MSG_DATA,))
        except NubError as err:
            if err.code in (protocol.ERR_UNSUPPORTED,
                            protocol.ERR_BAD_MESSAGE):
                raise TargetError(
                    "nub does not support core dumps (error %d)" % err.code)
            raise TargetError("core dump failed: nub error %d" % err.code)
        except TransportError as err:
            raise TargetError("core dump failed: %s" % err)
        try:
            core = CoreFile.from_bytes(reply.payload)
        except CoreError as err:
            raise TargetError("nub answered an unreadable core: %s" % err)
        try:
            core.dump(path)
        except OSError as err:
            raise TargetError("cannot write core to %s: %s" % (path, err))
        self.obs.metrics.inc("target.core_dumps")
        self.obs.tracer.event("target.dumpcore", target=self.name,
                              path=path, size=len(reply.payload))
        return core

    # -- recording (persistent traces) -------------------------------------

    def spill_state(self):
        """Ask the nub for the complete resumable machine state (SPILL)
        of the current stop; returns the parsed
        :class:`~repro.machines.machstate.MachineState`.

        Degrades like the other time-travel verbs: a session that
        negotiated FEATURE_TIMETRAVEL away refuses before anything
        crosses the wire.
        """
        self._require_stopped()
        from ..machines.machstate import MachineState, StateError
        self.stats.note("wire", "spill")
        reply = self._tt_transact(protocol.spill(),
                                  expect=(protocol.MSG_DATA,))
        try:
            state = MachineState.from_bytes(reply.payload)
        except StateError as err:
            raise TargetError("nub answered an unreadable state spill: %s"
                              % err)
        self.obs.metrics.inc("target.spills")
        self.obs.tracer.event("target.spill", target=self.name,
                              icount=state.icount,
                              bytes=len(reply.payload))
        return state

    # -- crash recovery (paper Sec. 7.1) ----------------------------------

    def _session_reconnected(self, session: NubSession) -> None:
        """Session hook: a new connection found the target stopped.
        Apply the re-announced stop and resynchronize breakpoints."""
        self.wire.invalidate()
        announced = session.last_signal is not None
        if announced:
            self.signo, self.sigcode, self.context_addr = session.last_signal
            self.state = "stopped"
            self._top_frame = None
            if self.trace_writer is not None:
                # recording survives the reconnect: the resync's
                # replanting stores are recovery mechanics, not inputs —
                # stitch the input log over the boundary instead of
                # polluting it
                with self.trace_writer.stitch_reconnect():
                    self.breakpoints.resync()
            else:
                self.breakpoints.resync()
        # no stop announced: the nub answered with EXITED (queued as a
        # pending event) or nothing at all — there is no stopped target
        # to replant traps into, so do NOT replay BREAKS here
        # the one warning per resync: a reconnect silently rewrites the
        # target's stop state and replants traps, so leave a visible mark
        self.obs.metrics.inc("target.reconnects")
        self.obs.tracer.warn("target.reconnect", target=self.name,
                             announced=announced,
                             breakpoints=len(self.breakpoints.planted))

    def reconnect(self) -> None:
        """Re-attach after a lost connection (or debugger crash): a new
        channel through the nub's listener, the re-announced stop, and a
        ``BREAKS`` replay to recover the breakpoint table.

        When the nub is gone for good (the retry budget ran out) or the
        target turns out to have exited, this raises the *typed*
        :class:`TargetDiedError` — pointing at the auto-written core
        when one is known — rather than pretending the connection might
        come back.
        """
        if self.session is None or self.session.connector is None:
            raise TargetError("target %s has no reconnect path" % self.name)
        self.state = "reconnecting"
        self.wire.invalidate()
        try:
            self.session.reconnect()
        except SessionError as err:
            self.state = "disconnected"
            self.obs.metrics.inc("target.deaths")
            self.obs.tracer.warn("target.died", target=self.name,
                                 reason=str(err))
            raise TargetDiedError("target %s is gone: %s" % (self.name, err),
                                  core_path=self.core_path)
        if self.state == "reconnecting":
            # nothing was re-announced on the new connection
            if self.session.pending_events:
                self.wait_for_stop(timeout=1.0)
            else:
                self.state = "running"
        if self.state == "exited":
            # the nub re-announced an exit, not a stop: the process is
            # dead; there is nothing to resynchronize and no target to
            # debug further on this connection
            self.obs.metrics.inc("target.deaths")
            self.obs.tracer.warn("target.died", target=self.name,
                                 reason="exited with status %r"
                                 % self.exit_status)
            raise TargetDiedError(
                "target %s exited (status %r) while the debugger was away"
                % (self.name, self.exit_status), core_path=self.core_path)
        if self.state == "stopped":
            self.stop_pc()  # re-validate the saved-context address

    # -- stopped-state inspection -------------------------------------------------

    def stop_pc(self) -> int:
        self._require_stopped()
        return self.wire.fetch(
            self.machdep.pc_context_location(self.context_addr), "i32") & 0xFFFFFFFF

    def at_breakpoint(self) -> bool:
        from ..machines.isa import CODE_ICOUNT, SIGTRAP
        # an icount stop lands *before* the next instruction: a trap
        # sitting there has not fired yet, so this is not a bp stop
        return (self.state == "stopped" and self.signo == SIGTRAP
                and self.sigcode != CODE_ICOUNT
                and self.breakpoints.at(self.stop_pc()) is not None)

    def top_frame(self) -> Frame:
        self._require_stopped()
        if self._top_frame is None:
            self._top_frame = self.machdep.new_top_frame(self, self.context_addr)
        return self._top_frame

    def frames(self, limit: int = 64) -> List[Frame]:
        """The defensive backtrace (:func:`build_stack`): given a
        stopped target it never raises — a smashed stack, unreadable
        frame memory, or a frame cycle truncates the walk with a
        ``<corrupt frame>`` sentinel instead."""
        try:
            top = self.top_frame()
        except PSError as err:
            # even the saved context is gone (the paper's "a faulty
            # program can destroy the nub's data" case)
            return [corrupt_frame(self, 0,
                                  "unreadable saved context: %s" % err)]
        return build_stack(top, limit)

    # -- symbol values ---------------------------------------------------------------

    def location_of(self, entry: PSDict, frame: Optional[Frame] = None) -> Location:
        """Force a symbol's where-value in a frame's context.

        Anchor- and nm-based locations are replaced with their results
        ("at most once per symbol-table entry", Sec. 7); frame-relative
        locations are recomputed per frame.
        """
        value = entry["where"]
        if isinstance(value, Location):
            return value
        memoize = self._mentions_linker(value)
        result = self._exec_where(value, frame)
        if not isinstance(result, Location):
            raise PSError("typecheck", "where yielded %r" % (result,))
        if memoize:
            entry["where"] = result
        return result

    def _mentions_linker(self, value) -> bool:
        text = value.text if isinstance(value, String) else repr(value)
        return "LazyData" in text or "GlobalData" in text

    def _exec_where(self, value, frame: Optional[Frame]):
        interp = self.interp
        pushed = 0
        for d in self.eval_dicts():
            interp.push_dict(d)
            pushed += 1
        if frame is not None:
            frame_dict = PSDict()
            frame_dict["FrameBase"] = frame.frame_base
            interp.push_dict(frame_dict)
            pushed += 1
        try:
            interp.call(value)
            return interp.pop()
        finally:
            for _ in range(pushed):
                interp.pop_dict_stack()

    def print_value(self, entry: PSDict, frame: Frame) -> None:
        """Print a variable using its type's printer procedure: the
        PostScript runs against the frame's abstract memory (Sec. 4.1)."""
        loc = self.location_of(entry, frame)
        typedict = entry["type"]
        interp = self.interp
        pushed = 0
        for d in self.eval_dicts():
            interp.push_dict(d)
            pushed += 1
        try:
            interp.push(frame.memory)
            interp.push(loc)
            interp.push(typedict)
            interp.run("PrintValue")
        finally:
            for _ in range(pushed):
                interp.pop_dict_stack()
