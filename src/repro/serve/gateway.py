"""The JSON-line gateway: the fleet's wire surface.

One TCP connection carries any number of requests, one JSON object per
line, each tagged with a caller-chosen ``id``.  Replies carry the same
``id`` and may arrive **out of order** — every request is handled as
its own asyncio task, so a client blocked on a slow ``continue`` in
one session can still get instant answers for another session on the
same connection.  That per-request concurrency is a robustness
property, not an optimization: a hung session must never block an
unrelated one (the chaos suite asserts it).

The envelope (PROTOCOL.md Appendix A)::

    -> {"id": 7, "op": "command", "session": "s0003", "token": "...",
        "cmd": "continue", "args": {}, "deadline": 2.0}
    <- {"id": 7, "ok": true, "result": {"event": "breakpoint", ...}}
    <- {"id": 8, "ok": false, "error": {"code": "ERR_BUSY",
        "message": "...", "retryable": true}}

Every line in is answered by exactly one line out; malformed JSON is
answered too (``ERR_BAD_REQUEST``, ``id: null``).  The module also
ships the sync :class:`GatewayClient` (id-matched, out-of-order safe)
and :class:`DebugServer`, which runs the whole asyncio stack on a
background thread for blocking callers — the CLI, the tests, and the
fleet benchmark.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
from typing import Optional

from ..ldb.api import ApiError
from .errors import ERR_BAD_REQUEST, ERR_INTERNAL, GatewayError
from .manager import SessionManager


class Gateway:
    """The asyncio TCP front end over a :class:`SessionManager`."""

    def __init__(self, manager: SessionManager,
                 host: str = "127.0.0.1", port: int = 0):
        self.manager = manager
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> "Gateway":
        await self.manager.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self.manager.obs.tracer.event("serve.listening",
                                      host=self.host, port=self.port)
        return self

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.manager.close()

    # -- per-connection loop ------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        # one write lock per connection: reply lines from concurrent
        # request tasks must not interleave mid-line
        write_lock = asyncio.Lock()
        tasks = set()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                task = asyncio.ensure_future(
                    self._handle_line(line, writer, write_lock))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except asyncio.CancelledError:
            pass  # server shutdown with the connection still open
        finally:
            for task in tasks:
                task.cancel()
            try:
                writer.close()
            except Exception:
                pass  # the peer may already be gone

    async def _handle_line(self, line: bytes, writer: asyncio.StreamWriter,
                           write_lock: asyncio.Lock) -> None:
        request_id = None
        try:
            try:
                request = json.loads(line.decode("utf-8", "replace"))
            except ValueError as err:
                raise GatewayError(ERR_BAD_REQUEST,
                                   "unparseable request line: %s" % err)
            if not isinstance(request, dict):
                raise GatewayError(ERR_BAD_REQUEST,
                                   "request must be a JSON object")
            request_id = request.get("id")
            result = await self._dispatch(request)
            reply = {"id": request_id, "ok": True, "result": result}
        except (GatewayError, ApiError) as err:
            reply = {"id": request_id, "ok": False, "error": err.to_dict()}
        except Exception as err:  # the gateway's own promise: always typed
            reply = {"id": request_id, "ok": False,
                     "error": {"code": ERR_INTERNAL, "message": str(err)}}
        async with write_lock:
            try:
                writer.write(json.dumps(reply).encode("utf-8") + b"\n")
                await writer.drain()
            except Exception:
                pass  # client hung up before its answer; nothing to do

    async def _dispatch(self, request: dict):
        op = request.get("op")
        manager = self.manager
        if op == "spawn":
            return await manager.spawn(request.get("args"))
        if op == "attach":
            return await manager.attach(request.get("args"))
        if op == "replay":
            return await manager.replay(request.get("args"))
        if op == "command":
            return await manager.command(
                request.get("session"), request.get("token"),
                request.get("cmd"), request.get("args"),
                deadline=request.get("deadline"))
        if op == "detach":
            return await manager.detach(request.get("session"),
                                        request.get("token"))
        if op == "triage":
            return await manager.triage(request.get("args"))
        if op == "sessions":
            return {"sessions": manager.list_sessions()}
        if op == "stats":
            return {"stats": manager.stats()}
        raise GatewayError(ERR_BAD_REQUEST, "unknown op %r (try: spawn, "
                           "attach, replay, triage, command, detach, "
                           "sessions, stats)" % op)


class RemoteError(Exception):
    """A typed error answered by the server, rehydrated client-side."""

    def __init__(self, error: dict):
        super().__init__("%s: %s" % (error.get("code"),
                                     error.get("message")))
        self.code = error.get("code")
        self.retryable = bool(error.get("retryable"))
        self.core_path = error.get("core_path")


class GatewayClient:
    """A blocking client for the JSON-line gateway.

    Replies are matched by ``id``, so the client stays correct even
    when the server answers out of order (which it will, whenever a
    fast request overtakes a slow one on the same connection).
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.sock.settimeout(timeout)
        self._file = self.sock.makefile("rb")
        self._next_id = 0
        self._pending: dict = {}
        self._lock = threading.Lock()

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self.sock.close()

    def request(self, op: str, **fields) -> dict:
        """Send one request and block for *its* reply."""
        with self._lock:
            self._next_id += 1
            request_id = self._next_id
        payload = {"id": request_id, "op": op}
        payload.update(fields)
        self.sock.sendall(json.dumps(payload).encode("utf-8") + b"\n")
        while True:
            with self._lock:
                reply = self._pending.pop(request_id, None)
            if reply is None:
                line = self._file.readline()
                if not line:
                    raise ConnectionError("server closed the connection")
                reply = json.loads(line)
                if reply.get("id") != request_id:
                    with self._lock:
                        self._pending[reply.get("id")] = reply
                    continue
            if not reply.get("ok"):
                raise RemoteError(reply.get("error") or {})
            return reply.get("result")

    # -- convenience verbs --------------------------------------------------

    def spawn(self, **args) -> dict:
        return self.request("spawn", args=args)

    def attach(self, **args) -> dict:
        return self.request("attach", args=args)

    def replay(self, **args) -> dict:
        return self.request("replay", args=args)

    def command(self, session: str, token: str, cmd: str,
                args: Optional[dict] = None,
                deadline: Optional[float] = None) -> dict:
        return self.request("command", session=session, token=token,
                            cmd=cmd, args=args or {}, deadline=deadline)

    def detach(self, session: str, token: str) -> dict:
        return self.request("detach", session=session, token=token)

    def triage(self, path: str, **args) -> dict:
        """Run a server-side triage batch; returns the report dict."""
        args["path"] = path
        return self.request("triage", args=args)["report"]

    def sessions(self) -> list:
        return self.request("sessions")["sessions"]

    def stats(self) -> dict:
        return self.request("stats")["stats"]


class DebugServer:
    """The whole server stack on a background thread, for blocking
    callers: build one, point :class:`GatewayClient`\\ s at it, close
    it.  The CLI's ``serve`` verb, the tests, and the fleet benchmark
    all run through this."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, **manager_kw):
        self.loop = asyncio.new_event_loop()
        self.manager = SessionManager(**manager_kw)
        self.gateway = Gateway(self.manager, host, port)
        self._started = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True,
                                       name="ldb-serve")
        self.thread.start()
        if not self._started.wait(30.0):
            raise RuntimeError("debug server failed to start")
        if self._start_error is not None:
            raise self._start_error

    _start_error: Optional[BaseException] = None

    @property
    def host(self) -> str:
        return self.gateway.host

    @property
    def port(self) -> int:
        return self.gateway.port

    def client(self, timeout: float = 30.0) -> GatewayClient:
        return GatewayClient(self.host, self.port, timeout=timeout)

    def close(self) -> None:
        if not self.loop.is_closed():
            future = asyncio.run_coroutine_threadsafe(self._shutdown(),
                                                      self.loop)
            future.result(30.0)
            self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10.0)

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        try:
            self.loop.run_until_complete(self.gateway.start())
        except BaseException as err:
            self._start_error = err
            self._started.set()
            return
        self._started.set()
        self.loop.run_forever()
        self.loop.close()

    async def _shutdown(self) -> None:
        await self.gateway.close()
        # reap connection-handler tasks still parked on dead sockets
        tasks = [task for task in asyncio.all_tasks(self.loop)
                 if task is not asyncio.current_task()]
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)


def main(argv=None) -> int:
    """``python -m repro.serve [port]`` — serve until interrupted.

    Both SIGTERM (the supervisor's polite kill) and SIGINT run the
    same graceful path: the manager drains live recordings to disk
    (bounded by its drain deadline) before any transport is severed,
    so an operator restart never costs a session its trace."""
    import signal
    import sys
    argv = sys.argv[1:] if argv is None else argv
    port = int(argv[0]) if argv else 4711
    server = DebugServer(port=port)
    print("ldb session server listening on %s:%d" % (server.host,
                                                     server.port))
    stop = threading.Event()

    def _terminate(signum, frame):
        stop.set()

    try:
        signal.signal(signal.SIGTERM, _terminate)
    except (ValueError, OSError):
        pass  # not the main thread (embedded): SIGTERM stays default
    try:
        while not stop.is_set():
            server.thread.join(1.0)
            if not server.thread.is_alive():
                break
    except KeyboardInterrupt:
        pass
    print("ldb session server draining and shutting down")
    server.close()
    return 0
