"""``python -m repro.serve [port]`` — run the session server."""

import sys

from .gateway import main

sys.exit(main())
