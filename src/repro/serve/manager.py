"""The session manager: many supervised debug sessions, one service.

The manager is the asyncio half of the server: it admits sessions
(**global** backpressure — a full house answers ``ERR_BUSY`` rather
than queueing spawns), mints per-session auth tokens, bridges gateway
requests onto each session's worker thread, and runs the single
**supervision loop** that watches every session for hangs and idleness:

* a command stuck past its deadline plus ``hang_grace`` gets its
  session :meth:`~repro.serve.session.SessionWorker.force_expire`\\ d —
  the watchdog severs the transport so the stuck call unwinds and the
  client gets a typed answer, never a wedged connection;
* a session idle past its TTL is **reaped**: its nub is released, its
  queue drained with typed errors, and the slot freed.  Dead and
  core-mode sessions age out the same way, so a chaos run converges to
  zero sessions without operator help.

Everything observable lands in the shared metrics registry:
``serve.sessions`` gauges (per-state counts), ``serve.queue_depth``
and ``serve.cmd_latency_us`` histograms, ``serve.reaps`` /
``serve.deaths`` / ``serve.rejects.busy`` counters — the fleet
benchmark reads its p50/p99 straight from here.
"""

from __future__ import annotations

import asyncio
import hmac
import io
import os
import random
import secrets
import shutil
import tempfile
import threading
from typing import Dict, Optional

from ..nub.faults import FaultSchedule
from ..nub.session import RetryPolicy
from .errors import (
    ERR_AUTH,
    ERR_BUSY,
    ERR_DEADLINE,
    ERR_NO_SESSION,
    ERR_SHUTTING_DOWN,
    ERR_SPAWN_FAILED,
    ERR_TRIAGE,
    GatewayError,
)
from .session import SessionWorker

#: session states that count as "serving" for the live gauge
ACTIVE_STATES = ("starting", "live", "core")


class SessionManager:
    """Hosts and supervises a fleet of debug sessions."""

    def __init__(self, *, max_sessions: int = 256, queue_limit: int = 8,
                 default_deadline: float = 5.0, hang_grace: float = 2.0,
                 idle_ttl: float = 300.0, reap_interval: float = 0.25,
                 spawn_deadline: float = 30.0, drain_deadline: float = 5.0,
                 scratch_dir: Optional[str] = None,
                 token_seed: Optional[int] = None, obs=None):
        if obs is None:
            from ..obs import Observability
            obs = Observability()
        self.obs = obs
        self.max_sessions = max_sessions
        self.queue_limit = queue_limit
        self.default_deadline = default_deadline
        self.hang_grace = hang_grace
        self.idle_ttl = idle_ttl
        self.reap_interval = reap_interval
        self.spawn_deadline = spawn_deadline
        self.drain_deadline = drain_deadline
        self._own_scratch = scratch_dir is None
        self.scratch_dir = scratch_dir or tempfile.mkdtemp(prefix="ldbserve-")
        #: deterministic tokens for tests; secrets otherwise
        self._token_rng = (random.Random(token_seed)
                          if token_seed is not None else None)
        self.sessions: Dict[str, SessionWorker] = {}
        self.tokens: Dict[str, str] = {}
        self._next_sid = 0
        self._lock = threading.Lock()
        self._exe_cache: Dict[tuple, object] = {}
        self._exe_lock = threading.Lock()
        self._closing = False
        self._supervisor_task: Optional[asyncio.Task] = None

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> "SessionManager":
        if self._supervisor_task is None:
            self._supervisor_task = asyncio.ensure_future(self._supervise())
        return self

    async def close(self) -> None:
        self._closing = True
        if self._supervisor_task is not None:
            self._supervisor_task.cancel()
            try:
                await self._supervisor_task
            except asyncio.CancelledError:
                pass
            self._supervisor_task = None
        with self._lock:
            workers = list(self.sessions.values())
            self.sessions.clear()
            self.tokens.clear()
        await self._drain_recordings(workers)
        loop = asyncio.get_event_loop()
        await asyncio.gather(*(loop.run_in_executor(None, w.close)
                               for w in workers))
        self._update_gauges()
        if self._own_scratch:
            shutil.rmtree(self.scratch_dir, ignore_errors=True)

    async def _drain_recordings(self, workers) -> None:
        """The graceful half of shutdown: before any transport is
        severed, every live session with an active recording writer
        gets one bounded chance to save — partial-tolerant, so a
        session whose nub already died still lands its materialized
        prefix as a salvageable file.  The drain deadline caps the
        whole pass; a save that cannot finish in time is abandoned
        (the atomic writer guarantees the target path is never torn
        either way)."""
        drains = [(w.sid, future) for w in workers
                  for future in (w.drain_recording(self.drain_deadline),)
                  if future is not None]
        if not drains:
            return
        metrics = self.obs.metrics
        self.obs.tracer.event("serve.drain", sessions=len(drains),
                              deadline=self.drain_deadline)
        wrapped = asyncio.gather(
            *(asyncio.wrap_future(future) for _sid, future in drains),
            return_exceptions=True)
        try:
            results = await asyncio.wait_for(
                wrapped, timeout=self.drain_deadline + 1.0)
        except asyncio.TimeoutError:
            metrics.inc("serve.drain_failures", len(drains))
            self.obs.tracer.warn("serve.drain_timeout",
                                 sessions=len(drains))
            return
        for (sid, _future), result in zip(drains, results):
            if isinstance(result, BaseException):
                metrics.inc("serve.drain_failures")
                self.obs.tracer.warn("serve.drain_failed", session=sid,
                                     reason=str(result))
            else:
                metrics.inc("serve.drain_saves")
                self.obs.tracer.event("serve.drain_saved", session=sid,
                                      path=result.get("path"),
                                      partial=result.get("partial"))

    # -- spawn/attach/detach ------------------------------------------------

    async def spawn(self, args: Optional[dict] = None) -> dict:
        """Start a hosted session: compile (cached), launch a nub, and
        put the whole stack under a supervised worker."""
        args = args or {}
        worker = self._admit(args)
        source = args.get("source")
        if not isinstance(source, str) or not source:
            self._forget(worker.sid)
            raise GatewayError(ERR_SPAWN_FAILED,
                               "spawn needs 'source' (C program text)")
        arch = args.get("arch", "rmips")
        filename = args.get("filename", "main.c")
        fault = args.get("fault")
        record = args.get("record")
        if record is not None and (not isinstance(record, str) or not record):
            self._forget(worker.sid)
            raise GatewayError(ERR_SPAWN_FAILED,
                               "spawn 'record' must be a save path")
        core_path = os.path.join(self.scratch_dir, "%s.core" % worker.sid)

        def factory():
            from ..ldb import Ldb
            exe = self._compiled(arch, source, filename)
            ldb = Ldb(stdout=io.StringIO())
            schedule = (FaultSchedule.from_spec(fault)
                        if fault is not None else None)
            target = ldb.load_program(exe, core_path=core_path,
                                      fault_schedule=schedule)
            if record is not None:
                ldb.start_recording(target, path=record)
            self._tune_session(target, worker)
            return ldb, target

        worker.factory = factory
        return await self._launch(worker)

    async def attach(self, args: Optional[dict] = None) -> dict:
        """Adopt an external nub waiting on the network — the fleet
        form of ``ldb --attach``, with the reconnect path wired up."""
        args = args or {}
        worker = self._admit(args)
        host = args.get("host", "127.0.0.1")
        port = args.get("port")
        table_ps = args.get("table_ps")
        if not isinstance(port, int) or not isinstance(table_ps, str):
            self._forget(worker.sid)
            raise GatewayError(ERR_SPAWN_FAILED,
                               "attach needs 'port' (int) and 'table_ps'")

        def factory():
            from ..ldb import Ldb
            ldb = Ldb(stdout=io.StringIO())
            target = ldb.attach(host, port, table_ps)
            target.core_path = args.get("core_path")
            self._tune_session(target, worker)
            return ldb, target

        worker.factory = factory
        return await self._launch(worker)

    async def replay(self, args: Optional[dict] = None) -> dict:
        """Host a replay session over a saved recording: no nub, no
        live process — the worker's debugger stack re-executes the
        file, so the whole command vocabulary (including reverse
        commands) works against a crash that happened elsewhere."""
        args = args or {}
        worker = self._admit(args)
        path = args.get("path")
        if not isinstance(path, str) or not path:
            self._forget(worker.sid)
            raise GatewayError(ERR_SPAWN_FAILED,
                               "replay needs 'path' (a recording file)")

        def factory():
            from ..ldb import Ldb
            ldb = Ldb(stdout=io.StringIO())
            target = ldb.open_recording(path)
            self._tune_session(target, worker)
            return ldb, target

        worker.factory = factory
        return await self._launch(worker)

    async def triage(self, args: Optional[dict] = None) -> dict:
        """Batch-triage a corpus of crash artifacts server-side: the
        `triage` gateway op.  Unlike the session ops this holds no
        session — the batch is the unit of work — but it shares the
        server's registry, so ``stats`` exposes the ``triage.*``
        family next to ``serve.*``.  Batch-level failures answer with
        ``ERR_TRIAGE``; per-artifact failures are *results* (the
        report's typed error ledger), not errors."""
        from ..triage import TriageEngine, TriageError
        args = args or {}
        path = args.get("path")
        if not isinstance(path, str) or not path:
            raise GatewayError(ERR_TRIAGE,
                               "triage needs 'path' (a directory, "
                               "manifest, or artifact)")
        workers = args.get("workers", 4)
        mode = args.get("mode", "thread")
        try:
            engine = TriageEngine(workers=workers, mode=mode,
                                  obs=self.obs)
        except (TriageError, TypeError) as err:
            raise GatewayError(ERR_TRIAGE, str(err))
        loop = asyncio.get_event_loop()
        try:
            report = await loop.run_in_executor(
                None, lambda: engine.triage(path))
        except TriageError as err:
            raise GatewayError(ERR_TRIAGE, str(err))
        return {"report": report.to_dict()}

    async def detach(self, sid: str, token: Optional[str]) -> dict:
        worker = self._authorized(sid, token)
        self._forget(sid)
        loop = asyncio.get_event_loop()
        await loop.run_in_executor(None, lambda: worker.close("detached"))
        self._update_gauges()
        return {"session": sid, "state": "closed"}

    # -- commands -----------------------------------------------------------

    async def command(self, sid: str, token: Optional[str], cmd: str,
                      args: Optional[dict] = None,
                      deadline: Optional[float] = None) -> dict:
        """Run one command on a session, under its deadline.  Always
        answers: a result, or a :class:`GatewayError` with a code."""
        worker = self._authorized(sid, token)
        deadline = self.default_deadline if deadline is None else deadline
        future = worker.submit(cmd, args, deadline=deadline)
        self.obs.metrics.inc("serve.requests")
        try:
            # the worker (or the watchdog) almost always answers first;
            # the extra second is the last-resort bound that keeps the
            # gateway's promise when even the watchdog path is wedged
            return await asyncio.wait_for(
                asyncio.wrap_future(future),
                timeout=deadline + self.hang_grace + 1.0)
        except asyncio.TimeoutError:
            self.obs.metrics.inc("serve.deadline_misses")
            raise GatewayError(
                ERR_DEADLINE, "command %r on %s gave no answer within "
                "%.3fs + grace" % (cmd, sid, deadline), retryable=True)

    # -- introspection ------------------------------------------------------

    def list_sessions(self) -> list:
        with self._lock:
            workers = list(self.sessions.values())
        return [w.describe() for w in workers]

    def stats(self) -> dict:
        self._update_gauges()
        snapshot = self.obs.metrics.snapshot()
        return {name: value for name, value in snapshot.items()
                if name.startswith("serve.")}

    # -- internals ----------------------------------------------------------

    def _admit(self, args: dict) -> SessionWorker:
        """Global backpressure: a full server refuses new sessions now,
        with a retryable code — it does not queue them into the dark."""
        if self._closing:
            raise GatewayError(ERR_SHUTTING_DOWN, "server is shutting down")
        with self._lock:
            if len(self.sessions) >= self.max_sessions:
                self.obs.metrics.inc("serve.rejects.sessions")
                raise GatewayError(
                    ERR_BUSY, "server is at its %d-session limit"
                    % self.max_sessions, retryable=True)
            sid = "s%04d" % self._next_sid
            self._next_sid += 1
            token = self._mint_token()
            worker = SessionWorker(
                sid, factory=None,
                queue_limit=int(args.get("queue_limit", self.queue_limit)),
                default_deadline=float(args.get("deadline",
                                                self.default_deadline)),
                idle_ttl=float(args.get("idle_ttl", self.idle_ttl)),
                obs=self.obs)
            self.sessions[sid] = worker
            self.tokens[sid] = token
        return worker

    async def _launch(self, worker: SessionWorker) -> dict:
        worker.start()
        try:
            await asyncio.wait_for(asyncio.wrap_future(worker.started),
                                   timeout=self.spawn_deadline)
        except asyncio.TimeoutError:
            self._forget(worker.sid)
            worker.force_expire("spawn missed its deadline")
            raise GatewayError(ERR_SPAWN_FAILED,
                               "session %s spawn missed its %.1fs deadline"
                               % (worker.sid, self.spawn_deadline))
        except GatewayError:
            self._forget(worker.sid)
            raise
        self._update_gauges()
        out = worker.describe()
        out["token"] = self.tokens.get(worker.sid)
        return out

    def _forget(self, sid: str) -> None:
        with self._lock:
            self.sessions.pop(sid, None)
            self.tokens.pop(sid, None)

    def _authorized(self, sid: str, token: Optional[str]) -> SessionWorker:
        with self._lock:
            worker = self.sessions.get(sid)
            expected = self.tokens.get(sid)
        if worker is None:
            raise GatewayError(ERR_NO_SESSION, "no session %r" % sid)
        if not isinstance(token, str) or expected is None \
                or not hmac.compare_digest(token, expected):
            self.obs.metrics.inc("serve.rejects.auth")
            raise GatewayError(ERR_AUTH, "bad token for session %s" % sid)
        return worker

    def _mint_token(self) -> str:
        if self._token_rng is not None:
            return "%032x" % self._token_rng.getrandbits(128)
        return secrets.token_hex(16)

    def _compiled(self, arch: str, source: str, filename: str):
        """Compile-once cache: a fleet spawning the same workload pays
        for one compile, not one per session."""
        key = (arch, filename, source)
        with self._exe_lock:
            exe = self._exe_cache.get(key)
        if exe is not None:
            return exe
        from ..cc.driver import compile_and_link
        exe = compile_and_link({filename: source}, arch, debug=True)
        with self._exe_lock:
            self._exe_cache.setdefault(key, exe)
            self.obs.metrics.inc("serve.compiles")
            return self._exe_cache[key]

    def _tune_session(self, target, worker: SessionWorker) -> None:
        """Hosted sessions answer under deadlines, so the per-attempt
        timeout and retry budget are sized to the session's deadline
        instead of the interactive defaults; the jittered policy is
        seeded per-session so chaos runs replay."""
        session = target.session
        if session is None:
            return
        session.reply_timeout = max(0.2, worker.default_deadline / 4.0)
        session.policy = RetryPolicy(max_attempts=5, base_delay=0.01,
                                     max_delay=0.1,
                                     seed=int(worker.sid[1:], 10))

    def _update_gauges(self) -> None:
        with self._lock:
            workers = list(self.sessions.values())
        counts: Dict[str, int] = {}
        for worker in workers:
            counts[worker.state] = counts.get(worker.state, 0) + 1
        metrics = self.obs.metrics
        metrics.set_gauge("serve.sessions",
                          sum(counts.get(s, 0) for s in ACTIVE_STATES))
        for state in ("starting", "live", "core", "dead", "expired"):
            metrics.set_gauge("serve.sessions.%s" % state,
                              counts.get(state, 0))

    # -- the supervision loop ----------------------------------------------

    async def _supervise(self) -> None:
        """Watchdog + reaper: runs for the server's whole life."""
        loop = asyncio.get_event_loop()
        while True:
            await asyncio.sleep(self.reap_interval)
            with self._lock:
                workers = list(self.sessions.items())
            for sid, worker in workers:
                if worker.hung_for(self.hang_grace) > 0:
                    job = worker.busy_job
                    worker.force_expire(
                        "command %r hung past its deadline"
                        % (job.cmd if job else "?"))
                if worker.state in ("expired", "dead", "core", "live") \
                        and worker.idle_for() > worker.idle_ttl \
                        and worker.busy_job is None \
                        and worker.queue.qsize() == 0:
                    self._forget(sid)
                    self.obs.metrics.inc("serve.reaps")
                    self.obs.tracer.event("serve.session_reaped",
                                          session=sid, state=worker.state)
                    await loop.run_in_executor(
                        None, lambda w=worker: w.close("idle-reaped"))
            self._update_gauges()
