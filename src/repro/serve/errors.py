"""Typed errors for the session server.

Robustness is the headline of :mod:`repro.serve`, and the contract
that makes it testable is: **every request is answered, and every
failure is answered with a code** a client can switch on.  The chaos
suite asserts exactly this — no injected nub death, hang, or
corruption may ever turn into a silent disconnect or a raw traceback.

The command-layer codes (bad verb, dead target, post-mortem refusal)
live in :mod:`repro.ldb.api`; this module adds the *session* layer:
admission, authentication, deadlines, and lifecycle.  Both vocabularies
are documented in PROTOCOL.md Appendix A, and
``tools/check_protocol_doc.py`` keeps the doc and these definitions in
two-way sync.
"""

from __future__ import annotations

from typing import Optional

# -- session-layer error codes (PROTOCOL.md App. A) -----------------------

ERR_BAD_REQUEST = "ERR_BAD_REQUEST"            # unparseable JSON line
ERR_AUTH = "ERR_AUTH"                          # missing/wrong session token
ERR_NO_SESSION = "ERR_NO_SESSION"              # unknown session id
ERR_BUSY = "ERR_BUSY"                          # queue/admission rejected
ERR_DEADLINE = "ERR_DEADLINE"                  # command missed its deadline
ERR_SESSION_EXPIRED = "ERR_SESSION_EXPIRED"    # idle-reaped or force-killed
ERR_SPAWN_FAILED = "ERR_SPAWN_FAILED"          # compile/launch failed
ERR_SHUTTING_DOWN = "ERR_SHUTTING_DOWN"        # server is draining
ERR_TRIAGE = "ERR_TRIAGE"                      # batch triage could not run
ERR_INTERNAL = "ERR_INTERNAL"                  # anything unforeseen, typed


class GatewayError(Exception):
    """A session-layer failure with a wire-visible code.

    ``retryable`` marks errors a well-behaved client may retry with
    backoff (``ERR_BUSY``, ``ERR_DEADLINE``); the rest are final for
    this session or request.
    """

    def __init__(self, code: str, message: str, retryable: bool = False,
                 core_path: Optional[str] = None):
        super().__init__(message)
        self.code = code
        self.retryable = retryable
        self.core_path = core_path

    def to_dict(self) -> dict:
        out = {"code": self.code, "message": str(self)}
        if self.retryable:
            out["retryable"] = True
        if self.core_path:
            out["core_path"] = self.core_path
        return out
