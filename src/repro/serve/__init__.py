"""The supervised debug-session fleet (DESIGN.md Sec. 11).

A resilient multi-session server over the nub stack: an asyncio
:class:`~repro.serve.manager.SessionManager` hosts many concurrent
debug sessions — each a supervised
:class:`~repro.serve.session.SessionWorker` thread owning its own
debugger, target, and nub — behind the JSON-line TCP
:class:`~repro.serve.gateway.Gateway`.  Deadlines, bounded queues,
watchdog expiry, and degradation to core-backed read-only sessions
keep every request answered with a typed result, whatever the nubs do.
"""

from .errors import GatewayError
from .gateway import DebugServer, Gateway, GatewayClient, RemoteError
from .manager import SessionManager
from .session import SessionWorker

__all__ = [
    "DebugServer",
    "Gateway",
    "GatewayClient",
    "GatewayError",
    "RemoteError",
    "SessionManager",
    "SessionWorker",
]
