"""One hosted debug session, under supervision.

A :class:`SessionWorker` owns a whole debugger stack — an
:class:`~repro.ldb.debugger.Ldb`, its target, and the nub thread behind
it — and runs every command for it on one dedicated thread (the
PostScript interpreter and the blocking transport are single-threaded
by design, so the thread *is* the session).  Around that thread sits
the supervision machinery this package exists for:

* a **bounded command queue**: when ``queue_limit`` commands are
  already waiting, new ones are rejected immediately with ``ERR_BUSY``
  — backpressure over unbounded buffering, so one slow session cannot
  absorb the server's memory;
* **per-command deadlines**: a command that cannot finish inside its
  deadline resolves to ``ERR_DEADLINE``; commands that were queued
  behind it are aged against their own deadlines before they run;
* a **watchdog hook** (:meth:`hung_for`): the manager's supervision
  loop detects a command stuck past its deadline plus grace and calls
  :meth:`force_expire`, which severs the transport under the stuck
  call — converting a wedged nub into a typed answer instead of a
  wedged connection;
* **graceful degradation**: when the nub dies (injected kill, fatal
  target fault) the worker joins the nub thread, looks for the core it
  wrote on the way down, and — if one exists — reopens the session
  **read-only over the core**.  Inspection keeps working; mutation
  answers ``ERR_POST_MORTEM``.  Only when there is no core does the
  session become plain ``dead``.

The session state machine (DESIGN.md Sec. 11)::

    starting ──ok──> live ──nub died, core──> core ───┐
        │              │ └─nub died, no core─> dead ──┤
        │              └──idle / hung────────> expired┤
        └──spawn failed────────────────────────> dead ┤
                                                      └──close()──> closed
"""

from __future__ import annotations

import queue
import socket
import threading
import time
from concurrent.futures import Future
from typing import Callable, Optional, Tuple

from ..ldb.api import ApiError, DebugAPI, ERR_TARGET_DIED
from ..nub.session import DeadlineExceeded
from .errors import (
    ERR_BUSY,
    ERR_DEADLINE,
    ERR_SESSION_EXPIRED,
    ERR_SHUTTING_DOWN,
    ERR_SPAWN_FAILED,
    ERR_INTERNAL,
    GatewayError,
)

#: commands answered from session state alone — allowed in every
#: non-closed state, so a dying session stays observable to the end
ALWAYS_ALLOWED = frozenset(("ping", "status"))


class _Job:
    __slots__ = ("cmd", "args", "future", "deadline_abs", "deadline_s",
                 "submitted")

    def __init__(self, cmd: str, args: Optional[dict], deadline_s: float):
        self.cmd = cmd
        self.args = args
        self.deadline_s = deadline_s
        self.submitted = time.monotonic()
        self.deadline_abs = self.submitted + deadline_s
        self.future: Future = Future()


class SessionWorker:
    """A supervised, single-threaded hosted debug session."""

    def __init__(self, sid: str, factory: Callable[[], Tuple[object, object]],
                 *, queue_limit: int = 8, default_deadline: float = 5.0,
                 idle_ttl: float = 300.0, obs=None):
        if obs is None:
            from ..obs import Observability
            obs = Observability()
        self.obs = obs
        self.sid = sid
        #: builds (ldb, target) — runs ON the worker thread, because the
        #: debugger stack must live where its commands will run
        self.factory = factory
        self.queue_limit = queue_limit
        self.default_deadline = default_deadline
        self.idle_ttl = idle_ttl
        self.queue: "queue.Queue[_Job]" = queue.Queue(maxsize=queue_limit)
        self.state = "starting"
        self.state_reason = ""
        self.ldb = None
        self.target = None
        self.api: Optional[DebugAPI] = None
        #: resolved once the factory has run (or failed)
        self.started: Future = Future()
        self.last_activity = time.monotonic()
        #: set while a command is executing (watchdog input)
        self.busy_job: Optional[_Job] = None
        self.busy_since: Optional[float] = None
        self._lock = threading.Lock()
        self._closing = False
        self._force_expired = False
        self.commands_done = 0
        self.thread = threading.Thread(target=self._run, daemon=True,
                                       name="session-%s" % sid)

    def start(self) -> "SessionWorker":
        self.thread.start()
        return self

    # -- submission (any thread) -------------------------------------------

    def submit(self, cmd: str, args: Optional[dict] = None,
               deadline: Optional[float] = None) -> Future:
        """Enqueue one command; returns its future.  Rejections are
        immediate and typed — never a silent drop, never a block."""
        with self._lock:
            state = self.state
            if self._closing or state == "closed":
                raise GatewayError(ERR_SHUTTING_DOWN,
                                   "session %s is closed" % self.sid)
            if cmd not in ALWAYS_ALLOWED:
                if state == "expired":
                    raise GatewayError(
                        ERR_SESSION_EXPIRED, "session %s expired: %s"
                        % (self.sid, self.state_reason))
                if state == "dead":
                    raise GatewayError(
                        ERR_TARGET_DIED, "session %s is dead: %s"
                        % (self.sid, self.state_reason))
        job = _Job(cmd, args, self.default_deadline
                   if deadline is None else deadline)
        metrics = self.obs.metrics
        metrics.observe("serve.queue_depth", self.queue.qsize())
        try:
            self.queue.put_nowait(job)
        except queue.Full:
            metrics.inc("serve.rejects.busy")
            raise GatewayError(
                ERR_BUSY, "session %s has %d commands queued; retry later"
                % (self.sid, self.queue_limit), retryable=True)
        self.last_activity = time.monotonic()
        return job.future

    # -- supervision inputs (the manager's reaper thread/task) --------------

    def idle_for(self, now: Optional[float] = None) -> float:
        now = time.monotonic() if now is None else now
        return now - self.last_activity

    def hung_for(self, grace: float, now: Optional[float] = None) -> float:
        """Seconds the running command has been stuck *past* its
        deadline plus ``grace`` (<= 0: not hung)."""
        with self._lock:
            job = self.busy_job
            if job is None:
                return 0.0
            now = time.monotonic() if now is None else now
            return now - (job.deadline_abs + grace)

    def force_expire(self, reason: str) -> None:
        """The watchdog's hammer: sever the transport under whatever is
        stuck, so the blocking call unwinds with a channel error and
        the session flips to ``expired``.  Idempotent."""
        with self._lock:
            if self.state in ("expired", "dead", "closed"):
                return
            self._force_expired = True
            self.state = "expired"
            self.state_reason = reason
        self.obs.metrics.inc("serve.hangs")
        self.obs.tracer.warn("serve.session_hung", session=self.sid,
                             reason=reason)
        self._sever_transport()

    def drain_recording(self, deadline: float) -> Optional[Future]:
        """Shutdown is imminent: when this session is live with an
        active recording writer that knows its save path, submit one
        final partial-tolerant ``record_save`` so the accumulated
        trace outlives the server.  The save runs on the worker thread
        (the stack is single-threaded); the returned future resolves
        when it lands.  Answers ``None`` when there is nothing to
        drain — no writer, no path, or the session is past saving."""
        with self._lock:
            if self.state != "live" or self._closing:
                return None
        writer = getattr(self.target, "trace_writer", None)
        if writer is None or writer.path is None:
            return None
        try:
            return self.submit("record_save", {"partial": True},
                               deadline=deadline)
        except GatewayError:
            return None  # queue full or racing a close: nothing saved

    def close(self, reason: str = "server shutdown") -> None:
        """Tear the session down: drain the queue with typed answers,
        release the nub, join the threads."""
        with self._lock:
            if self.state == "closed":
                return
            self._closing = True
        self._drain_queue(GatewayError(ERR_SHUTTING_DOWN, reason))
        self._sever_transport()
        self.thread.join(5.0)
        self._drain_queue(GatewayError(ERR_SHUTTING_DOWN, reason))
        runner = getattr(self.target, "runner", None)
        if runner is not None:
            runner.join(2.0)
        with self._lock:
            self.state = "closed"
            self.state_reason = reason

    def describe(self) -> dict:
        """The session's JSON-able status row (no wire traffic)."""
        with self._lock:
            out = {
                "session": self.sid,
                "state": self.state,
                "reason": self.state_reason,
                "queued": self.queue.qsize(),
                "queue_limit": self.queue_limit,
                "busy": self.busy_job is not None,
                "idle_seconds": round(self.idle_for(), 3),
                "commands_done": self.commands_done,
            }
        target = self.target
        if target is not None:
            out["target"] = target.describe()
        return out

    # -- the worker thread --------------------------------------------------

    def _run(self) -> None:
        try:
            self.ldb, self.target = self.factory()
            self.api = DebugAPI(self.ldb)
        except Exception as err:
            with self._lock:
                self.state = "dead"
                self.state_reason = "spawn failed: %s" % err
            self.obs.metrics.inc("serve.spawn_failures")
            self.started.set_exception(
                GatewayError(ERR_SPAWN_FAILED, "spawn failed: %s" % err))
            return
        with self._lock:
            if self.state == "starting":
                self.state = "live"
        self.obs.metrics.inc("serve.spawns")
        self.started.set_result(self)
        while True:
            try:
                job = self.queue.get(timeout=0.05)
            except queue.Empty:
                if self._closing:
                    return
                continue
            if self._closing:
                job.future.set_exception(
                    GatewayError(ERR_SHUTTING_DOWN, "session closing"))
                return
            self._serve_job(job)

    def _serve_job(self, job: _Job) -> None:
        if not job.future.set_running_or_notify_cancel():
            return
        metrics = self.obs.metrics
        now = time.monotonic()
        remaining = job.deadline_abs - now
        if remaining <= 0:
            # it aged out while queued: answer without executing, so a
            # backlog burns down at queue speed, not at timeout speed
            metrics.inc("serve.deadline_misses")
            job.future.set_exception(GatewayError(
                ERR_DEADLINE, "command %r spent its %.3fs deadline queued"
                % (job.cmd, job.deadline_s), retryable=True))
            return
        with self._lock:
            self.busy_job = job
            self.busy_since = now
        # the deadline rides the session itself: every nub exchange the
        # command makes — fetches, controls, retries, reconnects — is
        # bounded by it, not just the event wait
        nub_session = getattr(self.target, "session", None)
        if nub_session is not None:
            nub_session.deadline_abs = job.deadline_abs
        try:
            result = self.api.execute(job.cmd, job.args, timeout=remaining)
            self._note_target_health(result)
            metrics.inc("serve.commands")
            metrics.observe("serve.cmd_latency_us",
                            int((time.monotonic() - now) * 1e6))
            job.future.set_result(result)
        except ApiError as err:
            if err.code == ERR_TARGET_DIED:
                self._degrade(str(err), err.core_path)
            if self._force_expired:
                job.future.set_exception(GatewayError(
                    ERR_SESSION_EXPIRED,
                    "session %s was force-expired: %s"
                    % (self.sid, self.state_reason)))
            else:
                job.future.set_exception(err)
        except (TimeoutError, DeadlineExceeded):
            metrics.inc("serve.deadline_misses")
            job.future.set_exception(GatewayError(
                ERR_DEADLINE, "command %r missed its %.3fs deadline"
                % (job.cmd, job.deadline_s), retryable=True))
        except Exception as err:
            if self._force_expired:
                job.future.set_exception(GatewayError(
                    ERR_SESSION_EXPIRED,
                    "session %s was force-expired: %s"
                    % (self.sid, self.state_reason)))
            else:
                # the contract: *typed*, whatever happened
                metrics.inc("serve.internal_errors")
                job.future.set_exception(GatewayError(
                    ERR_INTERNAL, "command %r failed: %s" % (job.cmd, err)))
        finally:
            if nub_session is not None:
                nub_session.deadline_abs = None
            with self._lock:
                self.busy_job = None
                self.busy_since = None
                self.commands_done += 1
            self.last_activity = time.monotonic()

    # -- death and degradation ----------------------------------------------

    def _note_target_health(self, result: dict) -> None:
        """A command can *succeed* and still report death (a ``continue``
        that returns a ``died``/``disconnect`` event): degrade then too."""
        event = result.get("event") if isinstance(result, dict) else None
        if event == "died":
            self._degrade(result.get("reason") or "target died",
                          result.get("core_path"))
        elif event == "disconnect":
            self._degrade("nub connection lost", None)

    def _degrade(self, reason: str, core_path: Optional[str]) -> None:
        """The nub is gone.  Join its thread (it may still be writing
        the core), then flip to read-only core mode when a core exists,
        plain ``dead`` otherwise."""
        with self._lock:
            if self.state in ("core", "dead", "expired", "closed"):
                return
        metrics = self.obs.metrics
        metrics.inc("serve.deaths")
        runner = getattr(self.target, "runner", None)
        if runner is not None:
            runner.join(2.0)  # let the dying nub finish its core write
        if core_path is None:
            core_path = getattr(self.target, "core_path", None)
        core_target = None
        if core_path is not None:
            try:
                core_target = self.ldb.open_core(core_path)
            except Exception:
                core_target = None  # unreadable/absent core: plain death
        with self._lock:
            if core_target is not None:
                self.state = "core"
                self.state_reason = ("target died (%s); serving its core "
                                     "read-only" % reason)
                self.target = core_target
            else:
                self.state = "dead"
                self.state_reason = reason
        if core_target is not None:
            metrics.inc("serve.degraded_to_core")
            self.obs.tracer.warn("serve.session_degraded", session=self.sid,
                                 core=core_path)
        else:
            self.obs.tracer.warn("serve.session_died", session=self.sid,
                                 reason=reason)

    # -- plumbing -----------------------------------------------------------

    def _sever_transport(self) -> None:
        target = self.target
        if target is None:
            return
        transport = getattr(target, "transport", None)
        # a plain close() does not wake a thread already blocked in
        # recv() on the same socket — shutdown() does, immediately
        sock = getattr(getattr(transport, "channel", None), "sock", None)
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass  # already half-dead: exactly what we wanted
        try:
            transport.close()
        except Exception:
            pass  # severing an already-dead transport is a no-op

    def _drain_queue(self, error: GatewayError) -> None:
        while True:
            try:
                job = self.queue.get_nowait()
            except queue.Empty:
                return
            if job.future.set_running_or_notify_cancel():
                job.future.set_exception(error)
