"""Simulated target processes and their little operating system.

A :class:`Process` owns the memory, CPU, and OS services (syscalls) of
one running target program.  Faults and exits surface as events; the nub
(:mod:`repro.nub`) wraps a process to catch faults the way the paper's
nub catches signals.

The syscall layer implements ``exit``, ``putchar``, and ``printf`` (the
paper's fib example prints with printf).  printf uses a packed varargs
block on the stack, so the OS can read integer, string, and double
arguments regardless of the target's register-argument convention.
"""

from __future__ import annotations

import io
import re
from typing import Optional, Union

from .cpu import Cpu, CpuSnapshot
from .engine import StopSpec
from .isa import (
    CODE_ICOUNT,
    Halt,
    IcountReached,
    SIGTRAP,
    SYS_EXIT,
    SYS_PRINTF,
    SYS_PUTCHAR,
    TargetFault,
)
from .loader import Executable, load
from .memory import MemorySnapshot, TargetMemory


class ExitEvent:
    """The target called exit()."""

    def __init__(self, status: int, icount: Optional[int] = None):
        self.status = status
        #: retired instructions when the event fired (None: unknown)
        self.icount = icount

    def __repr__(self) -> str:
        if self.icount is None:
            return "<exit %d>" % self.status
        return "<exit %d icount=%d>" % (self.status, self.icount)


class FaultEvent:
    """The target took a signal (trap, segv, fpe, ill)."""

    def __init__(self, signo: int, code: int, pc: int,
                 icount: Optional[int] = None):
        self.signo = signo
        self.code = code
        self.pc = pc
        #: retired instructions when the event fired (None: unknown)
        self.icount = icount

    def __repr__(self) -> str:
        if self.icount is None:
            return "<fault sig=%d code=%d pc=0x%x>" % (self.signo, self.code,
                                                       self.pc)
        return "<fault sig=%d code=%d pc=0x%x icount=%d>" % (
            self.signo, self.code, self.pc, self.icount)


class IcountStopEvent(FaultEvent):
    """Execution paused because a requested retired-instruction count
    was reached (the RUNTO stop).  A :class:`FaultEvent` subclass so the
    nub's stop handling treats it like any other stop; the distinctive
    ``CODE_ICOUNT`` code tells the debugger why execution paused."""

    def __init__(self, icount: int, pc: int):
        super().__init__(SIGTRAP, CODE_ICOUNT, pc, icount=icount)

    def __repr__(self) -> str:
        return "<icount-stop %d pc=0x%x>" % (self.icount, self.pc)


class ProcessSnapshot:
    """A checkpoint of one process: CPU registers, copy-on-write memory
    pages, exit state, and the output-stream position."""

    __slots__ = ("cpu", "mem", "exited", "out_pos")

    def __init__(self, cpu: CpuSnapshot, mem: MemorySnapshot,
                 exited: Optional[int], out_pos: Optional[int]):
        self.cpu = cpu
        self.mem = mem
        self.exited = exited
        self.out_pos = out_pos

    @property
    def icount(self) -> int:
        return self.cpu.icount


_FORMAT_RE = re.compile(r"%([-+ 0#]*)(\d*)(\.\d+)?([diuxXcsfeg%])")


class Process:
    """A loaded target program on a simulated CPU."""

    def __init__(self, exe: Executable, memsize: Optional[int] = None,
                 stdout: Optional[io.StringIO] = None, engine=None):
        self.exe = exe
        self.arch = exe.arch
        if memsize is None:
            # match the memory size the program was linked for
            memsize = exe.stack_top + 16
        self.mem = TargetMemory(memsize, byteorder=self.arch.byteorder)
        self.stdout = stdout if stdout is not None else io.StringIO()
        load(exe, self.mem)
        self.cpu = Cpu(self.arch, self.mem, syscall_handler=self._syscall,
                       engine=engine)
        self.cpu.pc = exe.entry
        self.cpu.set_reg(self.arch.sp, exe.stack_top)
        self.exited: Optional[int] = None

    # -- events ------------------------------------------------------------

    def run_until_event(self, *, max_steps: Optional[int] = None,
                        stop_at_icount: Optional[int] = None,
                        stop: Optional[StopSpec] = None,
                        ) -> Union[ExitEvent, FaultEvent]:
        """Run until the target exits, faults, or (with
        ``stop_at_icount``) retires the requested instruction count.

        Stop conditions are keyword-only and shared with
        :meth:`Cpu.run`: either ``max_steps``/``stop_at_icount`` or a
        prebuilt :class:`StopSpec` as ``stop``.
        """
        try:
            status = self.cpu.run(
                stop=StopSpec.coerce(stop, max_steps, stop_at_icount))
        except IcountReached as stop:
            return IcountStopEvent(stop.icount, stop.pc)
        except TargetFault as fault:
            return FaultEvent(fault.signo, fault.code, fault.address,
                              icount=self.cpu.icount)
        self.exited = status
        return ExitEvent(status, icount=self.cpu.icount)

    def output(self) -> str:
        return self.stdout.getvalue()

    # -- snapshot/restore --------------------------------------------------

    def snapshot(self) -> ProcessSnapshot:
        """Checkpoint the process: registers, COW memory pages, exit
        state, and how much output has been produced."""
        return ProcessSnapshot(self.cpu.snapshot(), self.mem.snapshot(),
                               self.exited, self._out_tell())

    def restore(self, snap: ProcessSnapshot) -> None:
        """Rewind the process to a snapshot; the snapshot stays valid
        (it can be restored again), and output written after the
        snapshot is truncated away when the stream allows it."""
        self.cpu.restore(snap.cpu)
        self.mem.restore(snap.mem)
        self.exited = snap.exited
        if snap.out_pos is not None:
            try:
                self.stdout.seek(snap.out_pos)
                self.stdout.truncate(snap.out_pos)
            except (AttributeError, OSError, io.UnsupportedOperation):
                pass  # a write-only stream: its past cannot be unprinted

    def release_snapshot(self, snap: ProcessSnapshot) -> None:
        """Drop a snapshot so its memory pages stop being COW-captured."""
        self.mem.release(snap.mem)

    def _out_tell(self) -> Optional[int]:
        try:
            return self.stdout.tell()
        except (AttributeError, OSError, io.UnsupportedOperation):
            return None

    # -- syscalls ------------------------------------------------------------

    def _syscall(self, cpu: Cpu, code: int) -> None:
        if code == SYS_EXIT:
            raise Halt(self._int_arg(cpu, 0))
        if code == SYS_PUTCHAR:
            self.stdout.write(chr(self._int_arg(cpu, 0) & 0xFF))
            return
        if code == SYS_PRINTF:
            self._printf(cpu)
            return
        raise TargetFault(4, code=code, address=cpu.pc)  # SIGILL: bad syscall

    def _int_arg(self, cpu: Cpu, index: int) -> int:
        """The index-th integer argument under the normal convention."""
        arch = self.arch
        if arch.arg_regs and index < len(arch.arg_regs):
            return cpu.get_reg(arch.arg_regs[index])
        base = cpu.get_reg(arch.sp) + (4 if arch.ra is None else 0)
        return self.mem.read_u32(base + 4 * index)

    def _varargs_base(self, cpu: Cpu) -> int:
        """Start of printf's packed argument block.

        The compiler passes *all* printf arguments in a packed block at
        the bottom of the caller's outgoing-argument area; on the CISC
        targets the return address sits below it.
        """
        sp = cpu.get_reg(self.arch.sp)
        return sp + (4 if self.arch.ra is None else 0)

    def _printf(self, cpu: Cpu) -> None:
        base = self._varargs_base(cpu)
        fmt_addr = self.mem.read_u32(base)
        fmt = self.mem.read_cstring(fmt_addr)
        offset = base + 4
        out = []
        pos = 0
        while pos < len(fmt):
            ch = fmt[pos]
            if ch != "%":
                out.append(ch)
                pos += 1
                continue
            match = _FORMAT_RE.match(fmt, pos)
            if not match:
                out.append(ch)
                pos += 1
                continue
            flags, width, precision, conv = match.groups()
            spec = "%" + flags + width + (precision or "")
            if conv == "%":
                out.append("%")
            elif conv in "di":
                out.append((spec + "d") % self.mem.read_i32(offset))
                offset += 4
            elif conv == "u":
                out.append((spec + "d") % self.mem.read_u32(offset))
                offset += 4
            elif conv in "xX":
                out.append((spec + conv) % self.mem.read_u32(offset))
                offset += 4
            elif conv == "c":
                out.append((spec + "c") % (self.mem.read_u32(offset) & 0xFF))
                offset += 4
            elif conv == "s":
                out.append((spec + "s") % self.mem.read_cstring(self.mem.read_u32(offset)))
                offset += 4
            else:  # f e g
                out.append((spec + conv) % self.mem.read_f64(offset))
                offset += 8
            pos = match.end()
        self.stdout.write("".join(out))
