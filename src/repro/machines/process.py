"""Simulated target processes and their little operating system.

A :class:`Process` owns the memory, CPU, and OS services (syscalls) of
one running target program.  Faults and exits surface as events; the nub
(:mod:`repro.nub`) wraps a process to catch faults the way the paper's
nub catches signals.

The syscall layer implements ``exit``, ``putchar``, and ``printf`` (the
paper's fib example prints with printf).  printf uses a packed varargs
block on the stack, so the OS can read integer, string, and double
arguments regardless of the target's register-argument convention.
"""

from __future__ import annotations

import io
import re
from typing import Optional, Union

from .cpu import Cpu
from .isa import Halt, SYS_EXIT, SYS_PRINTF, SYS_PUTCHAR, TargetFault
from .loader import Executable, load
from .memory import TargetMemory


class ExitEvent:
    """The target called exit()."""

    def __init__(self, status: int):
        self.status = status

    def __repr__(self) -> str:
        return "<exit %d>" % self.status


class FaultEvent:
    """The target took a signal (trap, segv, fpe, ill)."""

    def __init__(self, signo: int, code: int, pc: int):
        self.signo = signo
        self.code = code
        self.pc = pc

    def __repr__(self) -> str:
        return "<fault sig=%d code=%d pc=0x%x>" % (self.signo, self.code, self.pc)


_FORMAT_RE = re.compile(r"%([-+ 0#]*)(\d*)(\.\d+)?([diuxXcsfeg%])")


class Process:
    """A loaded target program on a simulated CPU."""

    def __init__(self, exe: Executable, memsize: Optional[int] = None,
                 stdout: Optional[io.StringIO] = None):
        self.exe = exe
        self.arch = exe.arch
        if memsize is None:
            # match the memory size the program was linked for
            memsize = exe.stack_top + 16
        self.mem = TargetMemory(memsize, byteorder=self.arch.byteorder)
        self.stdout = stdout if stdout is not None else io.StringIO()
        load(exe, self.mem)
        self.cpu = Cpu(self.arch, self.mem, syscall_handler=self._syscall)
        self.cpu.pc = exe.entry
        self.cpu.set_reg(self.arch.sp, exe.stack_top)
        self.exited: Optional[int] = None

    # -- events ------------------------------------------------------------

    def run_until_event(self, max_steps: int = 50_000_000) -> Union[ExitEvent, FaultEvent]:
        """Run until the target exits or faults."""
        try:
            status = self.cpu.run(max_steps)
        except TargetFault as fault:
            return FaultEvent(fault.signo, fault.code, fault.address)
        self.exited = status
        return ExitEvent(status)

    def output(self) -> str:
        return self.stdout.getvalue()

    # -- syscalls ------------------------------------------------------------

    def _syscall(self, cpu: Cpu, code: int) -> None:
        if code == SYS_EXIT:
            raise Halt(self._int_arg(cpu, 0))
        if code == SYS_PUTCHAR:
            self.stdout.write(chr(self._int_arg(cpu, 0) & 0xFF))
            return
        if code == SYS_PRINTF:
            self._printf(cpu)
            return
        raise TargetFault(4, code=code, address=cpu.pc)  # SIGILL: bad syscall

    def _int_arg(self, cpu: Cpu, index: int) -> int:
        """The index-th integer argument under the normal convention."""
        arch = self.arch
        if arch.arg_regs and index < len(arch.arg_regs):
            return cpu.get_reg(arch.arg_regs[index])
        base = cpu.get_reg(arch.sp) + (4 if arch.ra is None else 0)
        return self.mem.read_u32(base + 4 * index)

    def _varargs_base(self, cpu: Cpu) -> int:
        """Start of printf's packed argument block.

        The compiler passes *all* printf arguments in a packed block at
        the bottom of the caller's outgoing-argument area; on the CISC
        targets the return address sits below it.
        """
        sp = cpu.get_reg(self.arch.sp)
        return sp + (4 if self.arch.ra is None else 0)

    def _printf(self, cpu: Cpu) -> None:
        base = self._varargs_base(cpu)
        fmt_addr = self.mem.read_u32(base)
        fmt = self.mem.read_cstring(fmt_addr)
        offset = base + 4
        out = []
        pos = 0
        while pos < len(fmt):
            ch = fmt[pos]
            if ch != "%":
                out.append(ch)
                pos += 1
                continue
            match = _FORMAT_RE.match(fmt, pos)
            if not match:
                out.append(ch)
                pos += 1
                continue
            flags, width, precision, conv = match.groups()
            spec = "%" + flags + width + (precision or "")
            if conv == "%":
                out.append("%")
            elif conv in "di":
                out.append((spec + "d") % self.mem.read_i32(offset))
                offset += 4
            elif conv == "u":
                out.append((spec + "d") % self.mem.read_u32(offset))
                offset += 4
            elif conv in "xX":
                out.append((spec + conv) % self.mem.read_u32(offset))
                offset += 4
            elif conv == "c":
                out.append((spec + "c") % (self.mem.read_u32(offset) & 0xFF))
                offset += 4
            elif conv == "s":
                out.append((spec + "s") % self.mem.read_cstring(self.mem.read_u32(offset)))
                offset += 4
            else:  # f e g
                out.append((spec + conv) % self.mem.read_f64(offset))
                offset += 8
            pos = match.end()
        self.stdout.write("".join(out))
