"""Byte-addressable target memory with typed, endian-aware access.

Every simulated target owns one flat :class:`TargetMemory`; the code and
data spaces refer to the same locations on all four targets (the paper
permits either, Sec. 4.1).  Accesses outside the configured size raise
:class:`MemoryFault`, which the CPU converts into a SIGSEGV-analog that
the nub catches.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Union

from . import float80


class MemoryFault(Exception):
    """An access outside the target's memory (the SIGSEGV analog)."""

    def __init__(self, address: int, size: int = 1):
        self.address = address
        self.size = size
        super().__init__("bad address 0x%x (size %d)" % (address, size))


#: copy-on-write granularity for memory snapshots
PAGE = 4096
_PAGE_SHIFT = 12


class MemorySnapshot:
    """A copy-on-write snapshot of a :class:`TargetMemory`.

    Taking one copies nothing; the memory captures a page into every
    live snapshot that has not seen it yet on the *first write* after
    the snapshot was taken.  ``pages`` therefore holds exactly the pages
    that changed since the snapshot — restoring writes them back, which
    in turn COW-captures the pre-restore content into other live
    snapshots, so snapshots can be taken and restored in any order.
    """

    __slots__ = ("pages",)

    def __init__(self):
        self.pages: Dict[int, bytes] = {}

    def cost_pages(self) -> int:
        """How many pages this snapshot has had to copy so far."""
        return len(self.pages)


class TargetMemory:
    """A flat byte-addressable memory of a simulated target.

    ``byteorder`` is ``"big"`` or ``"little"`` and governs every
    multi-byte access — this is where target byte order lives, and the
    nub (not the debugger) is the only debug component that reads memory
    through it, matching the paper's division of labor (Sec. 4.1).
    """

    def __init__(self, size: int = 1 << 20, byteorder: str = "little"):
        if byteorder not in ("big", "little"):
            raise ValueError("byteorder must be 'big' or 'little'")
        self.size = size
        self.byteorder = byteorder
        self.bytes = bytearray(size)
        #: live snapshots still owed copy-on-write page captures
        self._snapshots: List[MemorySnapshot] = []
        #: write observers ``hook(address, size)``, called after every
        #: mutation (typed writes, raw writes, and snapshot restores).
        #: The block-dispatching execution engine registers one to
        #: invalidate decoded code on writes into it.
        self._write_hooks: List = []

    # -- write observation -------------------------------------------------

    def add_write_hook(self, hook) -> None:
        """Register ``hook(address, size)``, called after every write.

        Every mutation path notifies — :meth:`write_bytes`,
        :meth:`write_int` (and everything layered on them), and
        :meth:`restore` — so an observer sees all content changes,
        including checkpoint rewinds."""
        self._write_hooks.append(hook)

    def remove_write_hook(self, hook) -> None:
        try:
            self._write_hooks.remove(hook)
        except ValueError:
            pass  # removed twice, or never added

    def _check(self, address: int, size: int) -> None:
        if address < 0 or address + size > self.size:
            raise MemoryFault(address, size)

    # -- snapshot/restore (copy-on-write pages) ---------------------------

    def snapshot(self) -> MemorySnapshot:
        """Take a snapshot without copying anything; pages are captured
        lazily by the write paths (copy-on-write)."""
        snap = MemorySnapshot()
        self._snapshots.append(snap)
        return snap

    def restore(self, snap: MemorySnapshot) -> None:
        """Rewind memory to the snapshot's state.

        Only the captured (i.e. since-modified) pages are written; the
        writes COW-capture pre-restore content into *other* live
        snapshots, and the snapshot stays valid for further restores.
        """
        if snap not in self._snapshots:
            raise ValueError("snapshot was released or belongs elsewhere")
        for page, raw in snap.pages.items():
            start = page << _PAGE_SHIFT
            self._capture(start, len(raw))
            self.bytes[start:start + len(raw)] = raw
            if self._write_hooks:
                for hook in self._write_hooks:
                    hook(start, len(raw))

    def release(self, snap: MemorySnapshot) -> None:
        """Forget a snapshot: its pages stop being COW-captured."""
        try:
            self._snapshots.remove(snap)
        except ValueError:
            pass  # released twice, or never taken here

    def _capture(self, address: int, size: int) -> None:
        """Before mutating ``[address, address+size)``: save the pages'
        current content into every live snapshot that lacks them."""
        first = address >> _PAGE_SHIFT
        last = (address + size - 1) >> _PAGE_SHIFT
        for page in range(first, last + 1):
            start = page << _PAGE_SHIFT
            raw = None
            for snap in self._snapshots:
                if page not in snap.pages:
                    if raw is None:
                        raw = bytes(self.bytes[start:start + PAGE])
                    snap.pages[page] = raw

    # -- raw bytes -------------------------------------------------------

    def read_bytes(self, address: int, size: int) -> bytes:
        self._check(address, size)
        return bytes(self.bytes[address : address + size])

    def write_bytes(self, address: int, data: bytes) -> None:
        self._check(address, len(data))
        if self._snapshots and data:
            self._capture(address, len(data))
        self.bytes[address : address + len(data)] = data
        if self._write_hooks and data:
            for hook in self._write_hooks:
                hook(address, len(data))

    # -- integers --------------------------------------------------------

    def read_uint(self, address: int, size: int) -> int:
        self._check(address, size)
        return int.from_bytes(self.bytes[address : address + size], self.byteorder)

    def read_int(self, address: int, size: int) -> int:
        value = self.read_uint(address, size)
        half = 1 << (size * 8 - 1)
        return value - (half << 1) if value >= half else value

    def write_int(self, address: int, size: int, value: int) -> None:
        self._check(address, size)
        if self._snapshots:
            self._capture(address, size)
        value &= (1 << (size * 8)) - 1
        self.bytes[address : address + size] = value.to_bytes(size, self.byteorder)
        if self._write_hooks:
            for hook in self._write_hooks:
                hook(address, size)

    def read_u8(self, address: int) -> int:
        return self.read_uint(address, 1)

    def read_u16(self, address: int) -> int:
        return self.read_uint(address, 2)

    def read_u32(self, address: int) -> int:
        return self.read_uint(address, 4)

    def read_i8(self, address: int) -> int:
        return self.read_int(address, 1)

    def read_i16(self, address: int) -> int:
        return self.read_int(address, 2)

    def read_i32(self, address: int) -> int:
        return self.read_int(address, 4)

    def write_u8(self, address: int, value: int) -> None:
        self.write_int(address, 1, value)

    def write_u16(self, address: int, value: int) -> None:
        self.write_int(address, 2, value)

    def write_u32(self, address: int, value: int) -> None:
        self.write_int(address, 4, value)

    # -- floats ----------------------------------------------------------

    def read_f32(self, address: int) -> float:
        raw = self.read_bytes(address, 4)
        fmt = ">f" if self.byteorder == "big" else "<f"
        return struct.unpack(fmt, raw)[0]

    def write_f32(self, address: int, value: float) -> None:
        fmt = ">f" if self.byteorder == "big" else "<f"
        self.write_bytes(address, struct.pack(fmt, value))

    def read_f64(self, address: int) -> float:
        raw = self.read_bytes(address, 8)
        fmt = ">d" if self.byteorder == "big" else "<d"
        return struct.unpack(fmt, raw)[0]

    def write_f64(self, address: int, value: float) -> None:
        fmt = ">d" if self.byteorder == "big" else "<d"
        self.write_bytes(address, struct.pack(fmt, value))

    def read_f80(self, address: int) -> float:
        raw = self.read_bytes(address, float80.SIZE)
        if self.byteorder == "big":
            return float80.decode_be(raw)
        return float80.decode(raw)

    def write_f80(self, address: int, value: float) -> None:
        raw = float80.encode_be(value) if self.byteorder == "big" else float80.encode(value)
        self.write_bytes(address, raw)

    # -- strings ---------------------------------------------------------

    def read_cstring(self, address: int, limit: int = 1 << 16) -> str:
        """Read a NUL-terminated latin-1 string (used by the syscall layer)."""
        chars = []
        for i in range(limit):
            byte = self.read_u8(address + i)
            if byte == 0:
                break
            chars.append(chr(byte))
        return "".join(chars)

    def write_cstring(self, address: int, text: str) -> None:
        self.write_bytes(address, text.encode("latin-1") + b"\0")

    # -- kinds (abstract-memory vocabulary) -------------------------------

    def read_kind(self, address: int, kind: str) -> Union[int, float]:
        """Read by abstract-memory kind name (i8/i16/i32/f32/f64/f80)."""
        if kind == "i8":
            return self.read_i8(address)
        if kind == "i16":
            return self.read_i16(address)
        if kind == "i32":
            return self.read_i32(address)
        if kind == "f32":
            return self.read_f32(address)
        if kind == "f64":
            return self.read_f64(address)
        if kind == "f80":
            return self.read_f80(address)
        raise ValueError("unknown kind %r" % kind)

    def write_kind(self, address: int, kind: str, value: Union[int, float]) -> None:
        if kind == "i8":
            self.write_int(address, 1, int(value))
        elif kind == "i16":
            self.write_int(address, 2, int(value))
        elif kind == "i32":
            self.write_int(address, 4, int(value))
        elif kind == "f32":
            self.write_f32(address, float(value))
        elif kind == "f64":
            self.write_f64(address, float(value))
        elif kind == "f80":
            self.write_f80(address, float(value))
        else:
            raise ValueError("unknown kind %r" % kind)
