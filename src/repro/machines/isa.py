"""Architecture descriptions: the seam between shared and MD machine code.

Each simulated target is described by an :class:`Arch` subclass supplying
encode/decode/execute for its instruction set plus the machine-dependent
*data* the debugger needs (paper Sec. 3, 4.3):

* the bit patterns used for ``break`` and no-op instructions,
* the type (granularity) used to fetch and store instructions,
* the amount to advance the program counter after "interpreting" a no-op,
* the layout of a saved context,
* register names, special register indices, and byte order.

The four targets keep the idiosyncrasies that drive the paper's
machine-dependent code sizes: rmips has no frame pointer and exposes a
runtime procedure table; rm68k has variable-length instructions and
80-bit floats; rvax is little-endian with byte-granular instructions;
rsparc's context is entirely provided by the "operating system" (the
simulator), leaving almost nothing for its nub to do.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

# Signal numbers (UNIX-flavored).
SIGILL = 4
SIGTRAP = 5
SIGFPE = 8
SIGBUS = 10
SIGSEGV = 11

#: Syscall codes serviced by the simulated OS (see machines.process).
SYS_EXIT = 1
SYS_PUTCHAR = 2
SYS_PRINTF = 3

#: Runaway guard shared by :meth:`Cpu.run` and
#: :meth:`Process.run_until_event` (one named constant, one policy).
DEFAULT_MAX_STEPS = 50_000_000

#: The SIGTRAP ``code`` a nub reports when execution stopped because a
#: requested retired-instruction count was reached (RUNTO), not because
#: the target trapped.  Distinct from breakpoint trap codes, which come
#: from the trap instruction's immediate (small integers).
CODE_ICOUNT = 0x1C0


class TargetFault(Exception):
    """A fault in the target: the signal the nub's handler catches."""

    def __init__(self, signo: int, code: int = 0, address: int = 0):
        self.signo = signo
        self.code = code
        self.address = address
        super().__init__("signal %d (code %d) at 0x%x" % (signo, code, address))


class Halt(Exception):
    """The target called exit()."""

    def __init__(self, status: int):
        self.status = status
        super().__init__("exit(%d)" % status)


class IcountReached(Exception):
    """Execution reached a requested retired-instruction count.

    Raised by :meth:`Cpu.run` *before* executing the instruction that
    would be number ``icount + 1`` — the stop lands between
    instructions, which is what makes ``RUNTO`` replays deterministic.
    """

    def __init__(self, icount: int, pc: int):
        self.icount = icount
        self.pc = pc
        super().__init__("icount %d reached at pc=0x%x" % (icount, pc))


class Insn:
    """One assembler-level instruction.

    ``imm`` and ``target`` may hold symbolic operands — a symbol name, or
    a ``("hi", name)`` / ``("lo", name)`` half — until the linker resolves
    them; :meth:`Arch.encode` requires integers.
    """

    __slots__ = ("op", "rd", "rs", "rt", "imm", "target", "size", "comment")

    def __init__(self, op: str, rd: Optional[int] = None, rs: Optional[int] = None,
                 rt: Optional[int] = None, imm=None, target=None, comment: str = ""):
        self.op = op
        self.rd = rd
        self.rs = rs
        self.rt = rt
        self.imm = imm
        self.target = target
        self.size = 0  # filled by encode/decode
        self.comment = comment

    def __repr__(self) -> str:
        parts = [self.op]
        for field in ("rd", "rs", "rt"):
            value = getattr(self, field)
            if value is not None:
                parts.append("%s=%s" % (field, value))
        if self.imm is not None:
            parts.append("imm=%s" % (self.imm,))
        if self.target is not None:
            parts.append("target=%s" % (self.target,))
        return "<%s>" % " ".join(str(p) for p in parts)


class Label:
    """A position in an instruction stream; resolved at assembly time.

    ``stop_index`` marks compiler stopping points (paper Sec. 3: "lcc
    already places labels at stopping points").
    """

    __slots__ = ("name", "stop_index", "is_block_leader")

    def __init__(self, name: str, stop_index: Optional[int] = None,
                 is_block_leader: bool = False):
        self.name = name
        self.stop_index = stop_index
        self.is_block_leader = is_block_leader

    def __repr__(self) -> str:
        suffix = " (stop %d)" % self.stop_index if self.stop_index is not None else ""
        return "<label %s%s>" % (self.name, suffix)


class ContextField:
    """One field of a saved-signal context (machine-dependent data)."""

    __slots__ = ("name", "offset", "size", "kind")

    def __init__(self, name: str, offset: int, size: int, kind: str):
        self.name = name
        self.offset = offset
        self.size = size
        self.kind = kind  # "pc", "reg", "freg", "flags"


class Arch:
    """Base class for architecture descriptions."""

    name = "abstract"
    byteorder = "little"
    insn_align = 4  # instruction granularity in bytes
    word = 4
    nregs = 32
    nfregs = 16
    reg_names: Sequence[str] = ()
    sp: int = 0
    fp: Optional[int] = None  # None: no frame pointer (the rmips case)
    ra: Optional[int] = None  # None: return address lives on the stack
    arg_regs: Sequence[int] = ()
    ret_reg: int = 0
    has_runtime_proc_table = False
    #: True when register 0 is hardwired to zero (rmips, rsparc).
    zero_reg = False
    #: True when loads commit one instruction late (the rmips load
    #: delay slot).  Engines skip the pending-load bookkeeping on
    #: targets that never use it.
    has_load_delay = False
    #: 80-bit floats exist only where the hardware has them.
    has_f80 = False
    #: Spaces in this target's abstract memory (paper Sec. 4.1).
    spaces = "cdrfx"

    # -- machine-dependent data for the interim breakpoint scheme --------
    nop_bytes = b""
    break_bytes = b""

    @property
    def noop_advance(self) -> int:
        """PC advance that "interprets" a no-op out of line (Sec. 3)."""
        return len(self.nop_bytes)

    # -- context ---------------------------------------------------------

    def context_fields(self) -> List[ContextField]:
        """Layout of a saved context in target memory.

        The debugger's code that fetches and stores fields of a context is
        machine-independent but parameterized by this description
        (paper Sec. 4.3).
        """
        fields = [ContextField("pc", 0, 4, "pc")]
        offset = 4
        for i in range(self.nregs):
            fields.append(ContextField("r%d" % i, offset, 4, "reg"))
            offset += 4
        fsize = 10 if self.has_f80 else 8
        for i in range(self.nfregs):
            fields.append(ContextField("f%d" % i, offset, fsize, "freg"))
            offset += fsize
        fields.append(ContextField("flags", offset, 4, "flags"))
        return fields

    def context_size(self) -> int:
        fields = self.context_fields()
        last = fields[-1]
        return last.offset + last.size

    # -- code ------------------------------------------------------------

    def encode(self, insn: Insn) -> bytes:
        raise NotImplementedError

    def decode(self, mem, address: int) -> Insn:
        raise NotImplementedError

    def execute(self, cpu, insn: Insn) -> None:
        raise NotImplementedError

    def insn_length(self, insn: Insn) -> int:
        """Encoded length in bytes (before encoding, for layout)."""
        raise NotImplementedError

    # -- block dispatch (machine-dependent data for the execution engine)

    #: Opcodes that end a decoded basic block: control transfers,
    #: traps, and syscalls — anything that may set the pc to something
    #: other than the next sequential instruction, or hand control to
    #: code outside the simulated ISA.  ``None`` (the conservative
    #: default for an arch that supplies no classification) makes
    #: *every* instruction a block of one, which is step-equivalent.
    block_enders: Optional[frozenset] = None

    #: Opcodes whose execution may write target memory.  ``None`` (the
    #: conservative default) means *any* instruction may write.  The
    #: block engine only re-checks its code-cache generation after
    #: instructions that can write, so this set must be sound: listing
    #: too many ops costs a cheap check, missing one breaks
    #: self-modifying-code invalidation.
    mem_write_ops: Optional[frozenset] = None

    def is_block_end(self, insn: Insn) -> bool:
        enders = self.block_enders
        return True if enders is None else insn.op in enders

    def may_write_mem(self, insn: Insn) -> bool:
        ops = self.mem_write_ops
        return True if ops is None else insn.op in ops

    def compile_insn(self, insn: Insn, pc: int):
        """Return a prebuilt fast-path body ``f(cpu) -> None`` for this
        instruction at this pc, or None to fall back to
        :meth:`execute`.

        The contract is byte-identical equivalence with
        ``execute(cpu, insn)`` for an instruction decoded at ``pc``:
        the same register writes (including ``set_reg``'s masking,
        zero-register suppression, and ``_wrote_reg`` tracking for the
        delay-slot commit), the same memory and condition-code effects
        in the same order, the same faults with the same addresses —
        and it must leave ``cpu.pc`` at the next instruction exactly as
        execute would.  The engine supplies the step prologue/epilogue
        (pending-load commit, icount); bodies never touch those.
        """
        return None

    # -- conventions ------------------------------------------------------

    def loads(self) -> Sequence[str]:
        """Opcodes with a load delay slot (empty except rmips)."""
        return ()

    def __repr__(self) -> str:
        return "<arch %s>" % self.name


def to_u32(value: int) -> int:
    return value & 0xFFFFFFFF


def to_i32(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - (1 << 32) if value >= 1 << 31 else value


def to_i16(value: int) -> int:
    value &= 0xFFFF
    return value - (1 << 16) if value >= 1 << 15 else value


def to_i8(value: int) -> int:
    value &= 0xFF
    return value - (1 << 8) if value >= 1 << 7 else value
