"""Shared container plumbing for on-disk machine-state formats.

Both the core-file format (:mod:`repro.machines.core`) and the recording
format (:mod:`repro.trace.format`) store a compact binary body wrapped in
the same armor: a magic tag, a little-endian version header, zlib
compression, and a CRC32 over the compressed payload so truncation and
bit rot are caught before a struct error can escape.  This module is
that armor, factored out once so the two formats cannot drift.

Two framings live here:

* **containers** (:func:`pack_container`/:func:`unpack_container`): one
  magic-tagged, versioned, compressed, checksummed body — the whole of a
  core file, and each spilled machine state;
* **blocks** (:func:`pack_block`/:func:`unpack_block`): a tagged record
  inside a larger stream — the recording file is a magic header followed
  by a sequence of blocks, each independently compressed and
  checksummed so one flipped bit names the damaged block.

Every error raises the *caller's* exception class with the caller's
noun (``core``, ``trace``...), so ``CoreError`` messages are unchanged
from when this code lived in ``core.py`` — and core bytes are
byte-identical: same zlib level, same header layout, same CRC.
"""

from __future__ import annotations

import struct
import zlib
from typing import List, Tuple, Type

#: granularity of the sparse scan: a run of memory is kept when any of
#: its bytes is non-zero; adjacent kept runs merge into one segment
_CHUNK = 256

#: zlib level shared by every container/block (part of the format: core
#: bytes must stay stable across refactors)
_ZLIB_LEVEL = 6

#: container framing after the 4-byte magic: version u16, flags u16,
#: compressed length u32, then CRC32 u32 of the compressed body
_CONTAINER_HEAD = struct.Struct("<HHI")
_CRC = struct.Struct("<I")

#: block framing: kind u8, compressed length u32, CRC32 u32
_BLOCK_HEAD = struct.Struct("<BII")


def sparse_segments(image: bytes, chunk: int = _CHUNK,
                    ) -> List[Tuple[int, bytes]]:
    """The non-zero runs of ``image``, chunk-aligned and merged."""
    segments: List[Tuple[int, bytes]] = []
    run_start = None
    view = memoryview(image)
    for start in range(0, len(image), chunk):
        chunk_live = view[start:start + chunk].tobytes().strip(b"\0")
        if chunk_live:
            if run_start is None:
                run_start = start
        elif run_start is not None:
            segments.append((run_start, bytes(view[run_start:start])))
            run_start = None
    if run_start is not None:
        segments.append((run_start, bytes(view[run_start:])))
    return segments


def pack_container(magic: bytes, version: int, body: bytes) -> bytes:
    """Wrap ``body`` in the magic/version/CRC/zlib container."""
    packed = zlib.compress(bytes(body), _ZLIB_LEVEL)
    header = magic + _CONTAINER_HEAD.pack(version, 0, len(packed))
    return header + _CRC.pack(zlib.crc32(packed) & 0xFFFFFFFF) + packed


def unpack_container(raw: bytes, magic: bytes, max_version: int,
                     error: Type[Exception], what: str) -> bytes:
    """Check and unwrap a container, answering the decompressed body.

    Raises ``error`` (with ``what`` naming the format in the message)
    for bad magic, future versions, truncation, CRC mismatch, and
    undecompressable bodies — never a bare struct/zlib error.
    """
    if raw[:len(magic)] != magic:
        raise error("not a %s file (bad magic)" % what)
    if len(raw) < len(magic) + 12:
        # right magic, no room for the header: a file cut mid-write,
        # not an alien one — say so (triage rows depend on the nuance)
        raise error("truncated %s: header cut short (%d bytes)"
                    % (what, len(raw)))
    base = len(magic)
    version, _flags, length = _CONTAINER_HEAD.unpack_from(raw, base)
    if version > max_version:
        raise error("%s format version %d is newer than this "
                    "debugger understands (max %d)"
                    % (what, version, max_version))
    (declared_crc,) = _CRC.unpack_from(raw, base + 8)
    packed = raw[base + 12:base + 12 + length]
    if len(packed) != length:
        raise error("truncated %s: %d of %d body bytes"
                    % (what, len(packed), length))
    if zlib.crc32(packed) & 0xFFFFFFFF != declared_crc:
        raise error("%s body fails its CRC check (corrupt file)" % what)
    try:
        return zlib.decompress(packed)
    except zlib.error as exc:
        raise error("%s body does not decompress: %s" % (what, exc))


def salvage_container(raw: bytes, magic: bytes, max_version: int,
                      error: Type[Exception], what: str) -> bytes:
    """Best-effort unwrap of a *damaged* container: the longest body
    prefix the surviving bytes still decompress to.

    Magic and version are still enforced (an alien or future-format
    file is not salvageable, it is simply not ours); the CRC and the
    declared length are not — truncation and tail rot are exactly what
    salvage exists for.  Raises ``error`` when nothing decompresses at
    all; the caller decides whether the recovered prefix parses into
    enough of an artifact to serve."""
    if raw[:len(magic)] != magic:
        raise error("not a %s file (bad magic)" % what)
    if len(raw) < len(magic) + 4:
        raise error("truncated %s: header cut short (%d bytes)"
                    % (what, len(raw)))
    base = len(magic)
    version, _flags = struct.unpack_from("<HH", raw, base)
    if version > max_version:
        raise error("%s format version %d is newer than this "
                    "debugger understands (max %d)"
                    % (what, version, max_version))
    packed = raw[base + 12:]
    # feed the stream in small pieces so everything decoded *before*
    # the damage survives the zlib error the damage raises
    decompressor = zlib.decompressobj()
    body = bytearray()
    try:
        for start in range(0, len(packed), 512):
            body += decompressor.decompress(packed[start:start + 512])
        body += decompressor.flush()
    except zlib.error:
        pass  # truncation/rot: keep the prefix already decoded
    if not body:
        raise error("%s body yields nothing salvageable" % what)
    return bytes(body)


def pack_block(kind: int, body: bytes) -> bytes:
    """Frame one tagged record of a block stream."""
    packed = zlib.compress(bytes(body), _ZLIB_LEVEL)
    return _BLOCK_HEAD.pack(kind, len(packed),
                            zlib.crc32(packed) & 0xFFFFFFFF) + packed


def unpack_block(raw: bytes, offset: int, error: Type[Exception],
                 what: str) -> Tuple[int, bytes, int]:
    """Read the block at ``offset``; answer (kind, body, next offset).

    Raises ``error`` for truncated headers/bodies, CRC mismatches, and
    undecompressable payloads.
    """
    if offset + _BLOCK_HEAD.size > len(raw):
        raise error("truncated %s: block header cut short at offset %d"
                    % (what, offset))
    kind, length, declared_crc = _BLOCK_HEAD.unpack_from(raw, offset)
    start = offset + _BLOCK_HEAD.size
    packed = raw[start:start + length]
    if len(packed) != length:
        raise error("truncated %s: %d of %d block bytes at offset %d"
                    % (what, len(packed), length, offset))
    if zlib.crc32(packed) & 0xFFFFFFFF != declared_crc:
        raise error("%s block at offset %d fails its CRC check "
                    "(corrupt file)" % (what, offset))
    try:
        body = zlib.decompress(packed)
    except zlib.error as exc:
        raise error("%s block at offset %d does not decompress: %s"
                    % (what, offset, exc))
    return kind, body, start + length
