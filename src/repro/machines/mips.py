"""The rmips target: the MIPS R3000 analog.

Properties that matter to the debugger (and mirror the paper's MIPS):

* fixed 32-bit instructions, big-endian by default (a little-endian
  variant exists so the register memory's byte-order independence can be
  exercised — the paper debugs both MIPS byte orders with the same code);
* **no frame pointer** — lcc addresses locals off a *virtual frame
  pointer* (vfp = sp + frame size), and the debugger must learn frame
  sizes from the runtime procedure table (paper Sec. 4.1, 4.3);
* a load delay slot: an integer load's result is unavailable to the next
  instruction, so the assembler must schedule or pad (Sec. 3).

Instruction formats::

    I-type:  op(6) rd(5) rs(5) imm(16)
    R-type:  op(6) rd(5) rs(5) rt(5) zero(11)
    J-type:  op(6) target(26)          # absolute word address
"""

from __future__ import annotations

import math

from .isa import (
    Arch,
    Insn,
    SIGFPE,
    SIGILL,
    SIGTRAP,
    TargetFault,
    to_i16,
    to_i32,
    to_u32,
)

# Opcode assignments.  I/R/J below indicates the format.
_OPS = {
    "nop": 0,      # R (the all-zero word)
    "break": 1,    # I (code in imm)
    "syscall": 2,  # I (code in imm)
    "lui": 3,      # I
    "ori": 4,      # I (unsigned imm)
    "addi": 5,     # I
    "add": 6, "sub": 7, "mul": 8, "div": 9, "rem": 10,        # R
    "and": 11, "or": 12, "xor": 13, "nor": 14,                # R
    "sll": 15, "srl": 16, "sra": 17,                          # R
    "slli": 18, "srli": 19, "srai": 20,                       # I
    "slt": 21, "sltu": 22, "seq": 23, "sne": 24,              # R
    "lw": 25, "lh": 26, "lhu": 27, "lb": 28, "lbu": 29,       # I
    "sw": 30, "sh": 31, "sb": 32,                             # I
    "beq": 33, "bne": 34,                                     # I
    "blez": 35, "bgtz": 36, "bltz": 37, "bgez": 38,           # I
    "j": 39, "jal": 40,                                       # J
    "jr": 41, "jalr": 42,                                     # R
    "lwc1": 43, "swc1": 44, "ldc1": 45, "sdc1": 46,           # I (fd in rd)
    "fadd": 47, "fsub": 48, "fmul": 49, "fdiv": 50,           # R (f regs)
    "cvtdw": 51,  # R: fd = (double) rs
    "cvtwd": 52,  # R: rd = (int) fs
    "fslt": 53, "fsle": 54, "fseq": 55,                       # R: rd = fs OP ft
    "negd": 56, "movd": 57,
    "divu": 58, "remu": 59,                                   # R
}
_OP_NAMES = {number: name for name, number in _OPS.items()}

_J_OPS = frozenset(["j", "jal"])
_I_OPS = frozenset([
    "break", "syscall", "lui", "ori", "addi", "slli", "srli", "srai",
    "lw", "lh", "lhu", "lb", "lbu", "sw", "sh", "sb",
    "beq", "bne", "blez", "bgtz", "bltz", "bgez",
    "lwc1", "swc1", "ldc1", "sdc1",
])
_LOADS = ("lw", "lh", "lhu", "lb", "lbu")
_ALU_OPS = frozenset([
    "lui", "ori", "addi", "add", "sub", "mul", "div", "rem", "divu", "remu",
    "and", "or", "xor", "nor", "sll", "srl", "sra", "slli", "srli", "srai",
    "slt", "sltu", "seq", "sne",
])

REG_ZERO = 0
REG_AT = 1       # assembler temporary
REG_RETVAL = 2   # v0
REG_ARG0 = 4     # a0..a3 = r4..r7
REG_SP = 29
REG_RA = 31
TEMP_REGS = tuple(range(8, 16))      # caller-trashed evaluation registers
SAVED_REGS = tuple(range(16, 24))    # callee-saved (register variables)
FTEMP_REGS = tuple(range(2, 8))
FRET_REG = 0


class RMipsArch(Arch):
    """The big-endian rmips description."""

    name = "rmips"
    byteorder = "big"
    insn_align = 4
    nregs = 32
    nfregs = 16
    zero_reg = True
    has_load_delay = True
    sp = REG_SP
    fp = None  # the whole point: no frame pointer
    ra = REG_RA
    arg_regs = (4, 5, 6, 7)
    ret_reg = REG_RETVAL
    has_runtime_proc_table = True
    reg_names = tuple(
        ["r%d" % i for i in range(29)] + ["sp", "r30", "ra"])

    def __init__(self):
        nop = self._encode_word(0)
        brk = self._encode_word(_OPS["break"] << 26)
        self.nop_bytes = nop
        self.break_bytes = brk

    # -- encoding ---------------------------------------------------------

    def _encode_word(self, word: int) -> bytes:
        return word.to_bytes(4, self.byteorder)

    def encode(self, insn: Insn) -> bytes:
        op = insn.op
        number = _OPS[op]
        if op in _J_OPS:
            target = insn.target
            if not isinstance(target, int):
                raise ValueError("unresolved target %r in %r" % (target, insn))
            word = (number << 26) | ((target >> 2) & 0x03FFFFFF)
        elif op in _I_OPS:
            imm = insn.imm or 0
            if not isinstance(imm, int):
                raise ValueError("unresolved immediate %r in %r" % (imm, insn))
            if not -(1 << 15) <= imm < (1 << 16):
                raise ValueError("immediate %d out of range in %r" % (imm, insn))
            word = ((number << 26)
                    | ((insn.rd or 0) << 21)
                    | ((insn.rs or 0) << 16)
                    | (imm & 0xFFFF))
        else:  # R-type
            word = ((number << 26)
                    | ((insn.rd or 0) << 21)
                    | ((insn.rs or 0) << 16)
                    | ((insn.rt or 0) << 11))
        insn.size = 4
        return self._encode_word(word)

    def decode(self, mem, address: int) -> Insn:
        word = mem.read_uint(address, 4)
        number = word >> 26
        name = _OP_NAMES.get(number)
        if name is None:
            raise TargetFault(SIGILL, code=number, address=address)
        if name in _J_OPS:
            insn = Insn(name, target=(word & 0x03FFFFFF) << 2)
        elif name in _I_OPS:
            insn = Insn(name,
                        rd=(word >> 21) & 31,
                        rs=(word >> 16) & 31,
                        imm=to_i16(word & 0xFFFF))
            if name == "ori":
                insn.imm = word & 0xFFFF
        else:
            insn = Insn(name,
                        rd=(word >> 21) & 31,
                        rs=(word >> 16) & 31,
                        rt=(word >> 11) & 31)
        insn.size = 4
        return insn

    def insn_length(self, insn: Insn) -> int:
        return 4

    def loads(self):
        return _LOADS

    # -- block dispatch ----------------------------------------------------

    block_enders = frozenset([
        "break", "syscall",
        "beq", "bne", "blez", "bgtz", "bltz", "bgez",
        "j", "jal", "jr", "jalr",
    ])

    mem_write_ops = frozenset(["sw", "sh", "sb", "swc1", "sdc1", "syscall"])

    def compile_insn(self, insn: Insn, pc: int):
        """Prebuilt execute bodies for the hot integer subset.

        Operand fields and the next pc are baked in as locals at
        compile time; each body replicates :meth:`execute` for its op
        exactly (masking, zero-register suppression, ``_wrote_reg``
        tracking, fault addresses, evaluation order).  Float and
        conversion ops fall back to :meth:`execute`.
        """
        op = insn.op
        rd = insn.rd
        rs = insn.rs
        imm = insn.imm
        M = 0xFFFFFFFF
        npc = (pc + 4) & M

        if op == "nop":
            def body(cpu):
                cpu.pc = npc
            return body

        if op == "break":
            code = imm or 0

            def body(cpu):
                raise TargetFault(SIGTRAP, code=code, address=pc)
            return body

        if op == "syscall":
            code = imm or 0

            def body(cpu):
                cpu.syscall(code)
                cpu.pc = npc
            return body

        # -- ALU: result into rd (r0 is hardwired zero) ------------------
        if op in _ALU_OPS:
            rt = insn.rt
            if op == "lui":
                val = ((imm & 0xFFFF) << 16) & M

                def compute(regs):
                    return val
            elif op == "ori":
                iv = imm & 0xFFFF

                def compute(regs):
                    return regs[rs] | iv
            elif op == "addi":
                def compute(regs):
                    return (regs[rs] + imm) & M
            elif op == "add":
                def compute(regs):
                    return (regs[rs] + regs[rt]) & M
            elif op == "sub":
                def compute(regs):
                    return (regs[rs] - regs[rt]) & M
            elif op == "mul":
                def compute(regs):
                    return (to_i32(regs[rs]) * to_i32(regs[rt])) & M
            elif op == "div":
                def compute(regs):
                    divisor = to_i32(regs[rt])
                    if divisor == 0:
                        raise TargetFault(SIGFPE, code=0, address=pc)
                    return _tdiv(to_i32(regs[rs]), divisor) & M
            elif op == "rem":
                def compute(regs):
                    divisor = to_i32(regs[rt])
                    if divisor == 0:
                        raise TargetFault(SIGFPE, code=0, address=pc)
                    return _trem(to_i32(regs[rs]), divisor) & M
            elif op == "divu":
                def compute(regs):
                    if regs[rt] == 0:
                        raise TargetFault(SIGFPE, code=0, address=pc)
                    return regs[rs] // regs[rt]
            elif op == "remu":
                def compute(regs):
                    if regs[rt] == 0:
                        raise TargetFault(SIGFPE, code=0, address=pc)
                    return regs[rs] % regs[rt]
            elif op == "and":
                def compute(regs):
                    return regs[rs] & regs[rt]
            elif op == "or":
                def compute(regs):
                    return regs[rs] | regs[rt]
            elif op == "xor":
                def compute(regs):
                    return regs[rs] ^ regs[rt]
            elif op == "nor":
                def compute(regs):
                    return ~(regs[rs] | regs[rt]) & M
            elif op == "sll":
                def compute(regs):
                    return (regs[rs] << (regs[rt] & 31)) & M
            elif op == "srl":
                def compute(regs):
                    return regs[rs] >> (regs[rt] & 31)
            elif op == "sra":
                def compute(regs):
                    return (to_i32(regs[rs]) >> (regs[rt] & 31)) & M
            elif op == "slli":
                sh = imm & 31

                def compute(regs):
                    return (regs[rs] << sh) & M
            elif op == "srli":
                sh = imm & 31

                def compute(regs):
                    return regs[rs] >> sh
            elif op == "srai":
                sh = imm & 31

                def compute(regs):
                    return (to_i32(regs[rs]) >> sh) & M
            elif op == "slt":
                def compute(regs):
                    return int(to_i32(regs[rs]) < to_i32(regs[rt]))
            elif op == "sltu":
                def compute(regs):
                    return int(regs[rs] < regs[rt])
            elif op == "seq":
                def compute(regs):
                    return int(regs[rs] == regs[rt])
            else:  # sne
                def compute(regs):
                    return int(regs[rs] != regs[rt])

            if rd == 0:
                # the hardwired zero register: side effects (the div
                # fault check) still happen, the write vanishes and
                # _wrote_reg stays clear, exactly like set_reg
                def body(cpu):
                    compute(cpu.regs)
                    cpu.pc = npc
            else:
                def body(cpu):
                    cpu.regs[rd] = compute(cpu.regs)
                    cpu._wrote_reg = rd
                    cpu.pc = npc
            return body

        # -- loads: the result lands in the delay slot -------------------
        if op in _LOADS:
            if op == "lw":
                def body(cpu):
                    cpu._pending_load = (
                        rd, cpu.mem.read_u32((cpu.regs[rs] + imm) & M))
                    cpu.pc = npc
            elif op == "lh":
                def body(cpu):
                    cpu._pending_load = (
                        rd, cpu.mem.read_i16((cpu.regs[rs] + imm) & M) & M)
                    cpu.pc = npc
            elif op == "lhu":
                def body(cpu):
                    cpu._pending_load = (
                        rd, cpu.mem.read_u16((cpu.regs[rs] + imm) & M))
                    cpu.pc = npc
            elif op == "lb":
                def body(cpu):
                    cpu._pending_load = (
                        rd, cpu.mem.read_i8((cpu.regs[rs] + imm) & M) & M)
                    cpu.pc = npc
            else:  # lbu
                def body(cpu):
                    cpu._pending_load = (
                        rd, cpu.mem.read_u8((cpu.regs[rs] + imm) & M))
                    cpu.pc = npc
            return body

        if op == "sw":
            def body(cpu):
                cpu.mem.write_u32((cpu.regs[rs] + imm) & M, cpu.regs[rd])
                cpu.pc = npc
            return body
        if op == "sh":
            def body(cpu):
                cpu.mem.write_u16((cpu.regs[rs] + imm) & M,
                                  cpu.regs[rd] & 0xFFFF)
                cpu.pc = npc
            return body
        if op == "sb":
            def body(cpu):
                cpu.mem.write_u8((cpu.regs[rs] + imm) & M,
                                 cpu.regs[rd] & 0xFF)
                cpu.pc = npc
            return body

        # -- control transfers -------------------------------------------
        if op in ("beq", "bne", "blez", "bgtz", "bltz", "bgez"):
            taken = (pc + 4 + (imm << 2)) & M
            if op == "beq":
                def body(cpu):
                    regs = cpu.regs
                    cpu.pc = taken if regs[rd] == regs[rs] else npc
            elif op == "bne":
                def body(cpu):
                    regs = cpu.regs
                    cpu.pc = taken if regs[rd] != regs[rs] else npc
            elif op == "blez":
                def body(cpu):
                    v = cpu.regs[rd]
                    cpu.pc = taken if (v == 0 or v >= 0x80000000) else npc
            elif op == "bgtz":
                def body(cpu):
                    v = cpu.regs[rd]
                    cpu.pc = taken if 0 < v < 0x80000000 else npc
            elif op == "bltz":
                def body(cpu):
                    cpu.pc = taken if cpu.regs[rd] >= 0x80000000 else npc
            else:  # bgez
                def body(cpu):
                    cpu.pc = taken if cpu.regs[rd] < 0x80000000 else npc
            return body

        if op == "j":
            target = insn.target & M

            def body(cpu):
                cpu.pc = target
            return body
        if op == "jal":
            target = insn.target & M

            def body(cpu):
                cpu.regs[REG_RA] = npc
                cpu._wrote_reg = REG_RA
                cpu.pc = target
            return body
        if op == "jr":
            def body(cpu):
                cpu.pc = cpu.regs[rs]
            return body
        if op == "jalr":
            def body(cpu):
                # execute writes ra before reading rs: jalr through ra
                # jumps to the *new* value; keep that order
                cpu.regs[REG_RA] = npc
                cpu._wrote_reg = REG_RA
                cpu.pc = cpu.regs[rs]
            return body

        return None  # float/conversion ops: the generic execute path

    # -- execution ---------------------------------------------------------

    def execute(self, cpu, insn: Insn) -> None:
        op = insn.op
        next_pc = cpu.pc + 4
        R = cpu.get_reg
        if op == "nop":
            pass
        elif op == "break":
            raise TargetFault(SIGTRAP, code=insn.imm or 0, address=cpu.pc)
        elif op == "syscall":
            cpu.syscall(insn.imm or 0)
        elif op == "lui":
            cpu.set_reg(insn.rd, (insn.imm & 0xFFFF) << 16)
        elif op == "ori":
            cpu.set_reg(insn.rd, R(insn.rs) | (insn.imm & 0xFFFF))
        elif op == "addi":
            cpu.set_reg(insn.rd, R(insn.rs) + insn.imm)
        elif op == "add":
            cpu.set_reg(insn.rd, R(insn.rs) + R(insn.rt))
        elif op == "sub":
            cpu.set_reg(insn.rd, R(insn.rs) - R(insn.rt))
        elif op == "mul":
            cpu.set_reg(insn.rd, to_i32(R(insn.rs)) * to_i32(R(insn.rt)))
        elif op == "div":
            divisor = to_i32(R(insn.rt))
            if divisor == 0:
                raise TargetFault(SIGFPE, code=0, address=cpu.pc)
            cpu.set_reg(insn.rd, _tdiv(to_i32(R(insn.rs)), divisor))
        elif op == "rem":
            divisor = to_i32(R(insn.rt))
            if divisor == 0:
                raise TargetFault(SIGFPE, code=0, address=cpu.pc)
            cpu.set_reg(insn.rd, _trem(to_i32(R(insn.rs)), divisor))
        elif op == "divu":
            if R(insn.rt) == 0:
                raise TargetFault(SIGFPE, code=0, address=cpu.pc)
            cpu.set_reg(insn.rd, R(insn.rs) // R(insn.rt))
        elif op == "remu":
            if R(insn.rt) == 0:
                raise TargetFault(SIGFPE, code=0, address=cpu.pc)
            cpu.set_reg(insn.rd, R(insn.rs) % R(insn.rt))
        elif op == "and":
            cpu.set_reg(insn.rd, R(insn.rs) & R(insn.rt))
        elif op == "or":
            cpu.set_reg(insn.rd, R(insn.rs) | R(insn.rt))
        elif op == "xor":
            cpu.set_reg(insn.rd, R(insn.rs) ^ R(insn.rt))
        elif op == "nor":
            cpu.set_reg(insn.rd, ~(R(insn.rs) | R(insn.rt)))
        elif op == "sll":
            cpu.set_reg(insn.rd, R(insn.rs) << (R(insn.rt) & 31))
        elif op == "srl":
            cpu.set_reg(insn.rd, R(insn.rs) >> (R(insn.rt) & 31))
        elif op == "sra":
            cpu.set_reg(insn.rd, to_i32(R(insn.rs)) >> (R(insn.rt) & 31))
        elif op == "slli":
            cpu.set_reg(insn.rd, R(insn.rs) << (insn.imm & 31))
        elif op == "srli":
            cpu.set_reg(insn.rd, R(insn.rs) >> (insn.imm & 31))
        elif op == "srai":
            cpu.set_reg(insn.rd, to_i32(R(insn.rs)) >> (insn.imm & 31))
        elif op == "slt":
            cpu.set_reg(insn.rd, int(to_i32(R(insn.rs)) < to_i32(R(insn.rt))))
        elif op == "sltu":
            cpu.set_reg(insn.rd, int(R(insn.rs) < R(insn.rt)))
        elif op == "seq":
            cpu.set_reg(insn.rd, int(R(insn.rs) == R(insn.rt)))
        elif op == "sne":
            cpu.set_reg(insn.rd, int(R(insn.rs) != R(insn.rt)))
        elif op in _LOADS:
            address = to_u32(R(insn.rs) + insn.imm)
            if op == "lw":
                value = cpu.mem.read_u32(address)
            elif op == "lh":
                value = cpu.mem.read_i16(address)
            elif op == "lhu":
                value = cpu.mem.read_u16(address)
            elif op == "lb":
                value = cpu.mem.read_i8(address)
            else:
                value = cpu.mem.read_u8(address)
            cpu.defer_load(insn.rd, value)  # load delay slot
        elif op == "sw":
            cpu.mem.write_u32(to_u32(R(insn.rs) + insn.imm), R(insn.rd))
        elif op == "sh":
            cpu.mem.write_u16(to_u32(R(insn.rs) + insn.imm), R(insn.rd) & 0xFFFF)
        elif op == "sb":
            cpu.mem.write_u8(to_u32(R(insn.rs) + insn.imm), R(insn.rd) & 0xFF)
        elif op == "beq":
            if R(insn.rd) == R(insn.rs):
                next_pc = cpu.pc + 4 + (insn.imm << 2)
        elif op == "bne":
            if R(insn.rd) != R(insn.rs):
                next_pc = cpu.pc + 4 + (insn.imm << 2)
        elif op == "blez":
            if to_i32(R(insn.rd)) <= 0:
                next_pc = cpu.pc + 4 + (insn.imm << 2)
        elif op == "bgtz":
            if to_i32(R(insn.rd)) > 0:
                next_pc = cpu.pc + 4 + (insn.imm << 2)
        elif op == "bltz":
            if to_i32(R(insn.rd)) < 0:
                next_pc = cpu.pc + 4 + (insn.imm << 2)
        elif op == "bgez":
            if to_i32(R(insn.rd)) >= 0:
                next_pc = cpu.pc + 4 + (insn.imm << 2)
        elif op == "j":
            next_pc = insn.target
        elif op == "jal":
            cpu.set_reg(REG_RA, cpu.pc + 4)
            next_pc = insn.target
        elif op == "jr":
            next_pc = R(insn.rs)
        elif op == "jalr":
            cpu.set_reg(REG_RA, cpu.pc + 4)
            next_pc = R(insn.rs)
        elif op == "lwc1":
            cpu.fregs[insn.rd] = cpu.mem.read_f32(to_u32(R(insn.rs) + insn.imm))
        elif op == "ldc1":
            cpu.fregs[insn.rd] = cpu.mem.read_f64(to_u32(R(insn.rs) + insn.imm))
        elif op == "swc1":
            cpu.mem.write_f32(to_u32(R(insn.rs) + insn.imm), cpu.fregs[insn.rd])
        elif op == "sdc1":
            cpu.mem.write_f64(to_u32(R(insn.rs) + insn.imm), cpu.fregs[insn.rd])
        elif op == "fadd":
            cpu.fregs[insn.rd] = cpu.fregs[insn.rs] + cpu.fregs[insn.rt]
        elif op == "fsub":
            cpu.fregs[insn.rd] = cpu.fregs[insn.rs] - cpu.fregs[insn.rt]
        elif op == "fmul":
            cpu.fregs[insn.rd] = cpu.fregs[insn.rs] * cpu.fregs[insn.rt]
        elif op == "fdiv":
            if cpu.fregs[insn.rt] == 0.0:
                raise TargetFault(SIGFPE, code=1, address=cpu.pc)
            cpu.fregs[insn.rd] = cpu.fregs[insn.rs] / cpu.fregs[insn.rt]
        elif op == "cvtdw":
            cpu.fregs[insn.rd] = float(to_i32(R(insn.rs)))
        elif op == "cvtwd":
            cpu.set_reg(insn.rd, int(math.trunc(cpu.fregs[insn.rs])))
        elif op == "fslt":
            cpu.set_reg(insn.rd, int(cpu.fregs[insn.rs] < cpu.fregs[insn.rt]))
        elif op == "fsle":
            cpu.set_reg(insn.rd, int(cpu.fregs[insn.rs] <= cpu.fregs[insn.rt]))
        elif op == "fseq":
            cpu.set_reg(insn.rd, int(cpu.fregs[insn.rs] == cpu.fregs[insn.rt]))
        elif op == "negd":
            cpu.fregs[insn.rd] = -cpu.fregs[insn.rs]
        elif op == "movd":
            cpu.fregs[insn.rd] = cpu.fregs[insn.rs]
        else:  # pragma: no cover - decode rejects unknown opcodes
            raise TargetFault(SIGILL, address=cpu.pc)
        cpu.pc = to_u32(next_pc)


class RMipsELArch(RMipsArch):
    """The little-endian rmips variant.

    Identical ISA; only byte order differs.  The paper stresses that the
    register memory lets ldb run the same code on little- and big-endian
    MIPS (Sec. 4.1) — this variant exists to test exactly that.
    """

    name = "rmipsel"
    byteorder = "little"


def _tdiv(a: int, b: int) -> int:
    quotient = abs(a) // abs(b)
    return -quotient if (a < 0) != (b < 0) else quotient


def _trem(a: int, b: int) -> int:
    remainder = abs(a) % abs(b)
    return -remainder if a < 0 else remainder
