"""Execution engines: pluggable strategies for running the simulation.

The interpreter is the hot path of the whole system — time-travel
replay, the fault matrix, and every `repro.serve` fleet workload are
bounded by simulated instructions per second.  This module splits the
*policy* of running (when to stop, how to dispatch) from the
*semantics* of one instruction (``Cpu.step``), behind one small
interface:

* :class:`StepEngine` — the reference implementation: decode and
  execute one instruction at a time, exactly ``Cpu.step`` in a loop.
* :class:`BlockEngine` — a decoded-basic-block core in the spirit of
  the DiVM bitcode simulator (PAPERS.md): decode from the pc to the
  next control transfer *once*, compile the block into a list of
  prebuilt execute closures keyed by ``(addr, code-bytes generation)``,
  and dispatch whole blocks between icount/stop checks.

Both engines must produce byte-identical architectural state: the same
stops, registers, memory, faults, and icount.  The subtle rules that
make that true are concentrated in :meth:`BlockEngine._wrap`, which
replays ``Cpu.step``'s exact prologue/epilogue per instruction — the
rmips load-delay commit, the faulting-instruction-retires rule, and
the decode-fault-does-not-retire rule (a decode fault drops the
pending load and retires nothing; see the zero-step fault blocks).

Cache invalidation: the engine marks every byte it decoded from in a
per-byte code map and registers a write hook on the target memory.
Any write that overlaps a decoded byte — PLANT/unplant, POKE,
BLOCKSTORE, a self-modifying store, or a checkpoint restore rewriting
a code page — bumps the generation counter and drops every cached
block, so the next dispatch re-decodes current bytes.  A store that
lands inside the *currently executing* block is caught by a
generation check between instructions.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Tuple

from .isa import (
    DEFAULT_MAX_STEPS,
    Halt,
    IcountReached,
    SIGILL,
    SIGSEGV,
    TargetFault,
)
from .memory import MemoryFault

#: Environment variable consulted when no engine is requested
#: explicitly; value "step" or "block".
ENGINE_ENV = "LDB_SIM_ENGINE"

#: The engine used when neither the caller nor the environment picks
#: one.  The block engine is the default: its architectural state is
#: byte-identical to the step engine (the equivalence property in
#: tests/machines/test_engines.py), only faster.
DEFAULT_ENGINE = "block"


class StopSpec:
    """One shared description of when a run must stop.

    ``Cpu.run`` and ``Process.run_until_event`` both accept these
    (or build one from their keyword-only ``max_steps`` /
    ``stop_at_icount``), so the two stop-condition vocabularies cannot
    drift apart again.

    * ``max_steps`` — runaway guard: after this many retired
      instructions the run raises the SIGILL/99 runaway fault.
    * ``stop_at_icount`` — absolute retired-instruction target:
      checked *between* instructions, raising :class:`IcountReached`
      before executing the instruction that would pass it.
    """

    __slots__ = ("max_steps", "stop_at_icount")

    def __init__(self, max_steps: int = DEFAULT_MAX_STEPS,
                 stop_at_icount: Optional[int] = None):
        if max_steps < 0:
            raise ValueError("max_steps must be >= 0")
        if stop_at_icount is not None and stop_at_icount < 0:
            raise ValueError("stop_at_icount must be >= 0")
        self.max_steps = max_steps
        self.stop_at_icount = stop_at_icount

    @classmethod
    def coerce(cls, stop: Optional["StopSpec"],
               max_steps: Optional[int],
               stop_at_icount: Optional[int]) -> "StopSpec":
        """Fold the (stop | max_steps/stop_at_icount) keyword surface
        into one spec; passing both forms is a caller bug."""
        if stop is not None:
            if max_steps is not None or stop_at_icount is not None:
                raise ValueError(
                    "pass either stop= or max_steps=/stop_at_icount=, not both")
            return stop
        return cls(DEFAULT_MAX_STEPS if max_steps is None else max_steps,
                   stop_at_icount)

    def __repr__(self) -> str:
        return "<stop max_steps=%d stop_at_icount=%r>" % (
            self.max_steps, self.stop_at_icount)


class SimStats:
    """Block-cache counters; the source of the ``sim.*`` metrics."""

    __slots__ = ("compiled", "hits", "invalidated")

    def __init__(self):
        self.compiled = 0
        self.hits = 0
        self.invalidated = 0

    def as_dict(self) -> Dict[str, int]:
        return {"blocks_compiled": self.compiled,
                "block_hits": self.hits,
                "blocks_invalidated": self.invalidated}


class ExecutionEngine:
    """Strategy interface: run a Cpu until a stop condition fires.

    ``run`` must behave exactly like the historical ``Cpu.run`` loop:
    return the exit status on :class:`Halt`, raise
    :class:`IcountReached` when the icount target is hit between
    instructions, let :class:`TargetFault` propagate, and raise the
    SIGILL/99 runaway fault when ``max_steps`` instructions retire
    without any of the above.
    """

    name = "abstract"

    def __init__(self, cpu=None):
        self.cpu = cpu
        self.stats = SimStats()

    def run(self, cpu, stop: StopSpec) -> int:
        raise NotImplementedError

    def describe(self) -> Dict[str, int]:
        """Engine identity + counters, for `ldb sim` / the sim_stats verb."""
        info: Dict[str, int] = {}
        info.update(self.stats.as_dict())
        return info


class StepEngine(ExecutionEngine):
    """The reference engine: ``Cpu.step`` in a loop, nothing cached."""

    name = "step"

    def run(self, cpu, stop: StopSpec) -> int:
        remaining = stop.max_steps
        target = stop.stop_at_icount
        try:
            while remaining > 0:
                if target is not None and cpu.icount >= target:
                    raise IcountReached(cpu.icount, cpu.pc)
                cpu.step()
                remaining -= 1
        except Halt as halt:
            return halt.status
        raise TargetFault(SIGILL, code=99, address=cpu.pc)  # runaway


class _Invalidated(Exception):
    """Internal control flow: a just-executed instruction wrote over
    decoded code, so the rest of its block is stale.  Raised by the
    writer wrapper *after* the instruction fully retires; the dispatch
    loop swallows it and resumes from ``cpu.pc`` with fresh bytes."""


class _Block:
    """One compiled basic block.

    ``steps`` holds one prebuilt closure per instruction; an *empty*
    ``steps`` with a non-None ``fault`` is a decode-fault terminator:
    dispatching it replays ``Cpu.step``'s decode-fault path (the
    pending load is dropped, nothing retires, the fault is raised).
    """

    __slots__ = ("gen", "steps", "fault", "start", "size")

    def __init__(self, gen: int, steps: List[Callable],
                 fault: Optional[Tuple[int, int, int]],
                 start: int, size: int):
        self.gen = gen
        self.steps = steps
        self.fault = fault
        self.start = start
        self.size = size


class BlockEngine(ExecutionEngine):
    """Decoded-basic-block dispatch with write-invalidated caching."""

    name = "block"

    #: Longest straight-line run compiled into one block.  Blocks end
    #: at the arch's control transfers anyway; this bounds pathological
    #: straight-line code so stop checks stay responsive.
    MAX_BLOCK = 128

    def __init__(self, cpu):
        super().__init__(cpu)
        self.arch = cpu.arch
        self.mem = cpu.mem
        #: bumped on every write into decoded code; blocks compiled
        #: under an older generation are never dispatched again
        self.generation = 0
        self._blocks: Dict[int, _Block] = {}
        #: per-byte map of decoded code: 1 where some cached block
        #: decoded from this address.  Byte-exact so that data packed
        #: right next to text (the linker aligns data to 16 bytes after
        #: text) never false-invalidates on hot stores.
        self._code_marks = bytearray(cpu.mem.size)
        #: bounds of the marked region: stores outside [lo, hi) skip
        #: the byte-map scan entirely (the write hook runs per store)
        self._marks_lo = cpu.mem.size
        self._marks_hi = 0
        cpu.mem.add_write_hook(self._on_write)

    # -- invalidation -----------------------------------------------------

    def _on_write(self, address: int, size: int) -> None:
        """Memory write hook: any store overlapping decoded code drops
        the whole cache (simple, and correct for PLANT/unplant, POKE,
        BLOCKSTORE, self-modifying stores, and snapshot restores)."""
        if address >= self._marks_hi or address + size <= self._marks_lo:
            return  # outside every decoded span: the common case (data)
        if 1 in self._code_marks[address:address + size]:
            self._invalidate()

    def _invalidate(self) -> None:
        self.generation += 1
        self.stats.invalidated += len(self._blocks)
        marks = self._code_marks
        for block in self._blocks.values():
            if block.size:
                marks[block.start:block.start + block.size] = \
                    bytes(block.size)
        self._blocks.clear()
        self._marks_lo = self.mem.size
        self._marks_hi = 0

    def flush(self) -> None:
        """Drop every cached block (public; normal invalidation is
        automatic via the memory write hook)."""
        if self._blocks:
            self._invalidate()

    # -- compilation ------------------------------------------------------

    def _wrap(self, body: Callable, writer: bool, gen: int) -> Callable:
        """Fuse ``body`` (the execute work of one instruction) with
        ``Cpu.step``'s exact prologue/epilogue: pending-load commit,
        wrote-reg tracking, MemoryFault conversion, and the
        faulting-instruction-retires rule.

        ``writer`` marks instructions that may write target memory
        (:meth:`Arch.may_write_mem`, or any generic fallback): only
        those re-check the cache generation, raising
        :class:`_Invalidated` when their store clobbered decoded code.
        Keeping that check out of non-writers keeps the dispatch loop
        a bare closure call per instruction.
        """
        zero_reg = self.arch.zero_reg
        if not self.arch.has_load_delay:
            # no load delay slot: _pending_load is never set, so the
            # commit bookkeeping is dead weight — the wrapper is just
            # fault conversion + the faulting-instruction-retires rule
            if not writer:
                def step(cpu):
                    try:
                        body(cpu)
                    except MemoryFault as fault:
                        raise TargetFault(SIGSEGV, code=2,
                                          address=fault.address)
                    finally:
                        cpu.icount += 1
                return step

            engine = self

            def step(cpu):
                try:
                    body(cpu)
                except MemoryFault as fault:
                    raise TargetFault(SIGSEGV, code=2, address=fault.address)
                finally:
                    cpu.icount += 1
                if engine.generation != gen:
                    raise _Invalidated
            return step

        if not writer:
            def step(cpu):
                commit = cpu._pending_load
                if commit is not None:
                    cpu._pending_load = None
                cpu._wrote_reg = None
                try:
                    body(cpu)
                except MemoryFault as fault:
                    raise TargetFault(SIGSEGV, code=2, address=fault.address)
                finally:
                    cpu.icount += 1
                    if commit is not None and commit[0] != cpu._wrote_reg:
                        reg, value = commit
                        if not (reg == 0 and zero_reg):
                            cpu.regs[reg] = value
            return step

        engine = self

        def step(cpu):
            commit = cpu._pending_load
            if commit is not None:
                cpu._pending_load = None
            cpu._wrote_reg = None
            try:
                body(cpu)
            except MemoryFault as fault:
                raise TargetFault(SIGSEGV, code=2, address=fault.address)
            finally:
                cpu.icount += 1
                if commit is not None and commit[0] != cpu._wrote_reg:
                    reg, value = commit
                    if not (reg == 0 and zero_reg):
                        cpu.regs[reg] = value
            if engine.generation != gen:
                raise _Invalidated
        return step

    def _compile(self, pc: int) -> _Block:
        arch = self.arch
        mem = self.mem
        gen = self.generation
        steps: List[Callable] = []
        fault: Optional[Tuple[int, int, int]] = None
        addr = pc
        while len(steps) < self.MAX_BLOCK:
            try:
                insn = arch.decode(mem, addr)
            except MemoryFault as exc:
                fault = (SIGSEGV, 1, exc.address)
                break
            except TargetFault as exc:
                fault = (exc.signo, exc.code, exc.address)
                break
            body = arch.compile_insn(insn, addr)
            if body is None:
                body = _generic_body(arch.execute, insn)
                writer = True  # unknown semantics: stay conservative
            else:
                writer = arch.may_write_mem(insn)
            steps.append(self._wrap(body, writer, gen))
            addr += insn.size
            if arch.is_block_end(insn):
                break
        if steps:
            # A decode fault after at least one instruction is *not*
            # part of this block: execution may never get there (a
            # mid-block stop, an exception, a patched branch).  The
            # faulting pc gets its own zero-step fault block on demand.
            fault = None
            size = addr - pc
        else:
            # Zero-step fault block.  Its *cause* is the undecodable
            # bytes at pc, so mark a conservative span: a write there
            # (e.g. self-modifying code repairing an illegal opcode)
            # must invalidate this block too.
            size = min(16, self.mem.size - pc) if pc < self.mem.size else 0
        block = _Block(gen, steps, fault, pc, size)
        if size > 0:
            self._code_marks[pc:pc + size] = b"\x01" * size
            if pc < self._marks_lo:
                self._marks_lo = pc
            if pc + size > self._marks_hi:
                self._marks_hi = pc + size
        return block

    # -- dispatch ---------------------------------------------------------

    def run(self, cpu, stop: StopSpec) -> int:
        remaining = stop.max_steps
        target = stop.stop_at_icount
        blocks = self._blocks
        stats = self.stats
        try:
            while remaining > 0:
                icount = cpu.icount
                if target is not None and icount >= target:
                    raise IcountReached(icount, cpu.pc)
                pc = cpu.pc
                block = blocks.get(pc)
                if block is None or block.gen != self.generation:
                    block = self._compile(pc)
                    blocks[pc] = block
                    stats.compiled += 1
                else:
                    stats.hits += 1
                steps = block.steps
                if not steps:
                    # decode-fault terminator: replay Cpu.step's decode
                    # path exactly — the pending load is dropped and
                    # nothing retires
                    cpu._pending_load = None
                    cpu._wrote_reg = None
                    signo, code, address = block.fault
                    raise TargetFault(signo, code=code, address=address)
                count = len(steps)
                if count > remaining:
                    count = remaining
                if target is not None:
                    due = target - icount
                    if count > due:
                        count = due
                try:
                    for fn in steps if count == len(steps) else steps[:count]:
                        fn(cpu)
                except _Invalidated:
                    # a store inside the block clobbered decoded code;
                    # its instruction fully retired — resume from
                    # cpu.pc with freshly decoded bytes
                    pass
                # each wrapper bumps icount exactly once, so the delta
                # is the number of retired instructions
                remaining -= cpu.icount - icount
        except Halt as halt:
            return halt.status
        raise TargetFault(SIGILL, code=99, address=cpu.pc)  # runaway

    # -- introspection ----------------------------------------------------

    def describe(self) -> Dict[str, int]:
        info = super().describe()
        info["blocks_cached"] = len(self._blocks)
        info["generation"] = self.generation
        return info


def _generic_body(execute, insn):
    """Fallback body: the arch's own execute with the decode pre-done.
    Used for every instruction the arch does not specialize — semantics
    are the arch's single source of truth."""
    def body(cpu):
        execute(cpu, insn)
    return body


_ENGINES = {"step": StepEngine, "block": BlockEngine}


def engine_names() -> Tuple[str, ...]:
    return tuple(sorted(_ENGINES))


def make_engine(spec, cpu) -> ExecutionEngine:
    """Resolve an engine request into an engine bound to ``cpu``.

    ``spec`` may be None (environment variable :data:`ENGINE_ENV`, then
    :data:`DEFAULT_ENGINE`), an engine name, an ExecutionEngine
    subclass, or a ready instance.
    """
    if spec is None:
        spec = os.environ.get(ENGINE_ENV) or DEFAULT_ENGINE
    if isinstance(spec, ExecutionEngine):
        return spec
    if isinstance(spec, type) and issubclass(spec, ExecutionEngine):
        return spec(cpu)
    if isinstance(spec, str):
        cls = _ENGINES.get(spec)
        if cls is None:
            raise ValueError("unknown execution engine %r (one of %s)"
                             % (spec, ", ".join(engine_names())))
        return cls(cpu)
    raise TypeError("engine must be a name, class, or instance, not %r"
                    % (spec,))
