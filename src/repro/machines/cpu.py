"""The shared CPU simulation loop.

One :class:`Cpu` drives any :class:`~repro.machines.isa.Arch`: it decodes
at the pc, executes, and converts bad accesses, illegal opcodes, and
arithmetic faults into :class:`~repro.machines.isa.TargetFault` signals
for the nub to catch.

The rmips load delay slot is simulated here: a load's result is committed
only after the *following* instruction has executed, so an instruction in
the delay slot that reads the loaded register sees the old value.  This
keeps the assembler's delay-slot scheduling honest (paper Sec. 3: the
restricted scheduling available under debugging costs 13% on MIPS).
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from .isa import Arch, Halt, SIGILL, SIGSEGV, TargetFault
from .memory import MemoryFault, TargetMemory


class Cpu:
    """Register state plus the fetch-decode-execute loop."""

    def __init__(self, arch: Arch, mem: TargetMemory,
                 syscall_handler: Optional[Callable[["Cpu", int], None]] = None):
        self.arch = arch
        self.mem = mem
        self.regs = [0] * arch.nregs
        self.fregs = [0.0] * arch.nfregs
        self.pc = 0
        #: Condition codes for the CISC targets: sign of last compare.
        self.cc_lt = False
        self.cc_eq = False
        self.cc_ltu = False
        self.syscall_handler = syscall_handler
        self.steps = 0
        # Load-delay simulation (rmips): a pending (reg, value) commit.
        self._pending_load: Optional[Tuple[int, int]] = None
        self._wrote_reg: Optional[int] = None

    # -- register access --------------------------------------------------

    def get_reg(self, index: int) -> int:
        return self.regs[index]

    def set_reg(self, index: int, value: int) -> None:
        if index == 0 and self.arch.zero_reg:
            return  # the hardwired zero register
        self.regs[index] = value & 0xFFFFFFFF
        self._wrote_reg = index

    def get_reg_signed(self, index: int) -> int:
        value = self.regs[index]
        return value - (1 << 32) if value >= 1 << 31 else value

    def defer_load(self, index: int, value: int) -> None:
        """Schedule a register write that lands after the next instruction."""
        self._pending_load = (index, value & 0xFFFFFFFF)

    def set_cc(self, a: int, b: int) -> None:
        """Set condition codes from a signed and unsigned compare of a, b."""
        sa = a - (1 << 32) if a >= 1 << 31 else a
        sb = b - (1 << 32) if b >= 1 << 31 else b
        self.cc_lt = sa < sb
        self.cc_eq = a & 0xFFFFFFFF == b & 0xFFFFFFFF
        self.cc_ltu = a & 0xFFFFFFFF < b & 0xFFFFFFFF

    # -- execution ---------------------------------------------------------

    def step(self) -> None:
        """Execute one instruction; raises TargetFault or Halt."""
        commit = self._pending_load
        self._pending_load = None
        self._wrote_reg = None
        try:
            insn = self.arch.decode(self.mem, self.pc)
        except MemoryFault as fault:
            raise TargetFault(SIGSEGV, code=1, address=fault.address)
        try:
            self.arch.execute(self, insn)
        except MemoryFault as fault:
            raise TargetFault(SIGSEGV, code=2, address=fault.address)
        finally:
            self.steps += 1
            if commit is not None and commit[0] != self._wrote_reg:
                reg, value = commit
                if not (reg == 0 and self.arch.zero_reg):
                    self.regs[reg] = value

    def run(self, max_steps: int = 50_000_000) -> int:
        """Run until exit; returns the exit status.

        TargetFaults propagate to the caller (normally the nub).
        """
        remaining = max_steps
        try:
            while remaining > 0:
                self.step()
                remaining -= 1
        except Halt as halt:
            return halt.status
        raise TargetFault(SIGILL, code=99, address=self.pc)  # runaway

    def syscall(self, code: int) -> None:
        if self.syscall_handler is None:
            raise TargetFault(SIGILL, code=code, address=self.pc)
        self.syscall_handler(self, code)
