"""The shared CPU simulation loop.

One :class:`Cpu` drives any :class:`~repro.machines.isa.Arch`: it decodes
at the pc, executes, and converts bad accesses, illegal opcodes, and
arithmetic faults into :class:`~repro.machines.isa.TargetFault` signals
for the nub to catch.

The rmips load delay slot is simulated here: a load's result is committed
only after the *following* instruction has executed, so an instruction in
the delay slot that reads the loaded register sees the old value.  This
keeps the assembler's delay-slot scheduling honest (paper Sec. 3: the
restricted scheduling available under debugging costs 13% on MIPS).
"""

from __future__ import annotations

import warnings
from typing import Callable, Optional, Tuple

from .engine import StopSpec, make_engine
from .isa import (
    Arch,
    SIGSEGV,
    TargetFault,
)
from .memory import MemoryFault, TargetMemory


class CpuSnapshot:
    """The complete register-level state of a :class:`Cpu` at one
    instant: restoring it (plus the matching memory snapshot) replays
    the deterministic simulation byte for byte."""

    __slots__ = ("regs", "fregs", "pc", "cc_lt", "cc_eq", "cc_ltu",
                 "icount", "pending_load", "wrote_reg")

    def __init__(self, cpu: "Cpu"):
        self.regs = list(cpu.regs)
        self.fregs = list(cpu.fregs)
        self.pc = cpu.pc
        self.cc_lt = cpu.cc_lt
        self.cc_eq = cpu.cc_eq
        self.cc_ltu = cpu.cc_ltu
        self.icount = cpu.icount
        self.pending_load = cpu._pending_load
        self.wrote_reg = cpu._wrote_reg


class Cpu:
    """Register state plus the fetch-decode-execute loop."""

    def __init__(self, arch: Arch, mem: TargetMemory,
                 syscall_handler: Optional[Callable[["Cpu", int], None]] = None,
                 engine=None):
        self.arch = arch
        self.mem = mem
        self.regs = [0] * arch.nregs
        self.fregs = [0.0] * arch.nfregs
        self.pc = 0
        #: Condition codes for the CISC targets: sign of last compare.
        self.cc_lt = False
        self.cc_eq = False
        self.cc_ltu = False
        self.syscall_handler = syscall_handler
        #: Retired-instruction counter: the clock of the deterministic
        #: simulation.  A faulting instruction counts as retired (its
        #: trap is part of the timeline), so replays that plant and hit
        #: breakpoints stay icount-aligned with runs that do not.
        self.icount = 0
        # Load-delay simulation (rmips): a pending (reg, value) commit.
        self._pending_load: Optional[Tuple[int, int]] = None
        self._wrote_reg: Optional[int] = None
        #: The execution engine that drives :meth:`run`.  ``engine``
        #: accepts a name ("step", "block"), an engine class, an
        #: instance, or None for the configured default.
        self.engine = make_engine(engine, self)

    _steps_warned = False

    @property
    def steps(self) -> int:
        """Deprecated alias for :attr:`icount`; use that instead."""
        if not Cpu._steps_warned:
            Cpu._steps_warned = True
            warnings.warn("Cpu.steps is deprecated; use Cpu.icount",
                          DeprecationWarning, stacklevel=2)
        return self.icount

    # -- snapshot/restore --------------------------------------------------

    def snapshot(self) -> CpuSnapshot:
        """Capture the full register-level state (cheap: a few lists)."""
        return CpuSnapshot(self)

    def restore(self, snap: CpuSnapshot) -> None:
        self.regs = list(snap.regs)
        self.fregs = list(snap.fregs)
        self.pc = snap.pc
        self.cc_lt = snap.cc_lt
        self.cc_eq = snap.cc_eq
        self.cc_ltu = snap.cc_ltu
        self.icount = snap.icount
        self._pending_load = snap.pending_load
        self._wrote_reg = snap.wrote_reg

    # -- register access --------------------------------------------------

    def get_reg(self, index: int) -> int:
        return self.regs[index]

    def set_reg(self, index: int, value: int) -> None:
        if index == 0 and self.arch.zero_reg:
            return  # the hardwired zero register
        self.regs[index] = value & 0xFFFFFFFF
        self._wrote_reg = index

    def get_reg_signed(self, index: int) -> int:
        value = self.regs[index]
        return value - (1 << 32) if value >= 1 << 31 else value

    def defer_load(self, index: int, value: int) -> None:
        """Schedule a register write that lands after the next instruction."""
        self._pending_load = (index, value & 0xFFFFFFFF)

    def set_cc(self, a: int, b: int) -> None:
        """Set condition codes from a signed and unsigned compare of a, b."""
        sa = a - (1 << 32) if a >= 1 << 31 else a
        sb = b - (1 << 32) if b >= 1 << 31 else b
        self.cc_lt = sa < sb
        self.cc_eq = a & 0xFFFFFFFF == b & 0xFFFFFFFF
        self.cc_ltu = a & 0xFFFFFFFF < b & 0xFFFFFFFF

    # -- execution ---------------------------------------------------------

    def step(self) -> None:
        """Execute one instruction; raises TargetFault or Halt."""
        commit = self._pending_load
        self._pending_load = None
        self._wrote_reg = None
        try:
            insn = self.arch.decode(self.mem, self.pc)
        except MemoryFault as fault:
            raise TargetFault(SIGSEGV, code=1, address=fault.address)
        try:
            self.arch.execute(self, insn)
        except MemoryFault as fault:
            raise TargetFault(SIGSEGV, code=2, address=fault.address)
        finally:
            self.icount += 1
            if commit is not None and commit[0] != self._wrote_reg:
                reg, value = commit
                if not (reg == 0 and self.arch.zero_reg):
                    self.regs[reg] = value

    def run(self, *, max_steps: Optional[int] = None,
            stop_at_icount: Optional[int] = None,
            stop: Optional[StopSpec] = None) -> int:
        """Run until exit; returns the exit status.

        Stop conditions are keyword-only: pass ``max_steps`` /
        ``stop_at_icount``, or a prebuilt :class:`StopSpec` as
        ``stop`` (not both).  TargetFaults propagate to the caller
        (normally the nub).  With ``stop_at_icount`` the engine raises
        :class:`~repro.machines.isa.IcountReached` once the
        retired-instruction counter reaches the target — checked
        *between* instructions, so a target at or below the current
        count stops immediately without executing anything.
        """
        spec = StopSpec.coerce(stop, max_steps, stop_at_icount)
        return self.engine.run(self, spec)

    def syscall(self, code: int) -> None:
        if self.syscall_handler is None:
            raise TargetFault(SIGILL, code=code, address=self.pc)
        self.syscall_handler(self, code)
