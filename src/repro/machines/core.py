"""A versioned core-file format for post-mortem debugging.

When a target dies — a fatal fault, or an explicit ``dumpcore`` — the
nub serializes everything the debugger's machine-independent core needs
to keep working without a live target: the machine name and byte order,
the saved context address, the retired-instruction count, the fault
record, the planted-breakpoint table, and the memory image itself.

The memory image is stored *sparsely* (all-zero runs are skipped) and
the whole body is zlib-compressed, so a core comfortably fits in one
DUMPCORE reply under the protocol's 1 MiB payload cap.  A CRC32 over
the compressed body catches truncation and bit rot; loading a damaged,
truncated, or future-versioned core raises :class:`CoreError` with a
reason rather than a struct error.

A core may optionally embed the program's loader symbol table (the
PostScript table ``ldb`` reads), which is what lets ``ldb core <file>``
open a core standalone — no executable, no nub, no target.
"""

from __future__ import annotations

import struct
import warnings
from typing import List, Optional, Tuple

from .atomicio import SalvagedArtifact, atomic_write_bytes
from .chunkio import (pack_container, salvage_container, sparse_segments,
                      unpack_container)
from .memory import TargetMemory

__all__ = ["MAGIC", "CORE_VERSION", "CoreError", "CoreFile",
           "SalvagedArtifact", "sparse_segments", "core_from_process"]

MAGIC = b"LDBC"
CORE_VERSION = 1


class CoreError(Exception):
    """A core file that cannot be loaded (damaged, truncated, or from a
    future format version)."""


class CoreFile:
    """One serialized dead (or stopped) target."""

    #: True when this core was recovered from a damaged file by
    #: :meth:`from_bytes`'s salvage mode: the fault record and every
    #: segment that survived are served; lost tail segments read as
    #: zero, and a lost symbol table means ``table_ps`` must be passed
    salvaged = False
    #: why the strict parse refused the file (salvaged only)
    salvage_reason: Optional[str] = None

    def __init__(self, arch_name: str, byteorder: str, memsize: int,
                 context_addr: int, icount: int, signo: int, code: int,
                 fault_pc: int,
                 segments: List[Tuple[int, bytes]],
                 planted: Optional[List[Tuple[int, bytes]]] = None,
                 loader_ps: Optional[str] = None):
        self.arch_name = arch_name
        self.byteorder = byteorder
        self.memsize = memsize
        #: where the nub saved the context (registers live here)
        self.context_addr = context_addr
        self.icount = icount
        #: the fault record: why the target stopped for the last time
        self.signo = signo
        self.code = code
        self.fault_pc = fault_pc
        #: sparse memory image: (start address, raw target-order bytes)
        self.segments = segments
        #: planted breakpoints: (address, original little-endian bytes)
        self.planted = list(planted or [])
        #: optional embedded loader symbol table (PostScript text)
        self.loader_ps = loader_ps

    # -- serialization ----------------------------------------------------

    def to_bytes(self) -> bytes:
        body = bytearray()
        name = self.arch_name.encode("ascii")
        body += struct.pack("<B", len(name)) + name
        body += struct.pack("<B", 1 if self.byteorder == "big" else 0)
        body += struct.pack("<IIQ", self.memsize, self.context_addr,
                            self.icount)
        body += struct.pack("<iII", self.signo, self.code, self.fault_pc)
        body += struct.pack("<I", len(self.planted))
        for address, original in self.planted:
            body += struct.pack("<IB", address, len(original)) + original
        body += struct.pack("<I", len(self.segments))
        for start, raw in self.segments:
            body += struct.pack("<II", start, len(raw)) + raw
        table = (self.loader_ps or "").encode("utf-8")
        body += struct.pack("<I", len(table)) + table
        return pack_container(MAGIC, CORE_VERSION, bytes(body))

    @classmethod
    def from_bytes(cls, raw: bytes, salvage: bool = False) -> "CoreFile":
        """Parse a serialized core.

        Strict by default: any damage raises :class:`CoreError`.  With
        ``salvage=True``, a truncated or tail-corrupt core is
        recovered on its longest valid prefix — the header, fault
        record, and every memory segment that fully decompressed and
        parsed — with a :class:`SalvagedArtifact` warning naming what
        was lost.  A core damaged before its fault record (or an alien
        or future-format file) still raises."""
        try:
            body = unpack_container(raw, MAGIC, CORE_VERSION, CoreError,
                                    "core")
            try:
                return cls._unpack_body(body)
            except (struct.error, IndexError, UnicodeDecodeError) as exc:
                raise CoreError("malformed core body: %s" % exc)
        except CoreError as err:
            if not salvage:
                raise
            return cls._salvage(raw, err)

    @classmethod
    def _salvage(cls, raw: bytes, err: CoreError) -> "CoreFile":
        body = salvage_container(raw, MAGIC, CORE_VERSION, CoreError, "core")
        try:
            core, _complete = cls._unpack_body(body, tolerate=True)
        except (struct.error, IndexError, UnicodeDecodeError,
                CoreError):
            raise err  # not even the fault record survived
        if not core.arch_name.isidentifier() or core.memsize > (1 << 28):
            # salvage skips the CRC, so rot can decode to nonsense;
            # refuse a header no real target could have produced
            raise err
        core.salvaged = True
        core.salvage_reason = str(err)
        warnings.warn(SalvagedArtifact(
            "core salvaged on its valid prefix: %d segment(s)%s (%s)"
            % (len(core.segments),
               "" if core.loader_ps else ", symbol table lost", err)),
            stacklevel=3)
        return core

    @classmethod
    def _unpack_body(cls, body: bytes, tolerate: bool = False):
        """Parse a core body.  With ``tolerate=True`` (the salvage
        path) the parse commits progressively: damage after the fault
        record keeps every planted entry and segment already parsed
        and answers ``(core, False)``; the strict path answers the
        core alone, raising on any shortfall."""
        offset = 0

        def take(fmt: str):
            nonlocal offset
            values = struct.unpack_from(fmt, body, offset)
            offset += struct.calcsize(fmt)
            return values

        (name_len,) = take("<B")
        arch_name = body[offset:offset + name_len].decode("ascii")
        if len(arch_name) != name_len:
            raise CoreError("truncated core header")
        offset += name_len
        (big,) = take("<B")
        memsize, context_addr, icount = take("<IIQ")
        signo, code, fault_pc = take("<iII")
        # everything below the fault record is salvageable piecemeal
        planted: List[Tuple[int, bytes]] = []
        segments: List[Tuple[int, bytes]] = []
        table = ""
        complete = False
        try:
            (nplanted,) = take("<I")
            for _ in range(nplanted):
                address, size = take("<IB")
                original = body[offset:offset + size]
                if len(original) != size:
                    raise CoreError("truncated planted entry at 0x%x"
                                    % address)
                planted.append((address, original))
                offset += size
            (nsegments,) = take("<I")
            for _ in range(nsegments):
                start, size = take("<II")
                raw = body[offset:offset + size]
                if len(raw) != size:
                    raise CoreError("truncated segment at 0x%x" % start)
                segments.append((start, raw))
                offset += size
            (table_len,) = take("<I")
            table_bytes = body[offset:offset + table_len]
            if len(table_bytes) != table_len:
                raise CoreError("truncated core symbol table")
            table = table_bytes.decode("utf-8")
            complete = True
        except (CoreError, struct.error, IndexError, UnicodeDecodeError):
            if not tolerate:
                raise
        core = cls(arch_name, "big" if big else "little", memsize,
                   context_addr, icount, signo, code, fault_pc, segments,
                   planted=planted, loader_ps=table or None)
        return (core, complete) if tolerate else core

    def dump(self, path: str, fs=None) -> None:
        """Write the core crash-consistently: after this returns (or
        fails, or the process dies) ``path`` is never torn."""
        atomic_write_bytes(path, self.to_bytes(), fs=fs)

    @classmethod
    def load(cls, path: str, salvage: bool = False) -> "CoreFile":
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except OSError as exc:
            raise CoreError("cannot read core file %s: %s" % (path, exc))
        return cls.from_bytes(raw, salvage=salvage)

    # -- reconstruction ---------------------------------------------------

    def memory(self) -> TargetMemory:
        """Rebuild the target's memory image (unstored runs are zero,
        exactly as they were when skipped by the sparse scan)."""
        mem = TargetMemory(self.memsize, byteorder=self.byteorder)
        for start, raw in self.segments:
            if start < 0 or start + len(raw) > self.memsize:
                raise CoreError("segment [0x%x, 0x%x) outside the %d-byte "
                                "image" % (start, start + len(raw),
                                           self.memsize))
            mem.write_bytes(start, raw)
        return mem


def core_from_process(process, signo: int, code: int, fault_pc: int,
                      context_addr: int,
                      planted=None, loader_ps: Optional[str] = None,
                      ) -> CoreFile:
    """Serialize a stopped process (context already saved by the nub at
    ``context_addr``) into a :class:`CoreFile`."""
    mem = process.mem
    if loader_ps is None:
        loader_ps = getattr(process.exe, "loader_ps", None)
    return CoreFile(
        arch_name=process.arch.name,
        byteorder=mem.byteorder,
        memsize=mem.size,
        context_addr=context_addr,
        icount=process.cpu.icount,
        signo=signo, code=code, fault_pc=fault_pc,
        segments=sparse_segments(bytes(mem.bytes)),
        planted=sorted((planted or {}).items()) if isinstance(planted, dict)
        else list(planted or []),
        loader_ps=loader_ps,
    )
