"""A versioned core-file format for post-mortem debugging.

When a target dies — a fatal fault, or an explicit ``dumpcore`` — the
nub serializes everything the debugger's machine-independent core needs
to keep working without a live target: the machine name and byte order,
the saved context address, the retired-instruction count, the fault
record, the planted-breakpoint table, and the memory image itself.

The memory image is stored *sparsely* (all-zero runs are skipped) and
the whole body is zlib-compressed, so a core comfortably fits in one
DUMPCORE reply under the protocol's 1 MiB payload cap.  A CRC32 over
the compressed body catches truncation and bit rot; loading a damaged,
truncated, or future-versioned core raises :class:`CoreError` with a
reason rather than a struct error.

A core may optionally embed the program's loader symbol table (the
PostScript table ``ldb`` reads), which is what lets ``ldb core <file>``
open a core standalone — no executable, no nub, no target.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple

from .chunkio import pack_container, sparse_segments, unpack_container
from .memory import TargetMemory

__all__ = ["MAGIC", "CORE_VERSION", "CoreError", "CoreFile",
           "sparse_segments", "core_from_process"]

MAGIC = b"LDBC"
CORE_VERSION = 1


class CoreError(Exception):
    """A core file that cannot be loaded (damaged, truncated, or from a
    future format version)."""


class CoreFile:
    """One serialized dead (or stopped) target."""

    def __init__(self, arch_name: str, byteorder: str, memsize: int,
                 context_addr: int, icount: int, signo: int, code: int,
                 fault_pc: int,
                 segments: List[Tuple[int, bytes]],
                 planted: Optional[List[Tuple[int, bytes]]] = None,
                 loader_ps: Optional[str] = None):
        self.arch_name = arch_name
        self.byteorder = byteorder
        self.memsize = memsize
        #: where the nub saved the context (registers live here)
        self.context_addr = context_addr
        self.icount = icount
        #: the fault record: why the target stopped for the last time
        self.signo = signo
        self.code = code
        self.fault_pc = fault_pc
        #: sparse memory image: (start address, raw target-order bytes)
        self.segments = segments
        #: planted breakpoints: (address, original little-endian bytes)
        self.planted = list(planted or [])
        #: optional embedded loader symbol table (PostScript text)
        self.loader_ps = loader_ps

    # -- serialization ----------------------------------------------------

    def to_bytes(self) -> bytes:
        body = bytearray()
        name = self.arch_name.encode("ascii")
        body += struct.pack("<B", len(name)) + name
        body += struct.pack("<B", 1 if self.byteorder == "big" else 0)
        body += struct.pack("<IIQ", self.memsize, self.context_addr,
                            self.icount)
        body += struct.pack("<iII", self.signo, self.code, self.fault_pc)
        body += struct.pack("<I", len(self.planted))
        for address, original in self.planted:
            body += struct.pack("<IB", address, len(original)) + original
        body += struct.pack("<I", len(self.segments))
        for start, raw in self.segments:
            body += struct.pack("<II", start, len(raw)) + raw
        table = (self.loader_ps or "").encode("utf-8")
        body += struct.pack("<I", len(table)) + table
        return pack_container(MAGIC, CORE_VERSION, bytes(body))

    @classmethod
    def from_bytes(cls, raw: bytes) -> "CoreFile":
        body = unpack_container(raw, MAGIC, CORE_VERSION, CoreError, "core")
        try:
            return cls._unpack_body(body)
        except (struct.error, IndexError, UnicodeDecodeError) as exc:
            raise CoreError("malformed core body: %s" % exc)

    @classmethod
    def _unpack_body(cls, body: bytes) -> "CoreFile":
        offset = 0

        def take(fmt: str):
            nonlocal offset
            values = struct.unpack_from(fmt, body, offset)
            offset += struct.calcsize(fmt)
            return values

        (name_len,) = take("<B")
        arch_name = body[offset:offset + name_len].decode("ascii")
        offset += name_len
        (big,) = take("<B")
        memsize, context_addr, icount = take("<IIQ")
        signo, code, fault_pc = take("<iII")
        (nplanted,) = take("<I")
        planted = []
        for _ in range(nplanted):
            address, size = take("<IB")
            planted.append((address, body[offset:offset + size]))
            offset += size
        (nsegments,) = take("<I")
        segments = []
        for _ in range(nsegments):
            start, size = take("<II")
            raw = body[offset:offset + size]
            if len(raw) != size:
                raise CoreError("truncated segment at 0x%x" % start)
            segments.append((start, raw))
            offset += size
        (table_len,) = take("<I")
        table = body[offset:offset + table_len].decode("utf-8")
        return cls(arch_name, "big" if big else "little", memsize,
                   context_addr, icount, signo, code, fault_pc, segments,
                   planted=planted, loader_ps=table or None)

    def dump(self, path: str) -> None:
        with open(path, "wb") as handle:
            handle.write(self.to_bytes())

    @classmethod
    def load(cls, path: str) -> "CoreFile":
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except OSError as exc:
            raise CoreError("cannot read core file %s: %s" % (path, exc))
        return cls.from_bytes(raw)

    # -- reconstruction ---------------------------------------------------

    def memory(self) -> TargetMemory:
        """Rebuild the target's memory image (unstored runs are zero,
        exactly as they were when skipped by the sparse scan)."""
        mem = TargetMemory(self.memsize, byteorder=self.byteorder)
        for start, raw in self.segments:
            if start < 0 or start + len(raw) > self.memsize:
                raise CoreError("segment [0x%x, 0x%x) outside the %d-byte "
                                "image" % (start, start + len(raw),
                                           self.memsize))
            mem.write_bytes(start, raw)
        return mem


def core_from_process(process, signo: int, code: int, fault_pc: int,
                      context_addr: int,
                      planted=None, loader_ps: Optional[str] = None,
                      ) -> CoreFile:
    """Serialize a stopped process (context already saved by the nub at
    ``context_addr``) into a :class:`CoreFile`."""
    mem = process.mem
    if loader_ps is None:
        loader_ps = getattr(process.exe, "loader_ps", None)
    return CoreFile(
        arch_name=process.arch.name,
        byteorder=mem.byteorder,
        memsize=mem.size,
        context_addr=context_addr,
        icount=process.cpu.icount,
        signo=signo, code=code, fault_pc=fault_pc,
        segments=sparse_segments(bytes(mem.bytes)),
        planted=sorted((planted or {}).items()) if isinstance(planted, dict)
        else list(planted or []),
        loader_ps=loader_ps,
    )
