"""The rm68k target: the Motorola 68020 analog.

Big-endian, variable-length instructions built from 16-bit words, a frame
pointer (a6) with LINK/UNLK, condition codes, and — the property that
drives the paper's machine-dependent code — **80-bit extended floats**
that the nub must fetch and store specially (Sec. 4.3).  The compiler
adds register-save masks to procedure symbol-table entries for this
target (Sec. 5); the stack-walking code reads them.

Encoding: the first word is ``op(8) r1(4) r2(4)``; extension words carry
16-bit displacements or 32-bit immediates (high word first).  The real
68k encodings of ``NOP`` (0x4E71) and ``BKPT`` (0x4848) are kept.
"""

from __future__ import annotations

import math

from .isa import (
    Arch,
    Insn,
    SIGFPE,
    SIGILL,
    SIGTRAP,
    TargetFault,
    to_i16,
    to_i32,
    to_u32,
)

NOP_WORD = 0x4E71
BKPT_WORD = 0x4848

# op byte -> (name, extension descriptor)
# extensions: "" none, "d" disp16, "i" imm32, "w" imm16, "f" imm64(float)
_OPTABLE = {
    0x01: ("movei", "i"),
    0x02: ("move", ""),
    0x03: ("lea", "d"),
    0x04: ("load32", "d"),
    0x05: ("load16s", "d"),
    0x06: ("load8s", "d"),
    0x07: ("load8u", "d"),
    0x08: ("load16u", "d"),
    0x09: ("store32", "d"),
    0x0A: ("store16", "d"),
    0x0B: ("store8", "d"),
    0x10: ("add", ""),
    0x11: ("sub", ""),
    0x12: ("muls", ""),
    0x13: ("divs", ""),
    0x14: ("rems", ""),
    0x15: ("and", ""),
    0x16: ("or", ""),
    0x17: ("eor", ""),
    0x18: ("lsl", ""),
    0x19: ("lsr", ""),
    0x1A: ("asr", ""),
    0x1B: ("not", ""),
    0x1C: ("neg", ""),
    0x1D: ("divu", ""),
    0x1E: ("remu", ""),
    0x1F: ("tst", ""),
    0x20: ("cmp", ""),
    0x22: ("bra", "d"),
    0x23: ("beq", "d"),
    0x24: ("bne", "d"),
    0x25: ("blt", "d"),
    0x26: ("ble", "d"),
    0x27: ("bgt", "d"),
    0x28: ("bge", "d"),
    0x29: ("bltu", "d"),
    0x2A: ("bleu", "d"),
    0x2B: ("bgtu", "d"),
    0x2C: ("bgeu", "d"),
    0x2D: ("seq", ""),
    0x2E: ("sne", ""),
    0x2F: ("slt", ""),
    0x30: ("sle", ""),
    0x31: ("sgt", ""),
    0x32: ("sge", ""),
    0x33: ("sltu", ""),
    0x34: ("sgtu", ""),
    0x35: ("sleu", ""),
    0x36: ("sgeu", ""),
    0x37: ("push", ""),
    0x38: ("pop", ""),
    0x39: ("link", "d"),
    0x3A: ("unlk", ""),
    0x3B: ("jsr", "i"),
    0x3C: ("rts", ""),
    0x3D: ("jsrr", ""),
    0x40: ("syscall", "w"),
    0x41: ("lsli", "w"),
    0x42: ("lsri", "w"),
    0x43: ("asri", "w"),
    0x50: ("fmove", ""),
    0x52: ("fload32", "d"),
    0x53: ("fload64", "d"),
    0x54: ("fload80", "d"),
    0x55: ("fstore32", "d"),
    0x56: ("fstore64", "d"),
    0x57: ("fstore80", "d"),
    0x58: ("fadd", ""),
    0x59: ("fsub", ""),
    0x5A: ("fmul", ""),
    0x5B: ("fdiv", ""),
    0x5C: ("fneg", ""),
    0x5D: ("fitod", ""),
    0x5E: ("fdtoi", ""),
    0x5F: ("fcmp", ""),
    0x60: ("fmovei", "f"),
}
_OPS = {name: (byte, ext) for byte, (name, ext) in _OPTABLE.items()}

_FAST_ALU = frozenset(["add", "sub", "muls", "and", "or", "eor",
                       "lsl", "lsr", "asr"])
_CC_BRANCHES = frozenset(["beq", "bne", "blt", "ble", "bgt", "bge",
                          "bltu", "bleu", "bgtu", "bgeu"])
_CC_SETS = frozenset(["seq", "sne", "slt", "sle", "sgt", "sge",
                      "sltu", "sgtu", "sleu", "sgeu"])
#: condition tests as prebuilt closures (same table as _cc_test, but
#: resolvable at block-compile time)
_CC_FUNCS = {
    "eq": lambda cpu: cpu.cc_eq,
    "ne": lambda cpu: not cpu.cc_eq,
    "lt": lambda cpu: cpu.cc_lt,
    "le": lambda cpu: cpu.cc_lt or cpu.cc_eq,
    "gt": lambda cpu: not (cpu.cc_lt or cpu.cc_eq),
    "ge": lambda cpu: not cpu.cc_lt,
    "ltu": lambda cpu: cpu.cc_ltu,
    "leu": lambda cpu: cpu.cc_ltu or cpu.cc_eq,
    "gtu": lambda cpu: not (cpu.cc_ltu or cpu.cc_eq),
    "geu": lambda cpu: not cpu.cc_ltu,
}

REG_SP = 15  # a7
REG_FP = 14  # a6
REG_RETVAL = 0  # d0
DATA_REGS = tuple(range(0, 8))
ADDR_REGS = tuple(range(8, 16))
TEMP_REGS = (1, 2, 3)            # d1-d3: caller-trashed evaluation regs
SAVED_REGS = (4, 5, 6, 7)        # d4-d7: callee-saved (register variables)
ADDR_TEMP = 8                    # a0: address scratch
FTEMP_REGS = (1, 2, 3)
FRET_REG = 0


class RM68kArch(Arch):
    name = "rm68k"
    byteorder = "big"
    insn_align = 2  # instructions are fetched as 16-bit words
    nregs = 16
    nfregs = 8
    zero_reg = False
    sp = REG_SP
    fp = REG_FP
    ra = None  # return address lives on the stack
    arg_regs = ()
    ret_reg = REG_RETVAL
    has_f80 = True
    reg_names = ("d0", "d1", "d2", "d3", "d4", "d5", "d6", "d7",
                 "a0", "a1", "a2", "a3", "a4", "a5", "fp", "sp")

    def __init__(self):
        self.nop_bytes = NOP_WORD.to_bytes(2, "big")
        self.break_bytes = BKPT_WORD.to_bytes(2, "big")

    # -- encoding ---------------------------------------------------------

    def encode(self, insn: Insn) -> bytes:
        if insn.op == "nop":
            insn.size = 2
            return self.nop_bytes
        if insn.op == "break":
            insn.size = 2
            return self.break_bytes
        byte, ext = _OPS[insn.op]
        first = (byte << 8) | ((insn.rd or 0) & 15) << 4 | ((insn.rs or 0) & 15)
        words = [first]
        if ext == "d":
            disp = insn.imm or 0
            if not isinstance(disp, int):
                raise ValueError("unresolved displacement %r in %r" % (disp, insn))
            if not -(1 << 15) <= disp < (1 << 15):
                raise ValueError("disp16 %d out of range" % disp)
            words.append(disp & 0xFFFF)
        elif ext == "i":
            imm = insn.imm if insn.op != "jsr" else insn.target
            if not isinstance(imm, int):
                raise ValueError("unresolved imm32 %r in %r" % (imm, insn))
            imm &= 0xFFFFFFFF
            words.append(imm >> 16)
            words.append(imm & 0xFFFF)
        elif ext == "w":
            words.append((insn.imm or 0) & 0xFFFF)
        elif ext == "f":
            import struct
            raw = struct.pack(">d", float(insn.imm or 0.0))
            for i in range(0, 8, 2):
                words.append(int.from_bytes(raw[i : i + 2], "big"))
        data = b"".join(w.to_bytes(2, "big") for w in words)
        insn.size = len(data)
        return data

    def decode(self, mem, address: int) -> Insn:
        first = mem.read_uint(address, 2)
        if first == NOP_WORD:
            insn = Insn("nop")
            insn.size = 2
            return insn
        if first == BKPT_WORD:
            insn = Insn("break")
            insn.size = 2
            return insn
        entry = _OPTABLE.get(first >> 8)
        if entry is None:
            raise TargetFault(SIGILL, code=first, address=address)
        name, ext = entry
        insn = Insn(name, rd=(first >> 4) & 15, rs=first & 15)
        size = 2
        if ext == "d":
            insn.imm = to_i16(mem.read_uint(address + 2, 2))
            size = 4
        elif ext == "i":
            value = mem.read_uint(address + 2, 2) << 16 | mem.read_uint(address + 4, 2)
            if name == "jsr":
                insn.target = value
            else:
                insn.imm = to_i32(value)
            size = 6
        elif ext == "w":
            insn.imm = mem.read_uint(address + 2, 2)
            size = 4
        elif ext == "f":
            import struct
            raw = b"".join(
                mem.read_uint(address + 2 + i, 2).to_bytes(2, "big")
                for i in range(0, 8, 2))
            insn.imm = struct.unpack(">d", raw)[0]
            size = 10
        insn.size = size
        return insn

    def insn_length(self, insn: Insn) -> int:
        if insn.op in ("nop", "break"):
            return 2
        ext = _OPS[insn.op][1]
        return {"": 2, "d": 4, "w": 4, "i": 6, "f": 10}[ext]

    # -- block dispatch ----------------------------------------------------

    block_enders = frozenset([
        "break", "syscall", "bra",
        "beq", "bne", "blt", "ble", "bgt", "bge",
        "bltu", "bleu", "bgtu", "bgeu",
        "jsr", "jsrr", "rts",
    ])

    mem_write_ops = frozenset([
        "store32", "store16", "store8", "push", "link", "jsr", "jsrr",
        "fstore32", "fstore64", "fstore80", "syscall"])

    def compile_insn(self, insn: Insn, pc: int):
        """Prebuilt execute bodies for the hot integer subset; division
        and float ops fall back to :meth:`execute`."""
        op = insn.op
        rd = insn.rd
        rs = insn.rs
        imm = insn.imm
        M = 0xFFFFFFFF
        npc = (pc + insn.size) & M

        if op == "nop":
            def body(cpu):
                cpu.pc = npc
            return body
        if op == "break":
            def body(cpu):
                raise TargetFault(SIGTRAP, code=0, address=pc)
            return body
        if op == "syscall":
            code = imm or 0

            def body(cpu):
                cpu.syscall(code)
                cpu.pc = npc
            return body

        # -- moves and loads ---------------------------------------------
        if op == "movei":
            val = imm & M

            def body(cpu):
                cpu.regs[rd] = val
                cpu.pc = npc
            return body
        if op == "move":
            def body(cpu):
                cpu.regs[rd] = cpu.regs[rs]
                cpu.pc = npc
            return body
        if op == "lea":
            def body(cpu):
                cpu.regs[rd] = (cpu.regs[rs] + imm) & M
                cpu.pc = npc
            return body
        if op in ("load32", "load16s", "load16u", "load8s", "load8u"):
            if op == "load32":
                def load(cpu):
                    return cpu.mem.read_u32((cpu.regs[rs] + imm) & M)
            elif op == "load16s":
                def load(cpu):
                    return cpu.mem.read_i16((cpu.regs[rs] + imm) & M) & M
            elif op == "load16u":
                def load(cpu):
                    return cpu.mem.read_u16((cpu.regs[rs] + imm) & M)
            elif op == "load8s":
                def load(cpu):
                    return cpu.mem.read_i8((cpu.regs[rs] + imm) & M) & M
            else:
                def load(cpu):
                    return cpu.mem.read_u8((cpu.regs[rs] + imm) & M)

            def body(cpu):
                cpu.regs[rd] = load(cpu)
                cpu.pc = npc
            return body
        if op == "store32":
            def body(cpu):
                cpu.mem.write_u32((cpu.regs[rd] + imm) & M, cpu.regs[rs])
                cpu.pc = npc
            return body
        if op == "store16":
            def body(cpu):
                cpu.mem.write_u16((cpu.regs[rd] + imm) & M,
                                  cpu.regs[rs] & 0xFFFF)
                cpu.pc = npc
            return body
        if op == "store8":
            def body(cpu):
                cpu.mem.write_u8((cpu.regs[rd] + imm) & M,
                                 cpu.regs[rs] & 0xFF)
                cpu.pc = npc
            return body

        # -- two-address ALU (dst also the left operand) -----------------
        if op in _FAST_ALU:
            if op == "add":
                def compute(a, b):
                    return (a + b) & M
            elif op == "sub":
                def compute(a, b):
                    return (a - b) & M
            elif op == "muls":
                def compute(a, b):
                    return (to_i32(a) * to_i32(b)) & M
            elif op == "and":
                def compute(a, b):
                    return a & b
            elif op == "or":
                def compute(a, b):
                    return a | b
            elif op == "eor":
                def compute(a, b):
                    return a ^ b
            elif op == "lsl":
                def compute(a, b):
                    return (a << (b & 31)) & M
            elif op == "lsr":
                def compute(a, b):
                    return a >> (b & 31)
            else:  # asr
                def compute(a, b):
                    return (to_i32(a) >> (b & 31)) & M

            def body(cpu):
                regs = cpu.regs
                regs[rd] = compute(regs[rd], regs[rs])
                cpu.pc = npc
            return body
        if op == "not":
            def body(cpu):
                cpu.regs[rd] = ~cpu.regs[rd] & M
                cpu.pc = npc
            return body
        if op == "neg":
            def body(cpu):
                cpu.regs[rd] = -cpu.regs[rd] & M
                cpu.pc = npc
            return body
        if op in ("lsli", "lsri", "asri"):
            sh = imm & 31
            if op == "lsli":
                def body(cpu):
                    cpu.regs[rd] = (cpu.regs[rd] << sh) & M
                    cpu.pc = npc
            elif op == "lsri":
                def body(cpu):
                    cpu.regs[rd] = cpu.regs[rd] >> sh
                    cpu.pc = npc
            else:
                def body(cpu):
                    cpu.regs[rd] = (to_i32(cpu.regs[rd]) >> sh) & M
                    cpu.pc = npc
            return body

        # -- condition codes ---------------------------------------------
        if op == "cmp":
            def body(cpu):
                regs = cpu.regs
                cpu.set_cc(regs[rd], regs[rs])
                cpu.pc = npc
            return body
        if op == "tst":
            def body(cpu):
                cpu.set_cc(cpu.regs[rd], 0)
                cpu.pc = npc
            return body
        if op == "bra":
            taken = (pc + insn.size + imm) & M

            def body(cpu):
                cpu.pc = taken
            return body
        if op in _CC_BRANCHES:
            taken = (pc + insn.size + imm) & M
            test = _CC_FUNCS[op[1:]]

            def body(cpu):
                cpu.pc = taken if test(cpu) else npc
            return body
        if op in _CC_SETS:
            test = _CC_FUNCS[op[1:]]

            def body(cpu):
                cpu.regs[rd] = 1 if test(cpu) else 0
                cpu.pc = npc
            return body

        # -- stack and calls ---------------------------------------------
        if op == "push":
            def body(cpu):
                regs = cpu.regs
                sp = (regs[REG_SP] - 4) & M
                regs[REG_SP] = sp
                cpu.mem.write_u32(sp, regs[rs])
                cpu.pc = npc
            return body
        if op == "pop":
            def body(cpu):
                regs = cpu.regs
                sp = regs[REG_SP]
                value = cpu.mem.read_u32(sp)
                regs[rd] = value
                regs[REG_SP] = (sp + 4) & M
                cpu.pc = npc
            return body
        if op == "link":
            size = imm or 0

            def body(cpu):
                regs = cpu.regs
                sp = (regs[REG_SP] - 4) & M
                cpu.mem.write_u32(sp, regs[REG_FP])
                regs[REG_FP] = sp
                regs[REG_SP] = (sp - size) & M
                cpu.pc = npc
            return body
        if op == "unlk":
            def body(cpu):
                regs = cpu.regs
                fp = regs[REG_FP]
                regs[REG_SP] = (fp + 4) & M
                regs[REG_FP] = cpu.mem.read_u32(fp)
                cpu.pc = npc
            return body
        if op == "jsr":
            target = insn.target & M

            def body(cpu):
                regs = cpu.regs
                sp = (regs[REG_SP] - 4) & M
                regs[REG_SP] = sp
                cpu.mem.write_u32(sp, npc)
                cpu.pc = target
            return body
        if op == "jsrr":
            def body(cpu):
                regs = cpu.regs
                sp = (regs[REG_SP] - 4) & M
                regs[REG_SP] = sp
                cpu.mem.write_u32(sp, npc)
                cpu.pc = regs[rs]
            return body
        if op == "rts":
            def body(cpu):
                regs = cpu.regs
                sp = regs[REG_SP]
                target = cpu.mem.read_u32(sp)
                regs[REG_SP] = (sp + 4) & M
                cpu.pc = target
            return body

        return None  # divisions, floats: the generic execute path

    # -- execution ---------------------------------------------------------

    def execute(self, cpu, insn: Insn) -> None:
        op = insn.op
        next_pc = cpu.pc + insn.size
        R = cpu.get_reg
        mem = cpu.mem
        if op == "nop":
            pass
        elif op == "break":
            raise TargetFault(SIGTRAP, code=0, address=cpu.pc)
        elif op == "syscall":
            cpu.syscall(insn.imm or 0)
        elif op == "movei":
            cpu.set_reg(insn.rd, insn.imm)
        elif op == "move":
            cpu.set_reg(insn.rd, R(insn.rs))
        elif op == "lea":
            cpu.set_reg(insn.rd, R(insn.rs) + insn.imm)
        elif op == "load32":
            cpu.set_reg(insn.rd, mem.read_u32(to_u32(R(insn.rs) + insn.imm)))
        elif op == "load16s":
            cpu.set_reg(insn.rd, mem.read_i16(to_u32(R(insn.rs) + insn.imm)))
        elif op == "load16u":
            cpu.set_reg(insn.rd, mem.read_u16(to_u32(R(insn.rs) + insn.imm)))
        elif op == "load8s":
            cpu.set_reg(insn.rd, mem.read_i8(to_u32(R(insn.rs) + insn.imm)))
        elif op == "load8u":
            cpu.set_reg(insn.rd, mem.read_u8(to_u32(R(insn.rs) + insn.imm)))
        elif op == "store32":
            mem.write_u32(to_u32(R(insn.rd) + insn.imm), R(insn.rs))
        elif op == "store16":
            mem.write_u16(to_u32(R(insn.rd) + insn.imm), R(insn.rs) & 0xFFFF)
        elif op == "store8":
            mem.write_u8(to_u32(R(insn.rd) + insn.imm), R(insn.rs) & 0xFF)
        elif op in ("add", "sub", "muls", "divs", "rems", "divu", "remu",
                    "and", "or", "eor", "lsl", "lsr", "asr"):
            a = R(insn.rd)
            b = R(insn.rs)
            if op == "add":
                result = a + b
            elif op == "sub":
                result = a - b
            elif op == "muls":
                result = to_i32(a) * to_i32(b)
            elif op in ("divu", "remu"):
                if b == 0:
                    raise TargetFault(SIGFPE, code=0, address=cpu.pc)
                result = a // b if op == "divu" else a % b
            elif op in ("divs", "rems"):
                divisor = to_i32(b)
                if divisor == 0:
                    raise TargetFault(SIGFPE, code=0, address=cpu.pc)
                dividend = to_i32(a)
                quotient = abs(dividend) // abs(divisor)
                if (dividend < 0) != (divisor < 0):
                    quotient = -quotient
                result = quotient if op == "divs" else dividend - quotient * divisor
            elif op == "and":
                result = a & b
            elif op == "or":
                result = a | b
            elif op == "eor":
                result = a ^ b
            elif op == "lsl":
                result = a << (b & 31)
            elif op == "lsr":
                result = a >> (b & 31)
            else:  # asr
                result = to_i32(a) >> (b & 31)
            cpu.set_reg(insn.rd, result)
        elif op == "not":
            cpu.set_reg(insn.rd, ~R(insn.rd))
        elif op == "neg":
            cpu.set_reg(insn.rd, -R(insn.rd))
        elif op == "cmp":
            cpu.set_cc(R(insn.rd), R(insn.rs))
        elif op == "tst":
            cpu.set_cc(R(insn.rd), 0)
        elif op == "lsli":
            cpu.set_reg(insn.rd, R(insn.rd) << (insn.imm & 31))
        elif op == "lsri":
            cpu.set_reg(insn.rd, R(insn.rd) >> (insn.imm & 31))
        elif op == "asri":
            cpu.set_reg(insn.rd, to_i32(R(insn.rd)) >> (insn.imm & 31))
        elif op == "bra":
            next_pc = cpu.pc + insn.size + insn.imm
        elif op in ("beq", "bne", "blt", "ble", "bgt", "bge",
                    "bltu", "bleu", "bgtu", "bgeu"):
            if _cc_test(cpu, op[1:]):
                next_pc = cpu.pc + insn.size + insn.imm
        elif op in ("seq", "sne", "slt", "sle", "sgt", "sge", "sltu", "sgtu",
                    "sleu", "sgeu"):
            cpu.set_reg(insn.rd, int(_cc_test(cpu, op[1:])))
        elif op == "push":
            sp = to_u32(R(REG_SP) - 4)
            cpu.set_reg(REG_SP, sp)
            mem.write_u32(sp, R(insn.rs))
        elif op == "pop":
            sp = R(REG_SP)
            cpu.set_reg(insn.rd, mem.read_u32(sp))
            cpu.set_reg(REG_SP, sp + 4)
        elif op == "link":
            # push fp; fp = sp; sp -= size
            sp = to_u32(R(REG_SP) - 4)
            mem.write_u32(sp, R(REG_FP))
            cpu.set_reg(REG_FP, sp)
            cpu.set_reg(REG_SP, sp - (insn.imm or 0))
        elif op == "unlk":
            fp = R(REG_FP)
            cpu.set_reg(REG_SP, fp + 4)
            cpu.set_reg(REG_FP, mem.read_u32(fp))
        elif op == "jsr":
            sp = to_u32(R(REG_SP) - 4)
            cpu.set_reg(REG_SP, sp)
            mem.write_u32(sp, cpu.pc + insn.size)
            next_pc = insn.target
        elif op == "jsrr":
            sp = to_u32(R(REG_SP) - 4)
            cpu.set_reg(REG_SP, sp)
            mem.write_u32(sp, cpu.pc + insn.size)
            next_pc = R(insn.rs)
        elif op == "rts":
            sp = R(REG_SP)
            next_pc = mem.read_u32(sp)
            cpu.set_reg(REG_SP, sp + 4)
        elif op == "fmove":
            cpu.fregs[insn.rd] = cpu.fregs[insn.rs]
        elif op == "fmovei":
            cpu.fregs[insn.rd] = insn.imm
        elif op == "fload32":
            cpu.fregs[insn.rd] = mem.read_f32(to_u32(R(insn.rs) + insn.imm))
        elif op == "fload64":
            cpu.fregs[insn.rd] = mem.read_f64(to_u32(R(insn.rs) + insn.imm))
        elif op == "fload80":
            cpu.fregs[insn.rd] = mem.read_f80(to_u32(R(insn.rs) + insn.imm))
        elif op == "fstore32":
            mem.write_f32(to_u32(R(insn.rs) + insn.imm), cpu.fregs[insn.rd])
        elif op == "fstore64":
            mem.write_f64(to_u32(R(insn.rs) + insn.imm), cpu.fregs[insn.rd])
        elif op == "fstore80":
            mem.write_f80(to_u32(R(insn.rs) + insn.imm), cpu.fregs[insn.rd])
        elif op == "fadd":
            cpu.fregs[insn.rd] += cpu.fregs[insn.rs]
        elif op == "fsub":
            cpu.fregs[insn.rd] -= cpu.fregs[insn.rs]
        elif op == "fmul":
            cpu.fregs[insn.rd] *= cpu.fregs[insn.rs]
        elif op == "fdiv":
            if cpu.fregs[insn.rs] == 0.0:
                raise TargetFault(SIGFPE, code=1, address=cpu.pc)
            cpu.fregs[insn.rd] /= cpu.fregs[insn.rs]
        elif op == "fneg":
            cpu.fregs[insn.rd] = -cpu.fregs[insn.rd]
        elif op == "fitod":
            cpu.fregs[insn.rd] = float(to_i32(R(insn.rs)))
        elif op == "fdtoi":
            cpu.set_reg(insn.rd, int(math.trunc(cpu.fregs[insn.rs])))
        elif op == "fcmp":
            a, b = cpu.fregs[insn.rd], cpu.fregs[insn.rs]
            cpu.cc_lt = a < b
            cpu.cc_eq = a == b
            cpu.cc_ltu = a < b
        else:  # pragma: no cover
            raise TargetFault(SIGILL, address=cpu.pc)
        cpu.pc = to_u32(next_pc)


def _cc_test(cpu, cond: str) -> bool:
    if cond == "eq":
        return cpu.cc_eq
    if cond == "ne":
        return not cpu.cc_eq
    if cond == "lt":
        return cpu.cc_lt
    if cond == "le":
        return cpu.cc_lt or cpu.cc_eq
    if cond == "gt":
        return not (cpu.cc_lt or cpu.cc_eq)
    if cond == "ge":
        return not cpu.cc_lt
    if cond == "ltu":
        return cpu.cc_ltu
    if cond == "leu":
        return cpu.cc_ltu or cpu.cc_eq
    if cond == "gtu":
        return not (cpu.cc_ltu or cpu.cc_eq)
    if cond == "geu":
        return not cpu.cc_ltu
    raise ValueError("unknown condition %r" % cond)
