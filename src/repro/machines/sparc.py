"""The rsparc target: the SPARC analog.

Big-endian, fixed 32-bit instructions, *with* a frame pointer — so it
shares the machine-independent linker interface with rm68k and rvax
(paper Sec. 4.3).  Its context is delivered wholesale by the simulated
operating system, which is why its nub has almost no machine-dependent
code (the paper: "there is no other machine-dependent dirt").

Instruction formats::

    A-type:  op(8) rd(5) rs1(5) i(1) simm13/rs2(13)
    S-type:  op(8) rd(5) imm19(19)      # sethi
    J-type:  op(8) target24(24)         # call, word address
"""

from __future__ import annotations

import math

from .isa import (
    Arch,
    Insn,
    SIGFPE,
    SIGILL,
    SIGTRAP,
    TargetFault,
    to_i32,
    to_u32,
)

_OPS = {
    "nop": 0, "break": 1, "syscall": 2,
    "sethi": 3,   # S-type: rd = imm19 << 13
    "add": 4, "sub": 5, "smul": 6, "sdiv": 7, "srem": 8,
    "and": 9, "or": 10, "xor": 11,
    "sll": 12, "srl": 13, "sra": 14,
    "slt": 15, "sltu": 16, "seq": 17, "sne": 18,
    "ld": 19, "ldsb": 20, "ldub": 21, "ldsh": 22, "lduh": 23,
    "st": 24, "stb": 25, "sth": 26,
    "beq": 27, "bne": 28, "blez": 29, "bgtz": 30, "bltz": 31, "bgez": 32,
    "call": 33,   # J-type; return address in r15
    "jmpl": 34,   # jump to register (i=0, rs2) -- also the return
    "callr": 35,  # call through register
    "ldf": 36, "lddf": 37, "stf": 38, "stdf": 39,
    "fadd": 40, "fsub": 41, "fmul": 42, "fdiv": 43,
    "fitod": 44, "fdtoi": 45,
    "fslt": 46, "fsle": 47, "fseq": 48,
    "fneg": 49, "fmov": 50,
    "udiv": 51, "urem": 52,
}
_OP_NAMES = {number: name for name, number in _OPS.items()}

_BRANCHES = frozenset(["beq", "bne", "blez", "bgtz", "bltz", "bgez"])
_FAST_ALU = frozenset(["add", "sub", "smul", "and", "or", "xor",
                       "sll", "srl", "sra", "slt", "sltu", "seq", "sne"])
_MEM_OPS = frozenset(["ld", "ldsb", "ldub", "ldsh", "lduh", "st", "stb", "sth",
                      "ldf", "lddf", "stf", "stdf"])

REG_ZERO = 0
REG_RETVAL = 8    # o0
REG_SP = 14
REG_RA = 15       # o7
REG_FP = 30
ARG_REGS = (8, 9, 10, 11, 12, 13)
TEMP_REGS = tuple(range(16, 24))  # l0..l7, caller-trashed here
FTEMP_REGS = tuple(range(2, 8))
FRET_REG = 0


class RSparcArch(Arch):
    name = "rsparc"
    byteorder = "big"
    insn_align = 4
    nregs = 32
    nfregs = 8
    zero_reg = True
    sp = REG_SP
    fp = REG_FP
    ra = REG_RA
    arg_regs = ARG_REGS
    ret_reg = REG_RETVAL
    reg_names = tuple(
        ["g%d" % i for i in range(8)]
        + ["o0", "o1", "o2", "o3", "o4", "o5", "sp", "o7"]
        + ["l%d" % i for i in range(8)]
        + ["i0", "i1", "i2", "i3", "i4", "i5", "fp", "i7"])

    def __init__(self):
        self.nop_bytes = (0).to_bytes(4, self.byteorder)
        self.break_bytes = (_OPS["break"] << 24).to_bytes(4, self.byteorder)

    # -- encoding ---------------------------------------------------------

    def encode(self, insn: Insn) -> bytes:
        op = insn.op
        number = _OPS[op]
        if op in ("call",):
            target = insn.target
            if not isinstance(target, int):
                raise ValueError("unresolved target %r" % (target,))
            word = (number << 24) | ((target >> 2) & 0x00FFFFFF)
        elif op == "sethi":
            imm = insn.imm
            if not isinstance(imm, int):
                raise ValueError("unresolved sethi immediate %r" % (imm,))
            word = (number << 24) | ((insn.rd or 0) << 19) | (imm & 0x7FFFF)
        elif insn.imm is not None:
            imm = insn.imm
            if not isinstance(imm, int):
                raise ValueError("unresolved immediate %r in %r" % (imm, insn))
            if not -(1 << 12) <= imm < (1 << 12):
                raise ValueError("simm13 %d out of range" % imm)
            word = ((number << 24) | ((insn.rd or 0) << 19)
                    | ((insn.rs or 0) << 14) | (1 << 13) | (imm & 0x1FFF))
        else:
            word = ((number << 24) | ((insn.rd or 0) << 19)
                    | ((insn.rs or 0) << 14) | ((insn.rt or 0) & 0x1FFF))
        insn.size = 4
        return word.to_bytes(4, self.byteorder)

    def decode(self, mem, address: int) -> Insn:
        word = mem.read_uint(address, 4)
        number = word >> 24
        name = _OP_NAMES.get(number)
        if name is None:
            raise TargetFault(SIGILL, code=number, address=address)
        if name == "call":
            insn = Insn(name, target=(word & 0x00FFFFFF) << 2)
        elif name == "sethi":
            insn = Insn(name, rd=(word >> 19) & 31, imm=word & 0x7FFFF)
        elif (word >> 13) & 1:
            simm = word & 0x1FFF
            if simm >= 1 << 12:
                simm -= 1 << 13
            insn = Insn(name, rd=(word >> 19) & 31, rs=(word >> 14) & 31, imm=simm)
        else:
            insn = Insn(name, rd=(word >> 19) & 31, rs=(word >> 14) & 31,
                        rt=word & 0x1FFF)
        insn.size = 4
        return insn

    def insn_length(self, insn: Insn) -> int:
        return 4

    # -- block dispatch ----------------------------------------------------

    block_enders = frozenset([
        "break", "syscall",
        "beq", "bne", "blez", "bgtz", "bltz", "bgez",
        "call", "callr", "jmpl",
    ])

    mem_write_ops = frozenset(["st", "stb", "sth", "stf", "stdf", "syscall"])

    def compile_insn(self, insn: Insn, pc: int):
        """Prebuilt execute bodies for the hot integer subset; float
        and division ops fall back to :meth:`execute`."""
        op = insn.op
        rd = insn.rd
        rs = insn.rs
        rt = insn.rt
        imm = insn.imm
        M = 0xFFFFFFFF
        npc = (pc + 4) & M

        if op == "nop":
            def body(cpu):
                cpu.pc = npc
            return body

        if op == "break":
            def body(cpu):
                raise TargetFault(SIGTRAP, code=0, address=pc)
            return body

        if op == "syscall":
            code = imm or 0

            def body(cpu):
                cpu.syscall(code)
                cpu.pc = npc
            return body

        if op == "sethi":
            val = ((imm & 0x7FFFF) << 13) & M
            if rd == 0:
                def body(cpu):
                    cpu.pc = npc
            else:
                def body(cpu):
                    cpu.regs[rd] = val
                    cpu.pc = npc
            return body

        # -- ALU: a OP b into rd; b is rs2 or simm13 ---------------------
        if op in _FAST_ALU:
            # _operand: a positive immediate is masked, a negative one
            # stays a negative python int (set_reg masks the result)
            use_imm = imm is not None
            bval = (imm & M if imm >= 0 else imm) if use_imm else 0

            if rd != 0 and op in ("slt", "sltu", "seq", "sne"):
                if use_imm:
                    bm = bval & M
                    bs = to_i32(bval)
                    if op == "slt":
                        def body(cpu):
                            v = cpu.regs[rs]
                            cpu.regs[rd] = \
                                1 if (v - 0x100000000 if v >= 0x80000000
                                      else v) < bs else 0
                            cpu.pc = npc
                    elif op == "sltu":
                        def body(cpu):
                            cpu.regs[rd] = 1 if cpu.regs[rs] < bm else 0
                            cpu.pc = npc
                    elif op == "seq":
                        def body(cpu):
                            cpu.regs[rd] = 1 if cpu.regs[rs] == bm else 0
                            cpu.pc = npc
                    else:
                        def body(cpu):
                            cpu.regs[rd] = 1 if cpu.regs[rs] != bm else 0
                            cpu.pc = npc
                else:
                    if op == "slt":
                        def body(cpu):
                            regs = cpu.regs
                            a = regs[rs]
                            b = regs[rt]
                            if a >= 0x80000000:
                                a -= 0x100000000
                            if b >= 0x80000000:
                                b -= 0x100000000
                            regs[rd] = 1 if a < b else 0
                            cpu.pc = npc
                    elif op == "sltu":
                        def body(cpu):
                            regs = cpu.regs
                            regs[rd] = 1 if regs[rs] < regs[rt] else 0
                            cpu.pc = npc
                    elif op == "seq":
                        def body(cpu):
                            regs = cpu.regs
                            regs[rd] = 1 if regs[rs] == regs[rt] else 0
                            cpu.pc = npc
                    else:
                        def body(cpu):
                            regs = cpu.regs
                            regs[rd] = 1 if regs[rs] != regs[rt] else 0
                            cpu.pc = npc
                return body

            # the hottest ops get fully fused bodies (no compute hop)
            if rd != 0 and op in ("add", "sub", "or"):
                if use_imm:
                    if op == "add":
                        def body(cpu):
                            regs = cpu.regs
                            regs[rd] = (regs[rs] + bval) & M
                            cpu.pc = npc
                    elif op == "sub":
                        def body(cpu):
                            regs = cpu.regs
                            regs[rd] = (regs[rs] - bval) & M
                            cpu.pc = npc
                    else:
                        def body(cpu):
                            regs = cpu.regs
                            regs[rd] = (regs[rs] | bval) & M
                            cpu.pc = npc
                else:
                    if op == "add":
                        def body(cpu):
                            regs = cpu.regs
                            regs[rd] = (regs[rs] + regs[rt]) & M
                            cpu.pc = npc
                    elif op == "sub":
                        def body(cpu):
                            regs = cpu.regs
                            regs[rd] = (regs[rs] - regs[rt]) & M
                            cpu.pc = npc
                    else:
                        def body(cpu):
                            regs = cpu.regs
                            regs[rd] = (regs[rs] | regs[rt]) & M
                            cpu.pc = npc
                return body

            if op == "add":
                def compute(regs, b):
                    return (regs[rs] + b) & M
            elif op == "sub":
                def compute(regs, b):
                    return (regs[rs] - b) & M
            elif op == "smul":
                def compute(regs, b):
                    return (to_i32(regs[rs]) * to_i32(b)) & M
            elif op == "and":
                def compute(regs, b):
                    return (regs[rs] & b) & M
            elif op == "or":
                def compute(regs, b):
                    return (regs[rs] | b) & M
            elif op == "xor":
                def compute(regs, b):
                    return (regs[rs] ^ b) & M
            elif op == "sll":
                def compute(regs, b):
                    return (regs[rs] << (b & 31)) & M
            elif op == "srl":
                def compute(regs, b):
                    return (regs[rs] & M) >> (b & 31)
            elif op == "sra":
                def compute(regs, b):
                    return (to_i32(regs[rs]) >> (b & 31)) & M
            elif op == "slt":
                def compute(regs, b):
                    return int(to_i32(regs[rs]) < to_i32(b))
            elif op == "sltu":
                def compute(regs, b):
                    return int(regs[rs] < (b & M))
            elif op == "seq":
                def compute(regs, b):
                    return int(regs[rs] == (b & M))
            else:  # sne
                def compute(regs, b):
                    return int(regs[rs] != (b & M))

            if rd == 0:  # the hardwired zero register: the write vanishes
                def body(cpu):
                    cpu.pc = npc
            elif use_imm:
                def body(cpu):
                    cpu.regs[rd] = compute(cpu.regs, bval)
                    cpu.pc = npc
            else:
                def body(cpu):
                    regs = cpu.regs
                    regs[rd] = compute(regs, regs[rt])
                    cpu.pc = npc
            return body

        # -- memory (loads land immediately: no delay slot here) ---------
        if op in ("ld", "ldsb", "ldub", "ldsh", "lduh"):
            disp = imm or 0
            if rd == 0:
                # g0: the read (and any fault) happens, the write vanishes
                reader = {"ld": "read_u32", "ldsb": "read_i8",
                          "ldub": "read_u8", "ldsh": "read_i16",
                          "lduh": "read_u16"}[op]

                def body(cpu):
                    getattr(cpu.mem, reader)((cpu.regs[rs] + disp) & M)
                    cpu.pc = npc
            elif op == "ld":
                def body(cpu):
                    cpu.regs[rd] = cpu.mem.read_u32((cpu.regs[rs] + disp) & M)
                    cpu.pc = npc
            elif op == "ldsb":
                def body(cpu):
                    cpu.regs[rd] = cpu.mem.read_i8(
                        (cpu.regs[rs] + disp) & M) & M
                    cpu.pc = npc
            elif op == "ldub":
                def body(cpu):
                    cpu.regs[rd] = cpu.mem.read_u8((cpu.regs[rs] + disp) & M)
                    cpu.pc = npc
            elif op == "ldsh":
                def body(cpu):
                    cpu.regs[rd] = cpu.mem.read_i16(
                        (cpu.regs[rs] + disp) & M) & M
                    cpu.pc = npc
            else:
                def body(cpu):
                    cpu.regs[rd] = cpu.mem.read_u16((cpu.regs[rs] + disp) & M)
                    cpu.pc = npc
            return body

        if op in ("st", "stb", "sth"):
            disp = imm or 0
            if op == "st":
                def body(cpu):
                    cpu.mem.write_u32((cpu.regs[rs] + disp) & M, cpu.regs[rd])
                    cpu.pc = npc
            elif op == "stb":
                def body(cpu):
                    cpu.mem.write_u8((cpu.regs[rs] + disp) & M,
                                     cpu.regs[rd] & 0xFF)
                    cpu.pc = npc
            else:
                def body(cpu):
                    cpu.mem.write_u16((cpu.regs[rs] + disp) & M,
                                      cpu.regs[rd] & 0xFFFF)
                    cpu.pc = npc
            return body

        # -- control transfers -------------------------------------------
        if op in _BRANCHES:
            taken = (pc + 4 + ((imm or 0) << 2)) & M
            if op == "beq":
                def body(cpu):
                    regs = cpu.regs
                    cpu.pc = taken if regs[rd] == regs[rs] else npc
            elif op == "bne":
                def body(cpu):
                    regs = cpu.regs
                    cpu.pc = taken if regs[rd] != regs[rs] else npc
            elif op == "blez":
                def body(cpu):
                    v = cpu.regs[rd]
                    cpu.pc = taken if (v == 0 or v >= 0x80000000) else npc
            elif op == "bgtz":
                def body(cpu):
                    v = cpu.regs[rd]
                    cpu.pc = taken if 0 < v < 0x80000000 else npc
            elif op == "bltz":
                def body(cpu):
                    cpu.pc = taken if cpu.regs[rd] >= 0x80000000 else npc
            else:  # bgez
                def body(cpu):
                    cpu.pc = taken if cpu.regs[rd] < 0x80000000 else npc
            return body

        if op == "call":
            target = insn.target & M

            def body(cpu):
                cpu.regs[REG_RA] = npc
                cpu.pc = target
            return body
        if op == "callr":
            def body(cpu):
                cpu.regs[REG_RA] = npc
                cpu.pc = cpu.regs[rs]
            return body
        if op == "jmpl":
            disp = imm or 0

            def body(cpu):
                cpu.pc = (cpu.regs[rs] + disp) & M
            return body

        return None  # divisions, floats: the generic execute path

    # -- execution ---------------------------------------------------------

    def _operand(self, cpu, insn: Insn) -> int:
        """The second ALU operand: rs2 or simm13."""
        if insn.imm is not None:
            return insn.imm & 0xFFFFFFFF if insn.imm >= 0 else insn.imm
        return cpu.get_reg(insn.rt)

    def execute(self, cpu, insn: Insn) -> None:
        op = insn.op
        next_pc = cpu.pc + 4
        R = cpu.get_reg
        if op == "nop":
            pass
        elif op == "break":
            raise TargetFault(SIGTRAP, code=0, address=cpu.pc)
        elif op == "syscall":
            cpu.syscall(insn.imm or 0)
        elif op == "sethi":
            cpu.set_reg(insn.rd, (insn.imm & 0x7FFFF) << 13)
        elif op in ("add", "sub", "smul", "sdiv", "srem", "udiv", "urem",
                    "and", "or", "xor",
                    "sll", "srl", "sra", "slt", "sltu", "seq", "sne"):
            a = R(insn.rs)
            b = self._operand(cpu, insn)
            if op == "add":
                result = a + b
            elif op == "sub":
                result = a - b
            elif op == "smul":
                result = to_i32(a) * to_i32(b)
            elif op in ("udiv", "urem"):
                divisor = to_u32(b)
                if divisor == 0:
                    raise TargetFault(SIGFPE, code=0, address=cpu.pc)
                if op == "udiv":
                    result = to_u32(a) // divisor
                else:
                    result = to_u32(a) % divisor
            elif op in ("sdiv", "srem"):
                divisor = to_i32(b)
                if divisor == 0:
                    raise TargetFault(SIGFPE, code=0, address=cpu.pc)
                dividend = to_i32(a)
                quotient = abs(dividend) // abs(divisor)
                if (dividend < 0) != (divisor < 0):
                    quotient = -quotient
                if op == "sdiv":
                    result = quotient
                else:
                    result = dividend - quotient * divisor
            elif op == "and":
                result = a & b
            elif op == "or":
                result = a | b
            elif op == "xor":
                result = a ^ b
            elif op == "sll":
                result = a << (b & 31)
            elif op == "srl":
                result = (a & 0xFFFFFFFF) >> (b & 31)
            elif op == "sra":
                result = to_i32(a) >> (b & 31)
            elif op == "slt":
                result = int(to_i32(a) < to_i32(b))
            elif op == "sltu":
                result = int(to_u32(a) < to_u32(b))
            elif op == "seq":
                result = int(to_u32(a) == to_u32(b))
            else:  # sne
                result = int(to_u32(a) != to_u32(b))
            cpu.set_reg(insn.rd, result)
        elif op in _MEM_OPS:
            address = to_u32(R(insn.rs) + (insn.imm or 0))
            if op == "ld":
                cpu.set_reg(insn.rd, cpu.mem.read_u32(address))
            elif op == "ldsb":
                cpu.set_reg(insn.rd, cpu.mem.read_i8(address))
            elif op == "ldub":
                cpu.set_reg(insn.rd, cpu.mem.read_u8(address))
            elif op == "ldsh":
                cpu.set_reg(insn.rd, cpu.mem.read_i16(address))
            elif op == "lduh":
                cpu.set_reg(insn.rd, cpu.mem.read_u16(address))
            elif op == "st":
                cpu.mem.write_u32(address, R(insn.rd))
            elif op == "stb":
                cpu.mem.write_u8(address, R(insn.rd) & 0xFF)
            elif op == "sth":
                cpu.mem.write_u16(address, R(insn.rd) & 0xFFFF)
            elif op == "ldf":
                cpu.fregs[insn.rd] = cpu.mem.read_f32(address)
            elif op == "lddf":
                cpu.fregs[insn.rd] = cpu.mem.read_f64(address)
            elif op == "stf":
                cpu.mem.write_f32(address, cpu.fregs[insn.rd])
            else:  # stdf
                cpu.mem.write_f64(address, cpu.fregs[insn.rd])
        elif op in _BRANCHES:
            # branches compare rd against rs (beq/bne) or against zero;
            # the word displacement travels in simm13.
            value = to_i32(R(insn.rd))
            if op == "beq":
                taken = to_u32(R(insn.rd)) == to_u32(R(insn.rs))
            elif op == "bne":
                taken = to_u32(R(insn.rd)) != to_u32(R(insn.rs))
            elif op == "blez":
                taken = value <= 0
            elif op == "bgtz":
                taken = value > 0
            elif op == "bltz":
                taken = value < 0
            else:  # bgez
                taken = value >= 0
            if taken:
                next_pc = cpu.pc + 4 + ((insn.imm or 0) << 2)
        elif op == "call":
            cpu.set_reg(REG_RA, cpu.pc + 4)
            next_pc = insn.target
        elif op == "callr":
            cpu.set_reg(REG_RA, cpu.pc + 4)
            next_pc = R(insn.rs)
        elif op == "jmpl":
            next_pc = R(insn.rs) + (insn.imm or 0)
        elif op == "fadd":
            cpu.fregs[insn.rd] = cpu.fregs[insn.rs] + cpu.fregs[insn.rt]
        elif op == "fsub":
            cpu.fregs[insn.rd] = cpu.fregs[insn.rs] - cpu.fregs[insn.rt]
        elif op == "fmul":
            cpu.fregs[insn.rd] = cpu.fregs[insn.rs] * cpu.fregs[insn.rt]
        elif op == "fdiv":
            if cpu.fregs[insn.rt] == 0.0:
                raise TargetFault(SIGFPE, code=1, address=cpu.pc)
            cpu.fregs[insn.rd] = cpu.fregs[insn.rs] / cpu.fregs[insn.rt]
        elif op == "fitod":
            cpu.fregs[insn.rd] = float(to_i32(R(insn.rs)))
        elif op == "fdtoi":
            cpu.set_reg(insn.rd, int(math.trunc(cpu.fregs[insn.rs])))
        elif op == "fslt":
            cpu.set_reg(insn.rd, int(cpu.fregs[insn.rs] < cpu.fregs[insn.rt]))
        elif op == "fsle":
            cpu.set_reg(insn.rd, int(cpu.fregs[insn.rs] <= cpu.fregs[insn.rt]))
        elif op == "fseq":
            cpu.set_reg(insn.rd, int(cpu.fregs[insn.rs] == cpu.fregs[insn.rt]))
        elif op == "fneg":
            cpu.fregs[insn.rd] = -cpu.fregs[insn.rs]
        elif op == "fmov":
            cpu.fregs[insn.rd] = cpu.fregs[insn.rs]
        else:  # pragma: no cover
            raise TargetFault(SIGILL, address=cpu.pc)
        cpu.pc = to_u32(next_pc)
