"""Crash-consistent artifact writes, and the filesystem fault harness.

Every durable artifact the debugger produces — core files, ``.ldbrec``
recordings, triage reports — used to be written with one plain
``open()/write()``.  A crash, SIGKILL, or full disk mid-write then
leaves a *torn* file: half an artifact wearing a valid magic, which
later opens as an opaque CRC error.  rr's deployability work
("Engineering Record And Replay For Deployability", PAPERS.md) treats
recordings as fleet artifacts that must survive ungraceful death; this
module is that discipline for our persistence surface.

:func:`atomic_write_bytes` is the only write path artifacts use:

1. stale temporaries from earlier crashed writers are swept;
2. the payload is written to a *sibling temporary*
   (``.<name>.ldbtmp.<pid>``), flushed, and fsync'd;
3. the temporary is atomically renamed over the destination
   (``os.replace``), and the directory entry is fsync'd best-effort.

The destination therefore always holds either the complete old
artifact or the complete new one — never a prefix of either.  A failed
write (ENOSPC, EIO) removes its temporary and re-raises the OSError
for the caller's typed wrapper; a *power cut* (the writing process
dies) leaves the temporary behind, where the next writer's sweep — or
a salvage-minded reader — finds it.

Every filesystem touch goes through a swappable :class:`RealFS`
object, which is the injection seam for :class:`FaultyFS` — the
fs-side sibling of :mod:`repro.nub.faults`: a seeded
:class:`FsFaultSchedule` of ENOSPC / torn-write / power-cut /
EIO faults, deterministic per seed, driving the durability property
tests and BENCH_durability.
"""

from __future__ import annotations

import errno
import os
import random
from contextlib import contextmanager
from typing import Dict, List, Optional

__all__ = ["SalvagedArtifact", "PowerCut", "RealFS", "FaultyFS",
           "FsFaultSchedule", "FS_FAULT_KINDS", "atomic_write_bytes",
           "atomic_write_text", "stale_temps", "cleanup_stale_temps",
           "current_fs", "use_fs"]

#: sibling-temporary naming: ``.<name>.ldbtmp.<pid>`` in the same
#: directory (same filesystem, so the final rename is atomic)
_TEMP_MARK = ".ldbtmp"

#: payloads are written in chunks so mid-artifact faults (a disk that
#: fills while writing, a torn page) are a reachable schedule point
_WRITE_CHUNK = 1 << 18


class SalvagedArtifact(UserWarning):
    """A damaged artifact opened on its longest valid prefix.

    Issued (never raised) by the salvage-on-open paths of
    :mod:`repro.machines.core` and :mod:`repro.trace.format` when a
    truncated or tail-corrupt file still holds enough of a valid
    prefix to serve read-only.  The message names the file, what was
    lost, and the salvage horizon."""


class PowerCut(Exception):
    """Injected power loss: the writing process died mid-write.

    Raised by :class:`FaultyFS` at the scheduled operation; everything
    the "machine" had not yet fsync'd is truncated away first, so the
    on-disk state is exactly what a real power cut leaves.  The harness
    (not production code) catches this where a real process would
    simply be gone."""


# -- the real filesystem (and the seam) -----------------------------------

class RealFS:
    """The operations :func:`atomic_write_bytes` performs, as a
    swappable object — the seam :class:`FaultyFS` wraps."""

    def open(self, path: str):
        return open(path, "wb")

    def write(self, handle, data: bytes) -> None:
        handle.write(data)

    def flush_and_sync(self, handle) -> None:
        handle.flush()
        os.fsync(handle.fileno())

    def close(self, handle) -> None:
        handle.close()

    def replace(self, src: str, dst: str) -> None:
        os.replace(src, dst)

    def remove(self, path: str) -> None:
        try:
            os.remove(path)
        except FileNotFoundError:
            pass

    def listdir(self, directory: str) -> List[str]:
        return os.listdir(directory)

    def sync_dir(self, directory: str) -> None:
        """Make the rename itself durable (best effort: not every
        platform lets a directory be opened for fsync)."""
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)


_DEFAULT_FS = RealFS()
_current_fs: List[object] = [_DEFAULT_FS]


def current_fs():
    """The filesystem object artifact writes go through right now."""
    return _current_fs[-1]


@contextmanager
def use_fs(fs):
    """Route every :func:`atomic_write_bytes` in the dynamic extent
    through ``fs`` — how the fault harness reaches write sites buried
    under the nub or the session server without threading a parameter
    through every layer."""
    _current_fs.append(fs)
    try:
        yield fs
    finally:
        _current_fs.pop()


# -- atomic writes --------------------------------------------------------

def _temp_name(path: str) -> str:
    directory, name = os.path.split(os.path.abspath(path))
    return os.path.join(directory, ".%s%s.%d" % (name, _TEMP_MARK,
                                                 os.getpid()))


def stale_temps(path: str, fs=None) -> List[str]:
    """Leftover temporaries of ``path`` from writers that died
    mid-write (any pid)."""
    fs = fs or current_fs()
    directory, name = os.path.split(os.path.abspath(path))
    prefix = ".%s%s." % (name, _TEMP_MARK)
    try:
        entries = fs.listdir(directory)
    except OSError:
        return []
    return [os.path.join(directory, entry) for entry in sorted(entries)
            if entry.startswith(prefix)]


def cleanup_stale_temps(path: str, fs=None) -> int:
    """Sweep dead writers' temporaries for ``path``; returns the count
    removed.  Best effort: an unremovable temp is not an error."""
    fs = fs or current_fs()
    removed = 0
    for temp in stale_temps(path, fs):
        try:
            fs.remove(temp)
            removed += 1
        except OSError:
            pass
    return removed


def atomic_write_bytes(path: str, data: bytes, fs=None) -> int:
    """Write ``data`` to ``path`` crash-consistently; returns the byte
    count.  After this returns, ``path`` holds exactly ``data``; if it
    raises (or the process dies), ``path`` holds whatever it held
    before — never a torn mixture.  OSErrors propagate for the
    caller's typed wrapper."""
    fs = fs or current_fs()
    cleanup_stale_temps(path, fs)
    temp = _temp_name(path)
    handle = fs.open(temp)
    try:
        view = memoryview(data)
        for offset in range(0, len(view), _WRITE_CHUNK):
            fs.write(handle, view[offset:offset + _WRITE_CHUNK].tobytes())
        fs.flush_and_sync(handle)
    except PowerCut:
        raise  # the "process" is gone: no cleanup runs, the temp stays
    except BaseException:
        try:
            fs.close(handle)
        except OSError:
            pass
        try:
            fs.remove(temp)
        except OSError:
            pass
        raise
    fs.close(handle)
    try:
        fs.replace(temp, path)
    except PowerCut:
        raise
    except BaseException:
        try:
            fs.remove(temp)
        except OSError:
            pass
        raise
    fs.sync_dir(os.path.dirname(os.path.abspath(path)))
    return len(data)


def atomic_write_text(path: str, text: str, fs=None) -> int:
    """:func:`atomic_write_bytes` for text artifacts (triage reports,
    JSONL trace dumps)."""
    return atomic_write_bytes(path, text.encode("utf-8"), fs=fs)


# -- the fault harness ----------------------------------------------------

#: every injectable filesystem fault kind
FS_FAULT_KINDS = ("enospc", "torn", "powercut", "eio")


class FsFaultSchedule:
    """A deterministic, seeded schedule of filesystem faults — the
    shape of :class:`repro.nub.faults.FaultSchedule`, aimed at disks
    instead of wires.

    Two modes:

    * probabilistic — per-kind rates (``enospc=0.1, torn=0.05, ...``)
      drawn from ``random.Random(seed)``; ``limit`` caps total
      injections so a retried save eventually meets a clean disk;
    * scripted — an explicit ``script`` of actions (``"ok"`` or a
      fault kind) consumed one per operation, then clean forever.

    ``after`` spares the first N operations (let the setup writes
    land, strike mid-artifact).  Fault meanings, applied by
    :class:`FaultyFS` at the scheduled write/flush/rename:

    * ``enospc``   — the disk fills: a prefix of the chunk lands, then
      ``OSError(ENOSPC)``;
    * ``torn``     — a partial write persists, then ``OSError(EIO)``
      (a dying disk controller);
    * ``powercut`` — the machine loses power: unsynced bytes are
      truncated away and :class:`PowerCut` raises — the writing
      process never runs another instruction;
    * ``eio``      — the operation fails outright with
      ``OSError(EIO)``, nothing lands.
    """

    SPEC_KEYS = ("seed", "enospc", "torn", "powercut", "eio", "limit",
                 "script", "after")

    def __init__(self, seed: int = 0, enospc: float = 0.0,
                 torn: float = 0.0, powercut: float = 0.0,
                 eio: float = 0.0, limit: Optional[int] = None,
                 script: Optional[List[str]] = None, after: int = 0):
        self.rates = {"enospc": enospc, "torn": torn,
                      "powercut": powercut, "eio": eio}
        for kind, rate in self.rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError("bad %s rate %r" % (kind, rate))
        self.limit = limit
        self.script = list(script) if script else []
        for action in self.script:
            if action != "ok" and action not in FS_FAULT_KINDS:
                raise ValueError("unknown scripted action %r" % action)
        if after < 0:
            raise ValueError("bad after %r" % after)
        self.after = after
        self.seed = seed
        self._rng = random.Random(seed)
        self._ops = 0
        self.injected = 0
        self.counts: Dict[str, int] = {}

    @classmethod
    def from_spec(cls, spec: Dict) -> "FsFaultSchedule":
        """Build a schedule from a plain JSON-able dict.  Unknown keys
        are rejected loudly — a typo'd fault spec that silently
        injects nothing would make a durability run vacuous."""
        unknown = sorted(set(spec) - set(cls.SPEC_KEYS))
        if unknown:
            raise ValueError("unknown fs fault spec keys: %s"
                             % ", ".join(unknown))
        return cls(**spec)

    def spec(self) -> Dict:
        """The JSON-able configuration (not consumed state);
        round-trips through :meth:`from_spec`."""
        out: Dict = {"seed": self.seed}
        for kind, rate in self.rates.items():
            if rate:
                out[kind] = rate
        if self.limit is not None:
            out["limit"] = self.limit
        if self.script:
            out["script"] = list(self.script)
        if self.after:
            out["after"] = self.after
        return out

    def next_action(self) -> str:
        """The action for the next filesystem operation."""
        op = self._ops
        self._ops += 1
        if op < self.after:
            return "ok"
        if self.script:
            action = self.script.pop(0)
        elif self.limit is not None and self.injected >= self.limit:
            action = "ok"
        else:
            action = "ok"
            roll = self._rng.random()
            total = 0.0
            for kind in FS_FAULT_KINDS:
                total += self.rates[kind]
                if roll < total:
                    action = kind
                    break
        if action != "ok":
            self.injected += 1
            self.counts[action] = self.counts.get(action, 0) + 1
        return action


class _FaultyHandle:
    """Per-file bookkeeping: what has actually been written, and what
    has survived an fsync — the distinction a power cut exposes."""

    __slots__ = ("inner", "path", "written", "synced")

    def __init__(self, inner, path: str):
        self.inner = inner
        self.path = path
        self.written = 0
        self.synced = 0


class FaultyFS:
    """A :class:`RealFS` look-alike that injects scheduled faults into
    the operations it performs — the disk the durability tests run on.

    The same seed always yields the same fault sequence.  After an
    injected power cut the "machine" is off: every further operation
    raises :class:`PowerCut`, and any bytes written since the last
    fsync were truncated away (lost page cache)."""

    def __init__(self, schedule: FsFaultSchedule, inner=None):
        self.schedule = schedule
        self.inner = inner or RealFS()
        self.dead = False
        self.ops = 0

    # -- the seam -----------------------------------------------------------

    def open(self, path: str):
        self._check_alive()
        self.ops += 1
        return _FaultyHandle(self.inner.open(path), path)

    def write(self, handle: _FaultyHandle, data: bytes) -> None:
        self._check_alive()
        self.ops += 1
        action = self.schedule.next_action()
        if action == "ok":
            self.inner.write(handle.inner, data)
            handle.written += len(data)
            return
        if action == "eio":
            raise OSError(errno.EIO, "injected I/O error")
        # enospc / torn / powercut: a seeded prefix of this chunk lands
        keep = self.schedule._rng.randrange(len(data) + 1) if data else 0
        self.inner.write(handle.inner, data[:keep])
        handle.written += keep
        if action == "enospc":
            raise OSError(errno.ENOSPC, "injected disk full")
        if action == "torn":
            raise OSError(errno.EIO, "injected torn write")
        self._power_cut(handle)

    def flush_and_sync(self, handle: _FaultyHandle) -> None:
        self._check_alive()
        self.ops += 1
        action = self.schedule.next_action()
        if action == "powercut":
            self._power_cut(handle)
        if action in ("eio", "torn"):
            raise OSError(errno.EIO, "injected I/O error at fsync")
        if action == "enospc":
            raise OSError(errno.ENOSPC, "injected disk full at fsync")
        self.inner.flush_and_sync(handle.inner)
        handle.synced = handle.written

    def close(self, handle: _FaultyHandle) -> None:
        self.inner.close(handle.inner)

    def replace(self, src: str, dst: str) -> None:
        self._check_alive()
        self.ops += 1
        action = self.schedule.next_action()
        if action == "powercut":
            # rename is journaled: it either happened or it did not —
            # power dies *before* the rename here, leaving the temp
            self._power_cut(None)
        if action != "ok":
            raise OSError(errno.EIO, "injected rename failure")
        self.inner.replace(src, dst)

    def remove(self, path: str) -> None:
        self._check_alive()
        self.inner.remove(path)

    def listdir(self, directory: str) -> List[str]:
        self._check_alive()
        return self.inner.listdir(directory)

    def sync_dir(self, directory: str) -> None:
        self._check_alive()
        self.inner.sync_dir(directory)

    # -- power-cut mechanics -------------------------------------------------

    def _check_alive(self) -> None:
        if self.dead:
            raise PowerCut("the machine is off")

    def _power_cut(self, handle: Optional[_FaultyHandle]) -> None:
        """Lights out: unsynced bytes (beyond a seeded survivor prefix
        — the partially flushed page) are truncated away."""
        self.dead = True
        if handle is not None:
            unsynced = handle.written - handle.synced
            survive = (handle.synced
                       + self.schedule._rng.randrange(unsynced + 1))
            try:
                self.inner.close(handle.inner)
                with open(handle.path, "rb+") as raw:
                    raw.truncate(survive)
            except OSError:
                pass
        raise PowerCut("injected power cut")

    def revive(self) -> "FaultyFS":
        """The machine reboots: subsequent operations reach the real
        filesystem again (the schedule keeps advancing from where it
        was)."""
        self.dead = False
        return self
