"""Simulated target architectures: the hardware substrate.

The paper ran on MIPS R3000, Motorola 68020, SPARC, and VAX hardware;
this package supplies simulated analogs that keep the properties the
debugger's machine-dependent code depends on (see DESIGN.md §1).
"""

from __future__ import annotations

from typing import Dict

from .core import CoreError, CoreFile, core_from_process
from .cpu import Cpu, CpuSnapshot
from .engine import (
    BlockEngine,
    ENGINE_ENV,
    ExecutionEngine,
    SimStats,
    StepEngine,
    StopSpec,
    engine_names,
    make_engine,
)
from .isa import (
    Arch,
    CODE_ICOUNT,
    ContextField,
    DEFAULT_MAX_STEPS,
    Halt,
    IcountReached,
    Insn,
    Label,
    SIGFPE,
    SIGILL,
    SIGSEGV,
    SIGTRAP,
    TargetFault,
)
from .loader import (
    Executable,
    FuncInfo,
    LinkError,
    ObjectUnit,
    Relocation,
    Symbol,
    link,
    load,
    nm,
    read_runtime_proc_table,
)
from .m68k import RM68kArch
from .memory import MemoryFault, MemorySnapshot, TargetMemory
from .mips import RMipsArch, RMipsELArch
from .process import (
    ExitEvent,
    FaultEvent,
    IcountStopEvent,
    Process,
    ProcessSnapshot,
)
from .sparc import RSparcArch
from .vax import RVaxArch

_ARCHES: Dict[str, Arch] = {}


def get_arch(name: str) -> Arch:
    """The singleton Arch description for ``name``.

    Known names: rmips, rmipsel, rsparc, rm68k, rvax.
    """
    if name not in _ARCHES:
        classes = {
            "rmips": RMipsArch,
            "rmipsel": RMipsELArch,
            "rsparc": RSparcArch,
            "rm68k": RM68kArch,
            "rvax": RVaxArch,
        }
        if name not in classes:
            raise KeyError("unknown architecture %r" % name)
        _ARCHES[name] = classes[name]()
    return _ARCHES[name]


ARCH_NAMES = ("rmips", "rmipsel", "rsparc", "rm68k", "rvax")

__all__ = [
    "ARCH_NAMES",
    "Arch",
    "BlockEngine",
    "CODE_ICOUNT",
    "ContextField",
    "CoreError",
    "CoreFile",
    "Cpu",
    "CpuSnapshot",
    "DEFAULT_MAX_STEPS",
    "ENGINE_ENV",
    "ExecutionEngine",
    "ExitEvent",
    "Executable",
    "FaultEvent",
    "FuncInfo",
    "Halt",
    "IcountReached",
    "IcountStopEvent",
    "Insn",
    "Label",
    "LinkError",
    "MemoryFault",
    "MemorySnapshot",
    "ObjectUnit",
    "Process",
    "ProcessSnapshot",
    "RM68kArch",
    "RMipsArch",
    "RMipsELArch",
    "RSparcArch",
    "RVaxArch",
    "Relocation",
    "SIGFPE",
    "SIGILL",
    "SIGSEGV",
    "SIGTRAP",
    "SimStats",
    "StepEngine",
    "StopSpec",
    "Symbol",
    "TargetFault",
    "TargetMemory",
    "core_from_process",
    "engine_names",
    "get_arch",
    "make_engine",
    "link",
    "load",
    "nm",
    "read_runtime_proc_table",
]
