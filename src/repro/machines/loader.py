"""Object units, the linker, the ``nm`` analog, and load images.

The compiler produces :class:`ObjectUnit`\\ s; the linker lays them out,
resolves symbols, patches data relocations, encodes instructions, and
produces an :class:`Executable`.

Two pieces of the paper's machinery live here:

* the **runtime procedure table** for rmips (paper Sec. 4.3, [17]): an
  array in the *target address space* recording each procedure's address,
  frame size, register-save mask, and register-save offset.  The MIPS
  linker interface of the debugger reads it from target memory, because
  the machine has no frame pointer;
* the **nm analog** (:func:`nm`): after linking, the compiler driver uses
  it to generate the loader table (paper Sec. 3), keeping the debugger
  independent of object-file formats.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from .isa import Arch, Insn, Label

TEXT_BASE = 0x2000
NUB_AREA = 0x100          # the nub's data (context save area) lives here
STACK_RESERVE = 0x1000


class LinkError(Exception):
    """An undefined or duplicate symbol, or an unencodable operand."""


class Symbol:
    """A symbol definition in an object unit.

    ``kind`` follows nm: 'T' global text, 't' local text, 'D' global data,
    'd' local data.  Kind 'i' marks internal symbols (stopping-point
    labels) that relocations may reference but nm does not list.
    """

    __slots__ = ("name", "section", "offset", "kind")

    def __init__(self, name: str, section: str, offset: Union[int, str], kind: str):
        self.name = name
        self.section = section
        self.offset = offset  # int offset, or a label name for text symbols
        self.kind = kind

    def __repr__(self) -> str:
        return "<sym %s %s %r %s>" % (self.name, self.section, self.offset, self.kind)


class Relocation:
    """Patch a 32-bit data word with the address of a symbol (+ addend)."""

    __slots__ = ("offset", "symbol", "addend")

    def __init__(self, offset: int, symbol: str, addend: int = 0):
        self.offset = offset
        self.symbol = symbol
        self.addend = addend


class FuncInfo:
    """Per-procedure metadata the linker and debugger need.

    ``framesize``/``regmask``/``regsave_offset`` feed the rmips runtime
    procedure table; ``regmask`` also reaches the rm68k symbol table as
    the register-save mask the paper mentions (Sec. 5).
    """

    __slots__ = ("name", "label", "framesize", "regmask", "regsave_offset")

    def __init__(self, name: str, label: str, framesize: int,
                 regmask: int = 0, regsave_offset: int = 0):
        self.name = name
        self.label = label
        self.framesize = framesize
        self.regmask = regmask
        self.regsave_offset = regsave_offset


class ObjectUnit:
    """One compiled translation unit."""

    def __init__(self, name: str, arch_name: str):
        self.name = name
        self.arch_name = arch_name
        self.text: List[Union[Insn, Label]] = []
        self.data = bytearray()
        self.data_relocs: List[Relocation] = []
        self.symbols: List[Symbol] = []
        self.funcs: List[FuncInfo] = []
        #: PostScript symbol table source (None when compiled without -g).
        self.pssym: Optional[str] = None
        #: dbx-style stabs (the baseline format).
        self.stabs: Optional[str] = None

    def count_insns(self) -> int:
        return sum(1 for item in self.text if isinstance(item, Insn))

    def name_suffix(self) -> str:
        """A link-safe suffix derived from the unit name."""
        import re
        return re.sub(r"\W", "_", self.name)


class Executable:
    """A linked program image plus everything the driver and nub need."""

    def __init__(self, arch: Arch, units: Sequence[ObjectUnit]):
        self.arch = arch
        self.units = list(units)
        self.text_base = TEXT_BASE
        self.text = b""
        self.data_base = 0
        self.data = b""
        self.entry = 0
        self.symbols: Dict[str, int] = {}
        #: (address, kind, name) triples for nm, in address order.
        self.nm_symbols: List[Tuple[int, str, str]] = []
        self.funcs: List[Tuple[int, FuncInfo]] = []
        self.rpt_address = 0  # runtime procedure table (rmips only)
        self.stack_top = 0

    def proc_containing(self, pc: int) -> Optional[Tuple[int, FuncInfo]]:
        best = None
        for address, info in self.funcs:
            if address <= pc and (best is None or address > best[0]):
                best = (address, info)
        return best


def link(arch: Arch, units: Sequence[ObjectUnit], startup,
         memsize: int = 1 << 20) -> Executable:
    """Link ``units`` against the generated startup code.

    ``startup`` is a callable ``(arch, stack_top) -> (text, symbols,
    funcs)`` supplied by the code generator (the system-dependent startup
    code that calls the nub before main — paper Sec. 4.3).
    """
    exe = Executable(arch, units)
    exe.stack_top = memsize - 16

    startup_text, startup_syms, startup_funcs = startup(arch, exe.stack_top)
    startup_unit = ObjectUnit("<startup>", arch.name)
    startup_unit.text = startup_text
    startup_unit.symbols = startup_syms
    startup_unit.funcs = startup_funcs
    all_units = [startup_unit] + list(units)

    # Pass 1: lay out text, assigning addresses to labels.
    label_addr: Dict[str, int] = {}
    address = exe.text_base
    for unit in all_units:
        for item in unit.text:
            if isinstance(item, Label):
                if item.name in label_addr:
                    raise LinkError("duplicate label %s" % item.name)
                label_addr[item.name] = address
            else:
                address += arch.insn_length(item)
    text_end = address

    # Pass 2: lay out data.
    data_base = _align(text_end, 16)
    exe.data_base = data_base
    data = bytearray()
    data_sym_addr: Dict[str, int] = {}
    unit_data_start: Dict[int, int] = {}
    for unit in all_units:
        start = data_base + len(data)
        unit_data_start[id(unit)] = start
        data.extend(unit.data)
        data.extend(b"\0" * (-len(unit.data) % 4))

    # Global symbol table.
    for unit in all_units:
        for sym in unit.symbols:
            if sym.section == "text":
                label = sym.offset if isinstance(sym.offset, str) else None
                addr = label_addr.get(label if label else "", None)
                if addr is None:
                    raise LinkError("text symbol %s has no label" % sym.name)
            else:
                addr = unit_data_start[id(unit)] + sym.offset
            if sym.name in exe.symbols and sym.kind in ("T", "D"):
                raise LinkError("duplicate symbol %s" % sym.name)
            exe.symbols[sym.name] = addr
            data_sym_addr[sym.name] = addr
            if sym.kind != "i":
                exe.nm_symbols.append((addr, sym.kind, sym.name))
        for func in unit.funcs:
            if func.label not in label_addr:
                raise LinkError("function %s has no label" % func.name)
            exe.funcs.append((label_addr[func.label], func))

    # Internal labels are addressable by relocations too.
    resolve_env = dict(label_addr)
    resolve_env.update(exe.symbols)

    # Runtime procedure table (rmips): written into the data section so
    # the debugger's MIPS linker interface reads it from target memory.
    if arch.has_runtime_proc_table:
        exe.rpt_address = data_base + len(data)
        for addr, func in sorted(exe.funcs):
            for word in (addr, func.framesize, func.regmask, func.regsave_offset):
                data.extend((word & 0xFFFFFFFF).to_bytes(4, arch.byteorder))
        data.extend(b"\0" * 16)  # terminator record
        exe.symbols["_procedure_table"] = exe.rpt_address
        resolve_env["_procedure_table"] = exe.rpt_address
        exe.nm_symbols.append((exe.rpt_address, "D", "_procedure_table"))

    # Patch data relocations.
    offset_of_unit = unit_data_start
    for unit in all_units:
        base = offset_of_unit[id(unit)] - data_base
        for reloc in unit.data_relocs:
            target = resolve_env.get(reloc.symbol)
            if target is None:
                raise LinkError("undefined symbol %s in %s" % (reloc.symbol, unit.name))
            where = base + reloc.offset
            value = (target + reloc.addend) & 0xFFFFFFFF
            data[where : where + 4] = value.to_bytes(4, arch.byteorder)

    # Pass 3: resolve instruction operands and encode.
    chunks: List[bytes] = []
    address = exe.text_base
    for unit in all_units:
        for item in unit.text:
            if isinstance(item, Label):
                continue
            _resolve_insn(arch, item, address, resolve_env)
            encoded = arch.encode(item)
            chunks.append(encoded)
            address += len(encoded)
    exe.text = b"".join(chunks)
    exe.data = bytes(data)

    exe.entry = label_addr.get("__start", exe.text_base)
    exe.nm_symbols.sort()
    return exe


def _resolve_insn(arch: Arch, insn: Insn, address: int, env: Dict[str, int]) -> None:
    size = arch.insn_length(insn)
    insn.imm = _resolve_value(arch, insn.imm, address, size, env, insn)
    insn.target = _resolve_value(arch, insn.target, address, size, env, insn)


def _resolve_value(arch: Arch, value, address: int, size: int,
                   env: Dict[str, int], insn: Insn):
    if value is None or isinstance(value, (int, float)):
        return value
    if isinstance(value, str):
        if value not in env:
            raise LinkError("undefined symbol %s" % value)
        return env[value]
    if isinstance(value, tuple):
        kind, name = value
        if name not in env:
            raise LinkError("undefined symbol %s" % name)
        target = env[name]
        if kind == "hi":
            return (target >> 16) & 0xFFFF
        if kind == "lo":
            return target & 0xFFFF
        if kind == "hi19":
            # rsparc sethi half: the low 13 bits are added back with a
            # *signed* simm13, so the high part is adjusted when the low
            # half is negative (the standard %hi/%lo carry trick).
            low = target & 0x1FFF
            if low >= 0x1000:
                low -= 0x2000
            return ((target - low) >> 13) & 0x7FFFF
        if kind == "lo13":
            low = target & 0x1FFF
            return low - 0x2000 if low >= 0x1000 else low
        if kind == "br":  # branch displacement, arch-specific semantics
            return arch_branch_disp(arch, address, size, target)
        raise LinkError("unknown relocation kind %r" % (kind,))
    if isinstance(value, list):  # rvax operand lists
        for operand in value:
            if isinstance(operand.ext, (str, tuple)):
                operand.ext = _resolve_value(arch, operand.ext, address, size, env, insn)
        return value
    raise LinkError("unresolvable operand %r in %r" % (value, insn))


def arch_branch_disp(arch: Arch, insn_addr: int, insn_size: int, target: int) -> int:
    """Branch displacement semantics per target family."""
    if arch.insn_align == 4:  # rmips, rsparc: word offset from pc+4
        return (target - (insn_addr + 4)) >> 2
    return target - (insn_addr + insn_size)  # rm68k, rvax: byte offset


def load(exe: Executable, mem) -> None:
    """Copy the linked image into target memory."""
    mem.write_bytes(exe.text_base, exe.text)
    mem.write_bytes(exe.data_base, exe.data)


def nm(exe: Executable) -> str:
    """The ``nm`` analog: list symbols of a linked program.

    Output format: ``address kind name`` per line, address in hex — the
    mostly machine-independent output the paper's driver transforms into
    loader-table PostScript (Sec. 3, 7).
    """
    lines = []
    for address, kind, name in exe.nm_symbols:
        lines.append("%08x %s %s" % (address, kind, name))
    return "\n".join(lines) + "\n"


def read_runtime_proc_table(mem, rpt_address: int, byteorder: str):
    """Read the runtime procedure table out of target memory.

    Returns a list of (address, framesize, regmask, regsave_offset).
    This is the reader the debugger's MIPS linker interface uses (paper
    Sec. 4.3 and footnote 4).
    """
    records = []
    offset = rpt_address
    while True:
        words = [int.from_bytes(mem.read_bytes(offset + 4 * i, 4), byteorder)
                 for i in range(4)]
        if words[0] == 0:
            break
        records.append(tuple(words))
        offset += 16
    return records


def _align(value: int, boundary: int) -> int:
    return (value + boundary - 1) & ~(boundary - 1)
