"""The rvax target: the VAX analog.

Little-endian, byte-granular variable-length instructions: an opcode byte
followed by *operand specifiers*, each a mode/register byte possibly
followed by displacement or immediate bytes — the classic VAX shape.
Real VAX opcode values are kept where convenient (``NOP`` = 0x01,
``BPT`` = 0x03, ``MOVL`` = 0xD0, ``RET`` = 0x04 ...).

Because instructions are byte-granular, the machine-dependent "type used
to fetch and store instructions" is a byte, and planting a breakpoint
overwrites a single byte (paper Sec. 3's four items of machine-dependent
breakpoint data).

Operand specifier modes (high nibble; low nibble is the register)::

    0  register            Rn
    1  register deferred   (Rn)
    2  byte displacement   d8(Rn)   -- one displacement byte follows
    3  long displacement   d32(Rn)  -- four displacement bytes follow
    4  immediate long      #imm32   -- four bytes follow
    5  absolute            @#addr   -- four address bytes follow
    6  immediate double    #f64     -- eight bytes follow (float ops only)
"""

from __future__ import annotations

import math
import struct
from typing import List

from .isa import (
    Arch,
    Insn,
    SIGFPE,
    SIGILL,
    SIGTRAP,
    TargetFault,
    to_i32,
    to_u32,
)

# mode numbers
M_REG = 0
M_DEFER = 1
M_DISP8 = 2
M_DISP32 = 3
M_IMM = 4
M_ABS = 5
M_FIMM = 6

# opcode byte -> (name, operand count, float flag)
_OPTABLE = {
    0x00: ("halt", 0, False),
    0x01: ("nop", 0, False),
    0x03: ("bpt", 0, False),
    0x04: ("ret", 0, False),
    0xD0: ("movl", 2, False),
    0x90: ("movb", 2, False),
    0xB0: ("movw", 2, False),
    0x9A: ("movzbl", 2, False),
    0x3C: ("movzwl", 2, False),
    0xC1: ("addl3", 3, False),
    0xC3: ("subl3", 3, False),
    0xC5: ("mull3", 3, False),
    0xC7: ("divl3", 3, False),
    0xC9: ("reml3", 3, False),
    0xC8: ("divul3", 3, False),
    0xCA: ("remul3", 3, False),
    0xCB: ("andl3", 3, False),
    0xCD: ("orl3", 3, False),
    0xCF: ("xorl3", 3, False),
    0x78: ("ashl", 3, False),   # count, src, dst (negative count = right)
    0x7A: ("lshr", 3, False),   # logical right shift (invented)
    0xD1: ("cmpl", 2, False),
    0xD2: ("cmpd", 2, True),
    0x9E: ("moval", 2, False),  # move address (dst gets src's address)
    0x11: ("brb", 0, False),    # disp16 follows opcode directly
    0x12: ("bneq", 0, False),
    0x13: ("beql", 0, False),
    0x14: ("bgtr", 0, False),
    0x15: ("bleq", 0, False),
    0x18: ("bgeq", 0, False),
    0x19: ("blss", 0, False),
    0x1A: ("bgtru", 0, False),
    0x1B: ("blequ", 0, False),
    0x1E: ("bgequ", 0, False),
    0x1F: ("blssu", 0, False),
    0x60: ("seql", 1, False),
    0x62: ("sneq", 1, False),
    0x64: ("slss", 1, False),
    0x66: ("sleq", 1, False),
    0x68: ("sgtr", 1, False),
    0x6A: ("sgeq", 1, False),
    0x6E: ("slssu", 1, False),
    0x6F: ("sgtru", 1, False),
    0x73: ("slequ", 1, False),
    0x74: ("sgequ", 1, False),
    0xDD: ("pushl", 1, False),
    0x8F: ("popl", 1, False),
    0xFB: ("call", 0, False),   # addr32 follows
    0xFC: ("callr", 1, False),  # call through an operand
    0xFA: ("syscall", 0, False),  # code16 follows
    0x70: ("movd", 2, True),
    0x61: ("addd3", 3, True),
    0x63: ("subd3", 3, True),
    0x65: ("muld3", 3, True),
    0x67: ("divd3", 3, True),
    0x6C: ("cvtld", 2, True),   # int operand -> float dst
    0x6D: ("cvtdl", 2, True),   # float operand -> int dst
    0x71: ("movf", 2, True),    # f32 memory <-> f register
    0x72: ("negd", 2, True),
}
_OPS = {name: (byte, argc, flt) for byte, (name, argc, flt) in _OPTABLE.items()}

_BRANCH_OPS = frozenset([
    "brb", "bneq", "beql", "bgtr", "bleq", "bgeq", "blss",
    "bgtru", "blequ", "bgequ", "blssu"])

REG_RETVAL = 0
REG_AP = 12
REG_FP = 13
REG_SP = 14
TEMP_REGS = (1, 2, 3, 4, 5)
FTEMP_REGS = (1, 2, 3)
FRET_REG = 0


class Operand:
    """One decoded/assembled operand specifier."""

    __slots__ = ("mode", "reg", "ext")

    def __init__(self, mode: int, reg: int = 0, ext=None):
        self.mode = mode
        self.reg = reg
        self.ext = ext  # displacement, immediate, or address

    @classmethod
    def reg_(cls, reg: int) -> "Operand":
        return cls(M_REG, reg)

    @classmethod
    def defer(cls, reg: int) -> "Operand":
        return cls(M_DEFER, reg)

    @classmethod
    def disp(cls, reg: int, displacement: int) -> "Operand":
        if isinstance(displacement, int) and -128 <= displacement < 128:
            return cls(M_DISP8, reg, displacement)
        return cls(M_DISP32, reg, displacement)

    @classmethod
    def imm(cls, value) -> "Operand":
        return cls(M_IMM, 0, value)

    @classmethod
    def absolute(cls, address) -> "Operand":
        return cls(M_ABS, 0, address)

    @classmethod
    def fimm(cls, value: float) -> "Operand":
        return cls(M_FIMM, 0, value)

    def length(self) -> int:
        return 1 + {M_REG: 0, M_DEFER: 0, M_DISP8: 1, M_DISP32: 4,
                    M_IMM: 4, M_ABS: 4, M_FIMM: 8}[self.mode]

    def __repr__(self) -> str:
        return "<opnd m%d r%d %r>" % (self.mode, self.reg, self.ext)


# -- prebuilt operand accessors for the block engine ------------------------
#
# Each builder pre-resolves one operand specifier into a closure over the
# decoded mode/register/extension, replicating ``_address_of``/``_read``/
# ``_write`` exactly (rvax has no zero register, so a register write is a
# plain masked store plus ``_wrote_reg`` tracking).  A builder returns
# ``None`` for specifiers the fast path does not handle — including the
# modes ``execute`` faults on — sending that instruction to the generic
# slow path so the fault (and its address) stays byte-identical.

_FAST_ALU3 = frozenset([
    "addl3", "subl3", "mull3", "divl3", "reml3", "divul3", "remul3",
    "andl3", "orl3", "xorl3", "ashl", "lshr"])

_SCC_OPS = frozenset([
    "seql", "sneq", "slss", "sleq", "sgtr", "sgeq", "slssu",
    "sgtru", "slequ", "sgequ"])

_VAX_CC_FUNCS = {
    "bneq": lambda cpu: not cpu.cc_eq,
    "beql": lambda cpu: cpu.cc_eq,
    "bgtr": lambda cpu: not (cpu.cc_lt or cpu.cc_eq),
    "bleq": lambda cpu: cpu.cc_lt or cpu.cc_eq,
    "bgeq": lambda cpu: not cpu.cc_lt,
    "blss": lambda cpu: cpu.cc_lt,
    "bgtru": lambda cpu: not (cpu.cc_ltu or cpu.cc_eq),
    "blequ": lambda cpu: cpu.cc_ltu or cpu.cc_eq,
    "bgequ": lambda cpu: not cpu.cc_ltu,
    "blssu": lambda cpu: cpu.cc_ltu,
}

_VAX_SCC_FUNCS = {
    "seql": lambda cpu: cpu.cc_eq,
    "sneq": lambda cpu: not cpu.cc_eq,
    "slss": lambda cpu: cpu.cc_lt,
    "sleq": lambda cpu: cpu.cc_lt or cpu.cc_eq,
    "sgtr": lambda cpu: not (cpu.cc_lt or cpu.cc_eq),
    "sgeq": lambda cpu: not cpu.cc_lt,
    "slssu": lambda cpu: cpu.cc_ltu,
    "sgtru": lambda cpu: not (cpu.cc_ltu or cpu.cc_eq),
    "slequ": lambda cpu: cpu.cc_ltu or cpu.cc_eq,
    "sgequ": lambda cpu: not cpu.cc_ltu,
}


def _c_addr(opnd: Operand):
    """Pre-resolved ``_address_of``; None for modes with no address."""
    reg = opnd.reg
    if opnd.mode == M_DEFER:
        return lambda cpu: cpu.regs[reg]
    if opnd.mode in (M_DISP8, M_DISP32):
        disp = opnd.ext
        return lambda cpu: (cpu.regs[reg] + disp) & 0xFFFFFFFF
    if opnd.mode == M_ABS:
        address = to_u32(opnd.ext)
        return lambda cpu: address
    return None


def _c_read(opnd: Operand, size: int = 4):
    """Pre-resolved unsigned ``_read``; None → generic slow path."""
    reg = opnd.reg
    if opnd.mode == M_REG:
        if size == 4:
            return lambda cpu: cpu.regs[reg]
        mask = (1 << (size * 8)) - 1
        return lambda cpu: cpu.regs[reg] & mask
    if opnd.mode == M_IMM:
        value = opnd.ext  # _read returns the raw immediate at any size
        return lambda cpu: value
    if opnd.mode == M_FIMM:
        return None
    addr = _c_addr(opnd)
    if addr is None:
        return None
    if size == 4:
        return lambda cpu: cpu.mem.read_u32(addr(cpu))
    return lambda cpu: cpu.mem.read_uint(addr(cpu), size)


def _c_write(opnd: Operand):
    """Pre-resolved longword ``_write``; None → generic slow path."""
    reg = opnd.reg
    if opnd.mode == M_REG:
        def write(cpu, value):
            cpu.regs[reg] = value & 0xFFFFFFFF
        return write
    if opnd.mode in (M_IMM, M_FIMM):
        return None  # execute raises SIGILL; keep that on the slow path
    addr = _c_addr(opnd)
    if addr is None:
        return None

    def write(cpu, value):
        cpu.mem.write_int(addr(cpu), 4, value)
    return write


class RVaxArch(Arch):
    name = "rvax"
    byteorder = "little"
    insn_align = 1  # byte-granular instruction stream
    nregs = 16
    nfregs = 4
    zero_reg = False
    sp = REG_SP
    fp = REG_FP
    ra = None
    arg_regs = ()
    ret_reg = REG_RETVAL
    reg_names = ("r0", "r1", "r2", "r3", "r4", "r5", "r6", "r7",
                 "r8", "r9", "r10", "r11", "ap", "fp", "sp", "pc")

    def __init__(self):
        self.nop_bytes = b"\x01"
        self.break_bytes = b"\x03"

    # -- encoding ---------------------------------------------------------

    def encode(self, insn: Insn) -> bytes:
        op = insn.op
        byte = _OPS[op][0]
        out = bytearray([byte])
        if op in _BRANCH_OPS:
            disp = insn.imm or 0
            if not isinstance(disp, int):
                raise ValueError("unresolved branch displacement %r" % (disp,))
            out += (disp & 0xFFFF).to_bytes(2, "little")
        elif op == "call":
            target = insn.target
            if not isinstance(target, int):
                raise ValueError("unresolved call target %r" % (target,))
            out += to_u32(target).to_bytes(4, "little")
        elif op == "syscall":
            out += ((insn.imm or 0) & 0xFFFF).to_bytes(2, "little")
        else:
            for operand in insn.imm or ():
                out.append((operand.mode << 4) | (operand.reg & 15))
                if operand.mode == M_DISP8:
                    if not isinstance(operand.ext, int):
                        raise ValueError("unresolved disp8 %r" % (operand.ext,))
                    out += (operand.ext & 0xFF).to_bytes(1, "little")
                elif operand.mode in (M_DISP32, M_IMM, M_ABS):
                    if not isinstance(operand.ext, int):
                        raise ValueError("unresolved operand %r" % (operand.ext,))
                    out += to_u32(operand.ext).to_bytes(4, "little")
                elif operand.mode == M_FIMM:
                    out += struct.pack("<d", float(operand.ext))
        insn.size = len(out)
        return bytes(out)

    def decode(self, mem, address: int) -> Insn:
        byte = mem.read_u8(address)
        entry = _OPTABLE.get(byte)
        if entry is None:
            raise TargetFault(SIGILL, code=byte, address=address)
        name, argc, _flt = entry
        insn = Insn(name)
        pos = address + 1
        if name in _BRANCH_OPS:
            disp = mem.read_u16(pos)
            insn.imm = disp - (1 << 16) if disp >= 1 << 15 else disp
            pos += 2
        elif name == "call":
            insn.target = mem.read_u32(pos)
            pos += 4
        elif name == "syscall":
            insn.imm = mem.read_u16(pos)
            pos += 2
        else:
            operands: List[Operand] = []
            for _ in range(argc):
                spec = mem.read_u8(pos)
                pos += 1
                mode, reg = spec >> 4, spec & 15
                operand = Operand(mode, reg)
                if mode == M_DISP8:
                    raw = mem.read_u8(pos)
                    operand.ext = raw - 256 if raw >= 128 else raw
                    pos += 1
                elif mode in (M_DISP32, M_ABS):
                    operand.ext = mem.read_u32(pos)
                    if mode == M_DISP32 and operand.ext >= 1 << 31:
                        operand.ext -= 1 << 32
                    pos += 4
                elif mode == M_IMM:
                    operand.ext = mem.read_u32(pos)
                    pos += 4
                elif mode == M_FIMM:
                    operand.ext = struct.unpack(
                        "<d", mem.read_bytes(pos, 8))[0]
                    pos += 8
                elif mode not in (M_REG, M_DEFER):
                    raise TargetFault(SIGILL, code=spec, address=address)
                operands.append(operand)
            insn.imm = operands
        insn.size = pos - address
        return insn

    def insn_length(self, insn: Insn) -> int:
        op = insn.op
        if op in _BRANCH_OPS or op == "syscall":
            return 3
        if op == "call":
            return 5
        if op in ("halt", "nop", "bpt", "ret"):
            return 1
        return 1 + sum(o.length() for o in insn.imm or ())

    # -- block dispatch ----------------------------------------------------

    block_enders = _BRANCH_OPS | frozenset(
        ["halt", "bpt", "syscall", "ret", "call", "callr"])

    #: result-operand index per opcode; ops without an entry (and not
    #: handled explicitly in :meth:`may_write_mem`) never store
    _DST_INDEX = dict(
        [(name, 1) for name in ("movl", "movb", "movw", "movzbl", "movzwl",
                                "moval", "cvtld", "cvtdl", "movd", "movf",
                                "negd")]
        + [(name, 2) for name in ("addl3", "subl3", "mull3", "divl3",
                                  "reml3", "divul3", "remul3", "andl3",
                                  "orl3", "xorl3", "ashl", "lshr",
                                  "addd3", "subd3", "muld3", "divd3")]
        + [(name, 0) for name in ("seql", "sneq", "slss", "sleq", "sgtr",
                                  "sgeq", "slssu", "sgtru", "slequ",
                                  "sgequ", "popl")])

    def may_write_mem(self, insn: Insn) -> bool:
        """Byte-granular targets store through operand specifiers, so
        writer-ness depends on the decoded addressing mode, not just
        the opcode: a register destination writes no memory."""
        op = insn.op
        if op in ("pushl", "call", "callr", "syscall"):
            return True  # stack pushes (syscall kept conservative)
        index = self._DST_INDEX.get(op)
        if index is None:
            return False  # branches, compares, ret, nop, halt, bpt
        ops = insn.imm if isinstance(insn.imm, list) else []
        if index >= len(ops):
            return True  # malformed: stay conservative
        return ops[index].mode != M_REG

    def compile_insn(self, insn: Insn, pc: int):
        """Prebuilt execute bodies with pre-resolved operand
        specifiers; float and byte/word-move ops fall back to
        :meth:`execute`."""
        op = insn.op
        M = 0xFFFFFFFF
        npc = (pc + insn.size) & M
        ops: List[Operand] = insn.imm if isinstance(insn.imm, list) else []

        if op == "nop":
            def body(cpu):
                cpu.pc = npc
            return body
        if op == "halt":
            from .isa import Halt

            def body(cpu):
                raise Halt(cpu.get_reg(REG_RETVAL))
            return body
        if op == "bpt":
            def body(cpu):
                raise TargetFault(SIGTRAP, code=0, address=pc)
            return body
        if op == "syscall":
            code = insn.imm or 0

            def body(cpu):
                cpu.syscall(code)
                cpu.pc = npc
            return body

        if op in _BRANCH_OPS:
            taken = (pc + insn.size + insn.imm) & M
            if op == "brb":
                def body(cpu):
                    cpu.pc = taken
            else:
                test = _VAX_CC_FUNCS[op]

                def body(cpu):
                    cpu.pc = taken if test(cpu) else npc
            return body

        if op == "movl":
            read0 = _c_read(ops[0])
            write1 = _c_write(ops[1])
            if read0 is None or write1 is None:
                return None

            def body(cpu):
                write1(cpu, read0(cpu))
                cpu.pc = npc
            return body

        if op == "movzbl" or op == "movzwl":
            size = 1 if op == "movzbl" else 2
            read0 = _c_read(ops[0], size)
            write1 = _c_write(ops[1])
            if read0 is None or write1 is None:
                return None

            def body(cpu):
                write1(cpu, read0(cpu))
                cpu.pc = npc
            return body

        if op == "moval":
            addr0 = _c_addr(ops[0])
            write1 = _c_write(ops[1])
            if addr0 is None or write1 is None:
                return None

            def body(cpu):
                write1(cpu, addr0(cpu))
                cpu.pc = npc
            return body

        if op in _FAST_ALU3:
            read0 = _c_read(ops[0])
            read1 = _c_read(ops[1])
            write2 = _c_write(ops[2])
            if read0 is None or read1 is None or write2 is None:
                return None
            if op == "addl3":
                def compute(a, b):
                    return a + b
            elif op == "subl3":
                def compute(a, b):
                    return b - a  # VAX order: dst = min - sub
            elif op == "mull3":
                def compute(a, b):
                    return to_i32(a) * to_i32(b)
            elif op == "andl3":
                def compute(a, b):
                    return a & b
            elif op == "orl3":
                def compute(a, b):
                    return a | b
            elif op == "xorl3":
                def compute(a, b):
                    return a ^ b
            elif op == "ashl":
                def compute(a, b):
                    count = to_i32(a)
                    return (to_i32(b) << count) if count >= 0 \
                        else (to_i32(b) >> -count)
            elif op == "lshr":
                def compute(a, b):
                    return to_u32(b) >> (to_i32(a) & 31)
            elif op in ("divl3", "reml3"):
                signed_rem = op == "reml3"

                def compute(a, b):
                    divisor = to_i32(a)
                    if divisor == 0:
                        raise TargetFault(SIGFPE, code=0, address=pc)
                    dividend = to_i32(b)
                    quotient = abs(dividend) // abs(divisor)
                    if (dividend < 0) != (divisor < 0):
                        quotient = -quotient
                    if signed_rem:
                        return dividend - quotient * divisor
                    return quotient
            else:  # divul3 / remul3
                unsigned_rem = op == "remul3"

                def compute(a, b):
                    divisor = to_u32(a)
                    if divisor == 0:
                        raise TargetFault(SIGFPE, code=0, address=pc)
                    dividend = to_u32(b)
                    if unsigned_rem:
                        return dividend % divisor
                    return dividend // divisor

            def body(cpu):
                write2(cpu, compute(read0(cpu), read1(cpu)))
                cpu.pc = npc
            return body

        if op == "cmpl":
            read0 = _c_read(ops[0])
            read1 = _c_read(ops[1])
            if read0 is None or read1 is None:
                return None

            def body(cpu):
                cpu.set_cc(read0(cpu) & M, read1(cpu) & M)
                cpu.pc = npc
            return body

        if op in _SCC_OPS:
            write0 = _c_write(ops[0])
            if write0 is None:
                return None
            test = _VAX_SCC_FUNCS[op]

            def body(cpu):
                write0(cpu, 1 if test(cpu) else 0)
                cpu.pc = npc
            return body

        if op == "pushl":
            read0 = _c_read(ops[0])
            if read0 is None:
                return None

            def body(cpu):
                regs = cpu.regs
                sp = (regs[REG_SP] - 4) & M
                regs[REG_SP] = sp
                # execute reads the operand after the sp update
                # (argument-evaluation order); keep that
                cpu.mem.write_u32(sp, read0(cpu))
                cpu.pc = npc
            return body
        if op == "popl":
            write0 = _c_write(ops[0])
            if write0 is None:
                return None

            def body(cpu):
                regs = cpu.regs
                sp = regs[REG_SP]
                write0(cpu, cpu.mem.read_u32(sp))
                regs[REG_SP] = (sp + 4) & M
                cpu.pc = npc
            return body

        if op == "call":
            target = insn.target & M

            def body(cpu):
                regs = cpu.regs
                sp = (regs[REG_SP] - 4) & M
                regs[REG_SP] = sp
                cpu.mem.write_u32(sp, npc)
                cpu.pc = target
            return body
        if op == "callr":
            read0 = _c_read(ops[0])
            if read0 is None:
                return None

            def body(cpu):
                target = read0(cpu)  # execute reads before the sp update
                regs = cpu.regs
                sp = (regs[REG_SP] - 4) & M
                regs[REG_SP] = sp
                cpu.mem.write_u32(sp, npc)
                cpu.pc = target & M
            return body
        if op == "ret":
            def body(cpu):
                regs = cpu.regs
                sp = regs[REG_SP]
                target = cpu.mem.read_u32(sp)
                regs[REG_SP] = (sp + 4) & M
                cpu.pc = target
            return body

        return None  # movb/movw, floats: the generic execute path

    # -- operand evaluation -------------------------------------------------

    def _address_of(self, cpu, operand: Operand) -> int:
        if operand.mode == M_DEFER:
            return cpu.get_reg(operand.reg)
        if operand.mode in (M_DISP8, M_DISP32):
            return to_u32(cpu.get_reg(operand.reg) + operand.ext)
        if operand.mode == M_ABS:
            return to_u32(operand.ext)
        raise TargetFault(SIGILL, code=operand.mode, address=cpu.pc)

    def _read(self, cpu, operand: Operand, size: int = 4, signed: bool = False) -> int:
        if operand.mode == M_REG:
            value = cpu.get_reg(operand.reg)
            if size < 4:
                value &= (1 << (size * 8)) - 1
            if signed and value >= 1 << (size * 8 - 1):
                value -= 1 << (size * 8)
            return value
        if operand.mode == M_IMM:
            return operand.ext
        address = self._address_of(cpu, operand)
        if signed:
            return cpu.mem.read_int(address, size)
        return cpu.mem.read_uint(address, size)

    def _write(self, cpu, operand: Operand, value: int, size: int = 4) -> None:
        if operand.mode == M_REG:
            cpu.set_reg(operand.reg, value & 0xFFFFFFFF)
            return
        if operand.mode in (M_IMM, M_FIMM):
            raise TargetFault(SIGILL, code=operand.mode, address=cpu.pc)
        cpu.mem.write_int(self._address_of(cpu, operand), size, value)

    def _read_f(self, cpu, operand: Operand, size: int = 8) -> float:
        if operand.mode == M_REG:
            return cpu.fregs[operand.reg & (self.nfregs - 1)]
        if operand.mode == M_FIMM:
            return operand.ext
        address = self._address_of(cpu, operand)
        return cpu.mem.read_f32(address) if size == 4 else cpu.mem.read_f64(address)

    def _write_f(self, cpu, operand: Operand, value: float, size: int = 8) -> None:
        if operand.mode == M_REG:
            cpu.fregs[operand.reg & (self.nfregs - 1)] = value
            return
        address = self._address_of(cpu, operand)
        if size == 4:
            cpu.mem.write_f32(address, value)
        else:
            cpu.mem.write_f64(address, value)

    # -- execution ---------------------------------------------------------

    def execute(self, cpu, insn: Insn) -> None:
        op = insn.op
        next_pc = cpu.pc + insn.size
        mem = cpu.mem
        ops: List[Operand] = insn.imm if isinstance(insn.imm, list) else []
        if op == "nop":
            pass
        elif op == "halt":
            from .isa import Halt
            raise Halt(cpu.get_reg(REG_RETVAL))
        elif op == "bpt":
            raise TargetFault(SIGTRAP, code=0, address=cpu.pc)
        elif op == "syscall":
            cpu.syscall(insn.imm or 0)
        elif op == "movl":
            self._write(cpu, ops[1], self._read(cpu, ops[0]))
        elif op == "movb":
            self._write(cpu, ops[1],
                        self._read(cpu, ops[0], 1, signed=True)
                        if ops[1].mode == M_REG
                        else self._read(cpu, ops[0], 1), size=1 if ops[1].mode != M_REG else 4)
        elif op == "movw":
            self._write(cpu, ops[1],
                        self._read(cpu, ops[0], 2, signed=True)
                        if ops[1].mode == M_REG
                        else self._read(cpu, ops[0], 2), size=2 if ops[1].mode != M_REG else 4)
        elif op == "movzbl":
            self._write(cpu, ops[1], self._read(cpu, ops[0], 1))
        elif op == "movzwl":
            self._write(cpu, ops[1], self._read(cpu, ops[0], 2))
        elif op == "moval":
            self._write(cpu, ops[1], self._address_of(cpu, ops[0]))
        elif op in ("addl3", "subl3", "mull3", "divl3", "reml3",
                    "divul3", "remul3",
                    "andl3", "orl3", "xorl3", "ashl", "lshr"):
            a = self._read(cpu, ops[0])
            b = self._read(cpu, ops[1])
            if op == "addl3":
                result = a + b
            elif op == "subl3":
                result = b - a  # VAX order: subl3 sub, min, dst = min - sub
            elif op == "mull3":
                result = to_i32(a) * to_i32(b)
            elif op in ("divul3", "remul3"):
                divisor = to_u32(a)
                if divisor == 0:
                    raise TargetFault(SIGFPE, code=0, address=cpu.pc)
                dividend = to_u32(b)
                result = dividend // divisor if op == "divul3" else dividend % divisor
            elif op in ("divl3", "reml3"):
                divisor = to_i32(a)
                if divisor == 0:
                    raise TargetFault(SIGFPE, code=0, address=cpu.pc)
                dividend = to_i32(b)
                quotient = abs(dividend) // abs(divisor)
                if (dividend < 0) != (divisor < 0):
                    quotient = -quotient
                result = quotient if op == "divl3" else dividend - quotient * divisor
            elif op == "andl3":
                result = a & b
            elif op == "orl3":
                result = a | b
            elif op == "xorl3":
                result = a ^ b
            elif op == "ashl":
                count = to_i32(a)
                result = (to_i32(b) << count) if count >= 0 else (to_i32(b) >> -count)
            else:  # lshr
                result = to_u32(b) >> (to_i32(a) & 31)
            self._write(cpu, ops[2], result)
        elif op == "cmpl":
            cpu.set_cc(to_u32(self._read(cpu, ops[0])), to_u32(self._read(cpu, ops[1])))
        elif op == "cmpd":
            a = self._read_f(cpu, ops[0])
            b = self._read_f(cpu, ops[1])
            cpu.cc_lt = a < b
            cpu.cc_eq = a == b
            cpu.cc_ltu = a < b
        elif op in _BRANCH_OPS:
            if op == "brb" or _vax_cc_test(cpu, op):
                next_pc = cpu.pc + insn.size + insn.imm
        elif op in ("seql", "sneq", "slss", "sleq", "sgtr", "sgeq", "slssu",
                    "sgtru", "slequ", "sgequ"):
            self._write(cpu, ops[0], int(_vax_scc_test(cpu, op)))
        elif op == "pushl":
            sp = to_u32(cpu.get_reg(REG_SP) - 4)
            cpu.set_reg(REG_SP, sp)
            mem.write_u32(sp, self._read(cpu, ops[0]))
        elif op == "popl":
            sp = cpu.get_reg(REG_SP)
            self._write(cpu, ops[0], mem.read_u32(sp))
            cpu.set_reg(REG_SP, sp + 4)
        elif op == "call":
            sp = to_u32(cpu.get_reg(REG_SP) - 4)
            cpu.set_reg(REG_SP, sp)
            mem.write_u32(sp, cpu.pc + insn.size)
            next_pc = insn.target
        elif op == "callr":
            target = self._read(cpu, ops[0])
            sp = to_u32(cpu.get_reg(REG_SP) - 4)
            cpu.set_reg(REG_SP, sp)
            mem.write_u32(sp, cpu.pc + insn.size)
            next_pc = target
        elif op == "ret":
            sp = cpu.get_reg(REG_SP)
            next_pc = mem.read_u32(sp)
            cpu.set_reg(REG_SP, sp + 4)
        elif op == "movd":
            self._write_f(cpu, ops[1], self._read_f(cpu, ops[0]))
        elif op == "movf":
            self._write_f(cpu, ops[1], self._read_f(cpu, ops[0], 4), 4)
        elif op in ("addd3", "subd3", "muld3", "divd3"):
            a = self._read_f(cpu, ops[0])
            b = self._read_f(cpu, ops[1])
            if op == "addd3":
                result = a + b
            elif op == "subd3":
                result = b - a
            elif op == "muld3":
                result = a * b
            else:
                if a == 0.0:
                    raise TargetFault(SIGFPE, code=1, address=cpu.pc)
                result = b / a
            self._write_f(cpu, ops[2], result)
        elif op == "negd":
            self._write_f(cpu, ops[1], -self._read_f(cpu, ops[0]))
        elif op == "cvtld":
            self._write_f(cpu, ops[1], float(to_i32(self._read(cpu, ops[0]))))
        elif op == "cvtdl":
            self._write(cpu, ops[1], int(math.trunc(self._read_f(cpu, ops[0]))))
        else:  # pragma: no cover
            raise TargetFault(SIGILL, address=cpu.pc)
        cpu.pc = to_u32(next_pc)


def _vax_cc_test(cpu, op: str) -> bool:
    return {
        "bneq": not cpu.cc_eq,
        "beql": cpu.cc_eq,
        "bgtr": not (cpu.cc_lt or cpu.cc_eq),
        "bleq": cpu.cc_lt or cpu.cc_eq,
        "bgeq": not cpu.cc_lt,
        "blss": cpu.cc_lt,
        "bgtru": not (cpu.cc_ltu or cpu.cc_eq),
        "blequ": cpu.cc_ltu or cpu.cc_eq,
        "bgequ": not cpu.cc_ltu,
        "blssu": cpu.cc_ltu,
    }[op]


def _vax_scc_test(cpu, op: str) -> bool:
    return {
        "seql": cpu.cc_eq,
        "sneq": not cpu.cc_eq,
        "slss": cpu.cc_lt,
        "sleq": cpu.cc_lt or cpu.cc_eq,
        "sgtr": not (cpu.cc_lt or cpu.cc_eq),
        "sgeq": not cpu.cc_lt,
        "slssu": cpu.cc_ltu,
        "sgtru": not (cpu.cc_ltu or cpu.cc_eq),
        "slequ": cpu.cc_ltu or cpu.cc_eq,
        "sgequ": not cpu.cc_ltu,
    }[op]
