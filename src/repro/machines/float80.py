"""80-bit extended-precision float codec (the 68020's native format).

The paper's abstract memory model fetches and stores three sizes of
floating-point values — 32, 64, and 80 bits (Sec. 4.1); the 80-bit size
exists for the 68020, whose nub needs assembly code to fetch and store
such values (Sec. 4.3).

Python has no native 80-bit float, so values are converted through the
host ``float`` (IEEE double).  Encoding is exact for every double;
decoding collapses extra mantissa precision into the nearest double.
DESIGN.md records this precision substitution — the paper itself notes
that differing float precision is *the* fundamental problem of
cross-debugging (Sec. 7), which this codec faithfully exhibits.

Format (m68k extended): 1 sign bit, 15 exponent bits (bias 16383), a
16-bit pad, then a 64-bit mantissa with an explicit integer bit.
"""

from __future__ import annotations

import math

#: Total size in bytes (the 68020 in-memory format is 12 bytes with pad;
#: we use the 10-byte packed layout plus explicit handling of the pad in
#: the machine module, matching x87/packed-extended practice).
SIZE = 10

_EXP_BIAS = 16383
_EXP_MAX = 0x7FFF


def encode(value: float) -> bytes:
    """Encode a host float as 10 little-endian extended-format bytes."""
    if isinstance(value, int):
        value = float(value)
    sign = 0x8000 if math.copysign(1.0, value) < 0 else 0
    if math.isnan(value):
        return _pack(sign | _EXP_MAX, 0xC000000000000000)
    if math.isinf(value):
        return _pack(sign | _EXP_MAX, 0x8000000000000000)
    if value == 0.0:
        return _pack(sign, 0)
    mantissa, exponent = math.frexp(abs(value))
    # frexp: value = mantissa * 2**exponent with mantissa in [0.5, 1).
    # Extended format wants an explicit integer bit: m in [1, 2).
    exponent -= 1
    biased = exponent + _EXP_BIAS
    if biased <= 0:  # denormal in extended range: encode with exponent 0
        shift = 1 - biased
        frac = int(mantissa * 2.0 * (1 << 63)) >> shift
        return _pack(sign, frac)
    frac = int(mantissa * 2.0 * (1 << 63))
    if frac >= 1 << 64:
        frac >>= 1
        biased += 1
    return _pack(sign | biased, frac)


def decode(raw: bytes) -> float:
    """Decode 10 little-endian extended-format bytes to a host float."""
    if len(raw) != SIZE:
        raise ValueError("need %d bytes, got %d" % (SIZE, len(raw)))
    frac = int.from_bytes(raw[:8], "little")
    se = int.from_bytes(raw[8:], "little")
    sign = -1.0 if se & 0x8000 else 1.0
    biased = se & _EXP_MAX
    if biased == _EXP_MAX:
        if frac == 0x8000000000000000:  # integer bit only: infinity
            return sign * math.inf
        return math.nan
    if biased == 0 and frac == 0:
        return sign * 0.0
    exponent = biased - _EXP_BIAS
    mantissa = frac / float(1 << 63)  # in [1, 2) when the integer bit is set
    try:
        return sign * math.ldexp(mantissa, exponent)
    except OverflowError:
        return sign * math.inf


def _pack(se: int, frac: int) -> bytes:
    return frac.to_bytes(8, "little") + se.to_bytes(2, "little")


def encode_be(value: float) -> bytes:
    """Big-endian byte order (the 68020 is big-endian in memory)."""
    return bytes(reversed(encode(value)))


def decode_be(raw: bytes) -> float:
    return decode(bytes(reversed(raw)))
