"""Full-fidelity machine state: the unit a recording spills.

A :class:`~repro.machines.core.CoreFile` carries what a *dead* target
needs — registers via the saved context, memory, the fault record.  A
recording checkpoint must carry more: a restored state is *resumed*, so
every bit of simulator state that affects the next instruction matters,
including the rmips load-delay slot (``Cpu._pending_load``) that a
context block has no field for.  :class:`MachineState` is that complete
state — registers, condition codes, icount, the delay-slot bookkeeping,
a sparse memory image, the planted-breakpoint table, and the output
written so far — serialized with the same sparse/zlib/CRC32 armor as
cores (:mod:`repro.machines.chunkio`).

It also computes the **divergence digest**: a CRC32 over the state,
*normalized* so a faithful replay matches the recording even where the
two legitimately differ in representation:

* the **pc is excluded** — at the same icount a recorded breakpoint
  stop sits on the trap while a replay passing through has already
  stepped the trap-site no-op, and both are the same timeline position;
* **planted trap bytes are patched back** to the original instructions
  before hashing, so breakpoints planted at record time don't have to
  exist at replay time (and vice versa);
* the **nub context area is zeroed** — it holds a saved pc and
  scratch state that differs between a stop and a pass-through.
"""

from __future__ import annotations

import struct
import zlib
from typing import Dict, List, Optional, Tuple

from .chunkio import pack_container, sparse_segments, unpack_container

MAGIC = b"LDBS"
STATE_VERSION = 1


class StateError(Exception):
    """A machine-state blob that cannot be decoded."""


def _pack_planted(planted) -> List[Tuple[int, bytes]]:
    if isinstance(planted, dict):
        return sorted(planted.items())
    return sorted(planted or [])


class MachineState:
    """One resumable simulator state (registers + memory + bookkeeping)."""

    __slots__ = ("arch_name", "byteorder", "memsize", "regs", "fregs",
                 "pc", "cc_lt", "cc_eq", "cc_ltu", "icount",
                 "pending_load", "wrote_reg", "segments", "planted",
                 "out_text")

    def __init__(self, arch_name: str, byteorder: str, memsize: int,
                 regs: List[int], fregs: List[float], pc: int,
                 cc_lt: bool, cc_eq: bool, cc_ltu: bool, icount: int,
                 pending_load: Optional[Tuple[int, int]],
                 wrote_reg: Optional[int],
                 segments: List[Tuple[int, bytes]],
                 planted: List[Tuple[int, bytes]],
                 out_text: str = ""):
        self.arch_name = arch_name
        self.byteorder = byteorder
        self.memsize = memsize
        self.regs = list(regs)
        self.fregs = list(fregs)
        self.pc = pc
        self.cc_lt = cc_lt
        self.cc_eq = cc_eq
        self.cc_ltu = cc_ltu
        self.icount = icount
        #: rmips load-delay slot: a (reg, value) commit still in flight
        self.pending_load = pending_load
        self.wrote_reg = wrote_reg
        #: sparse memory image: (start, raw target-order bytes)
        self.segments = segments
        #: planted breakpoints: (address, original little-endian bytes)
        self.planted = list(planted)
        #: target stdout written so far (restored with the state, so a
        #: resumed replay appends exactly where the recording did)
        self.out_text = out_text

    # -- capture / restore -------------------------------------------------

    @classmethod
    def capture(cls, process, planted=None) -> "MachineState":
        """Snapshot a stopped process (and its planted table)."""
        cpu = process.cpu
        mem = process.mem
        try:
            out_text = process.stdout.getvalue()
        except Exception:
            out_text = ""
        return cls(
            arch_name=process.arch.name,
            byteorder=mem.byteorder,
            memsize=mem.size,
            regs=list(cpu.regs),
            fregs=list(cpu.fregs),
            pc=cpu.pc,
            cc_lt=cpu.cc_lt, cc_eq=cpu.cc_eq, cc_ltu=cpu.cc_ltu,
            icount=cpu.icount,
            pending_load=cpu._pending_load,
            wrote_reg=cpu._wrote_reg,
            segments=sparse_segments(bytes(mem.bytes)),
            planted=_pack_planted(planted),
            out_text=out_text,
        )

    def image(self) -> bytearray:
        """The full (dense) memory image this state describes."""
        image = bytearray(self.memsize)
        for start, raw in self.segments:
            if start < 0 or start + len(raw) > self.memsize:
                raise StateError("segment [0x%x, 0x%x) outside the %d-byte "
                                 "image" % (start, start + len(raw),
                                            self.memsize))
            image[start:start + len(raw)] = raw
        return image

    def restore_into(self, process) -> None:
        """Make ``process`` this state.  Memory goes through
        ``write_bytes`` so engine write hooks see the change."""
        if process.mem.size != self.memsize:
            raise StateError("state is for a %d-byte image, process has %d"
                             % (self.memsize, process.mem.size))
        if process.arch.name != self.arch_name:
            raise StateError("state is for %s, process is %s"
                             % (self.arch_name, process.arch.name))
        cpu = process.cpu
        cpu.regs = list(self.regs)
        cpu.fregs = list(self.fregs)
        cpu.pc = self.pc
        cpu.cc_lt = self.cc_lt
        cpu.cc_eq = self.cc_eq
        cpu.cc_ltu = self.cc_ltu
        cpu.icount = self.icount
        cpu._pending_load = self.pending_load
        cpu._wrote_reg = self.wrote_reg
        process.mem.write_bytes(0, bytes(self.image()))
        process.exited = None
        try:
            process.stdout.seek(0)
            process.stdout.truncate(0)
            process.stdout.write(self.out_text)
        except Exception:
            pass  # a non-seekable sink keeps its history; state is intact

    # -- serialization -----------------------------------------------------

    def to_body(self) -> bytes:
        body = bytearray()
        name = self.arch_name.encode("ascii")
        body += struct.pack("<B", len(name)) + name
        body += struct.pack("<B", 1 if self.byteorder == "big" else 0)
        body += struct.pack("<II", self.memsize, self.pc)
        body += struct.pack("<B", (1 if self.cc_lt else 0)
                            | (2 if self.cc_eq else 0)
                            | (4 if self.cc_ltu else 0))
        body += struct.pack("<Q", self.icount)
        if self.pending_load is None:
            body += struct.pack("<iI", -1, 0)
        else:
            body += struct.pack("<iI", self.pending_load[0],
                                self.pending_load[1] & 0xFFFFFFFF)
        body += struct.pack("<i", -1 if self.wrote_reg is None
                            else self.wrote_reg)
        body += struct.pack("<H", len(self.regs))
        body += struct.pack("<%dI" % len(self.regs),
                            *[r & 0xFFFFFFFF for r in self.regs])
        body += struct.pack("<H", len(self.fregs))
        body += struct.pack("<%dd" % len(self.fregs), *self.fregs)
        body += struct.pack("<I", len(self.planted))
        for address, original in self.planted:
            body += struct.pack("<IB", address, len(original)) + original
        body += struct.pack("<I", len(self.segments))
        for start, raw in self.segments:
            body += struct.pack("<II", start, len(raw)) + raw
        out = self.out_text.encode("utf-8")
        body += struct.pack("<I", len(out)) + out
        return bytes(body)

    @classmethod
    def from_body(cls, body: bytes) -> "MachineState":
        try:
            return cls._unpack_body(body)
        except (struct.error, IndexError, UnicodeDecodeError) as exc:
            raise StateError("malformed machine state: %s" % exc)

    @classmethod
    def _unpack_body(cls, body: bytes) -> "MachineState":
        offset = 0

        def take(fmt: str):
            nonlocal offset
            values = struct.unpack_from(fmt, body, offset)
            offset += struct.calcsize(fmt)
            return values

        (name_len,) = take("<B")
        arch_name = body[offset:offset + name_len].decode("ascii")
        offset += name_len
        (big,) = take("<B")
        memsize, pc = take("<II")
        (cc,) = take("<B")
        (icount,) = take("<Q")
        pending_reg, pending_val = take("<iI")
        pending = None if pending_reg < 0 else (pending_reg, pending_val)
        (wrote,) = take("<i")
        (nregs,) = take("<H")
        regs = list(take("<%dI" % nregs))
        (nfregs,) = take("<H")
        fregs = list(take("<%dd" % nfregs))
        (nplanted,) = take("<I")
        planted = []
        for _ in range(nplanted):
            address, size = take("<IB")
            planted.append((address, body[offset:offset + size]))
            offset += size
        (nsegments,) = take("<I")
        segments = []
        for _ in range(nsegments):
            start, size = take("<II")
            raw = body[offset:offset + size]
            if len(raw) != size:
                raise StateError("truncated segment at 0x%x" % start)
            segments.append((start, raw))
            offset += size
        (out_len,) = take("<I")
        out_text = body[offset:offset + out_len].decode("utf-8")
        return cls(arch_name, "big" if big else "little", memsize,
                   regs, fregs, pc, bool(cc & 1), bool(cc & 2), bool(cc & 4),
                   icount, pending, None if wrote < 0 else wrote,
                   segments, planted, out_text)

    def to_bytes(self) -> bytes:
        """The wire/container form (what a SPILL reply carries)."""
        return pack_container(MAGIC, STATE_VERSION, self.to_body())

    @classmethod
    def from_bytes(cls, raw: bytes) -> "MachineState":
        body = unpack_container(raw, MAGIC, STATE_VERSION, StateError,
                                "machine state")
        return cls.from_body(body)

    # -- the divergence digest ---------------------------------------------

    def digest(self, context_addr: int, context_size: int) -> int:
        """The normalized CRC32 the event log records (see module doc)."""
        return _digest(self.regs, self.fregs, self.cc_lt, self.cc_eq,
                       self.cc_ltu, self.icount, self.pending_load,
                       self.wrote_reg, self.image(), dict(self.planted),
                       self.byteorder, context_addr, context_size)


def live_digest(process, planted, context_addr: int,
                context_size: int) -> int:
    """The same normalized digest, computed from a live process (the
    replay side, without a serialization round trip)."""
    cpu = process.cpu
    return _digest(cpu.regs, cpu.fregs, cpu.cc_lt, cpu.cc_eq, cpu.cc_ltu,
                   cpu.icount, cpu._pending_load, cpu._wrote_reg,
                   bytearray(process.mem.bytes), dict(planted or {}),
                   process.mem.byteorder, context_addr, context_size)


def _digest(regs, fregs, cc_lt, cc_eq, cc_ltu, icount, pending_load,
            wrote_reg, image: bytearray, planted: Dict[int, bytes],
            byteorder: str, context_addr: int, context_size: int) -> int:
    head = bytearray()
    head += struct.pack("<%dI" % len(regs),
                        *[r & 0xFFFFFFFF for r in regs])
    head += struct.pack("<%dd" % len(fregs), *fregs)
    head += struct.pack("<B", (1 if cc_lt else 0) | (2 if cc_eq else 0)
                        | (4 if cc_ltu else 0))
    head += struct.pack("<Q", icount)
    if pending_load is None:
        head += struct.pack("<iI", -1, 0)
    else:
        head += struct.pack("<iI", pending_load[0],
                            pending_load[1] & 0xFFFFFFFF)
    head += struct.pack("<i", -1 if wrote_reg is None else wrote_reg)
    # normalize the image: original instructions where traps are
    # planted, zeroes over the nub's context scratch area
    for address, original in planted.items():
        raw = original if byteorder == "little" else original[::-1]
        if 0 <= address and address + len(raw) <= len(image):
            image[address:address + len(raw)] = raw
    lo = max(0, context_addr)
    hi = min(len(image), context_addr + context_size)
    if lo < hi:
        image[lo:hi] = b"\0" * (hi - lo)
    crc = zlib.crc32(bytes(head))
    return zlib.crc32(bytes(image), crc) & 0xFFFFFFFF
