"""Ablation benches for DESIGN.md §4's called-out design choices.

* anchor-symbol memoization: every location computation may fetch from
  the target address space; the paper says the fetches "are performed
  only on demand and at most once per symbol-table entry" (Sec. 7).
  We measure wire traffic with and without the memoization.
* deferred vs eager symbol tables are covered by bench_deferral.
* the no-op breakpoint scheme's cost is covered by bench_noop_overhead.
"""

import io

import pytest

from repro.cc.driver import compile_and_link
from repro.ldb import Ldb

from .conftest import report
from .workloads import FIB_C


@pytest.fixture(scope="module")
def stopped():
    exe = compile_and_link({"fib.c": FIB_C}, "rmips", debug=True)
    ldb = Ldb(stdout=io.StringIO())
    target = ldb.load_program(exe)
    ldb.break_at_stop("fib", 9)
    ldb.run_to_stop()
    return ldb, target


def test_anchor_memoization_ablation(benchmark, stopped):
    ldb, target = stopped
    frame = target.top_frame()
    entry = frame.resolve("a")          # static: located via LazyData

    # ablated: force the location fresh every time (no memoization)
    def locate_fresh():
        saved = entry["where"]
        try:
            return target._exec_where(saved, frame)
        finally:
            pass  # never written back

    before = target.stats.of("wire", "fetch")
    for _ in range(25):
        locate_fresh()
    fresh_fetches = target.stats.of("wire", "fetch") - before

    # production: location_of memoizes into the entry
    before = target.stats.of("wire", "fetch")
    for _ in range(25):
        target.location_of(entry, frame)
    memoized_fetches = target.stats.of("wire", "fetch") - before

    benchmark(target.location_of, entry, frame)

    report("", "A1. Anchor-fetch memoization (DESIGN.md ablation; paper "
               "Sec. 7: at most once per entry)",
           "  25 locations, no memoization : %d wire fetches" % fresh_fetches,
           "  25 locations, memoized       : %d wire fetches" % memoized_fetches)

    assert fresh_fetches >= 25           # one anchor fetch per computation
    assert memoized_fetches <= 1         # at most once per entry


def test_register_memory_ablation(benchmark, stopped):
    """Without the register memory, a byte fetch from a register would
    need the target's byte order; the DAG makes both orders agree."""
    from repro.cc.driver import compile_and_link as cal
    from repro.postscript import Location

    results = {}
    for arch in ("rmips", "rmipsel"):
        exe = cal({"fib.c": FIB_C}, arch, debug=True)
        ldb = Ldb(stdout=io.StringIO())
        target = ldb.load_program(exe)
        ldb.break_at_stop("fib", 7)
        ldb.run_to_stop()
        frame = target.top_frame()
        entry = frame.resolve("i")
        location = target.location_of(entry, frame)
        results[arch] = (frame.memory.fetch(location, "i8"),
                         frame.memory.fetch(location, "i32"))
        target.kill()

    benchmark(lambda: None)
    report("  register-memory byte fetches agree across byte orders: "
           "%r == %r" % (results["rmips"], results["rmipsel"]))
    assert results["rmips"] == results["rmipsel"]
    # and the raw context bytes REALLY differ between the two targets,
    # which is exactly what the register memory hides
