"""P2 — the session-server fleet: many live sessions, bounded latency.

The server's scaling claim made measurable: one :class:`DebugServer`
hosting a fleet of concurrent sessions (every one a full debugger
stack — compiler-built target, nub thread, supervised worker), driven
by one client thread per session through the JSON-line gateway.

Measured, straight from the shared Metrics registry the server already
feeds (no bench-side stopwatches around the interesting part):

* ``p50_us`` / ``p99_us`` — per-command service latency
  (``serve.cmd_latency_us``), across every session at peak load;
* ``commands`` / ``errors`` — fleet totals; a single error fails the
  budget (a loaded server answers, correctly, or the bench is red);
* ``peak_sessions`` — live sessions held simultaneously (the
  acceptance floor is 100 in the full run).

Budgets: zero errors, every spawned session live at peak, zero
sessions left after detach, p99 under 5 s.  Emits
``BENCH_server_fleet.json`` at the repository root.  ``BENCH_QUICK=1``
runs a 20-session fleet (the CI smoke mode); the full run holds 120.
"""

from __future__ import annotations

import json
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.serve import DebugServer

from .conftest import report

FLEET = 20 if os.environ.get("BENCH_QUICK") else 120
CONTINUES = 3  # breakpoint hits driven per session at peak load

COUNTER_C = """int counter;
int tick(int n) { counter = counter + n; return counter; }
int main(void)
{
    int i;
    for (i = 0; i < 50; i++)
        tick(1);
    return counter;
}
"""

_OUT = Path(__file__).resolve().parent.parent / "BENCH_server_fleet.json"

MAX_P99_SECONDS = 5.0


def _drive(srv, results, index):
    """One fleet member: spawn, debug under load, detach."""
    client = srv.client(timeout=120.0)
    try:
        info = client.spawn(source=COUNTER_C)
        sid, token = info["session"], info["token"]
        results[index]["spawned"] = True
        # hold here until the whole fleet is live: the command phase
        # must run at peak concurrency, not against a ramp
        results["barrier"].wait(timeout=300.0)
        client.command(sid, token, "break", {"at": "tick"}, deadline=60.0)
        for _ in range(CONTINUES):
            event = client.command(sid, token, "continue", deadline=60.0)
            assert event["event"] == "breakpoint", event
        printed = client.command(sid, token, "print", {"expr": "counter"},
                                 deadline=60.0)
        assert "text" in printed or "value" in printed
        client.command(sid, token, "ping", deadline=60.0)
        results[index]["commands"] = CONTINUES + 3
        results["peak"].wait(timeout=300.0)  # everyone finishes at load
        client.detach(sid, token)
        results[index]["ok"] = True
    except Exception as err:  # noqa: BLE001 - a bench failure is data
        results[index]["error"] = "%s: %s" % (type(err).__name__, err)
    finally:
        client.close()


def measure(fleet: int) -> dict:
    srv = DebugServer(max_sessions=fleet + 8, default_deadline=60.0,
                      hang_grace=5.0, idle_ttl=600.0, token_seed=2026)
    metrics = srv.manager.obs.metrics
    results = {i: {} for i in range(fleet)}
    results["barrier"] = threading.Barrier(fleet)
    results["peak"] = threading.Barrier(fleet)
    started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=fleet) as pool:
        futures = [pool.submit(_drive, srv, results, i)
                   for i in range(fleet)]
        # sample the live-session gauge while the fleet runs
        peak_sessions = 0
        while any(not f.done() for f in futures):
            peak_sessions = max(peak_sessions,
                                len(srv.manager.list_sessions()))
            time.sleep(0.1)
        for f in futures:
            f.result()
    elapsed = time.perf_counter() - started

    errors = [results[i]["error"] for i in range(fleet)
              if "error" in results[i]]
    commands = sum(results[i].get("commands", 0) for i in range(fleet))
    snapshot = metrics.snapshot()
    leftover = srv.manager.list_sessions()
    out = {
        "benchmark": "server_fleet",
        "workload": ("%d concurrent sessions x (break + %d continues + "
                     "print + ping) through the JSON gateway"
                     % (fleet, CONTINUES)),
        "fleet": fleet,
        "peak_sessions": peak_sessions,
        "elapsed_seconds": elapsed,
        "commands": commands,
        "commands_per_second": commands / elapsed if elapsed else 0.0,
        "p50_us": metrics.percentile("serve.cmd_latency_us", 0.50),
        "p99_us": metrics.percentile("serve.cmd_latency_us", 0.99),
        "served_commands": snapshot.get("serve.commands", 0),
        "spawns": snapshot.get("serve.spawns", 0),
        "deaths": snapshot.get("serve.deaths", 0),
        "errors": errors,
        "sessions_left": len(leftover),
        "budgets": {"errors": 0, "p99_seconds": MAX_P99_SECONDS},
    }
    srv.close()
    return out


def emit(data: dict) -> None:
    _OUT.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _check(data: dict) -> None:
    assert data["errors"] == [], data["errors"][:5]
    assert data["peak_sessions"] >= data["fleet"], data["peak_sessions"]
    assert data["sessions_left"] == 0, data["sessions_left"]
    assert data["deaths"] == 0, data["deaths"]
    assert data["p99_us"] < MAX_P99_SECONDS * 1e6, data["p99_us"]


def test_server_fleet_budget():
    data = measure(FLEET)
    emit(data)
    report("", "P2. Session-server fleet: concurrent sessions under load",
           "  workload: %s" % data["workload"],
           "  peak %d sessions, %d commands in %.2fs (%.0f/s)"
           % (data["peak_sessions"], data["commands"],
              data["elapsed_seconds"], data["commands_per_second"]),
           "  latency p50 %.1fms p99 %.1fms"
           % (data["p50_us"] / 1e3, data["p99_us"] / 1e3))
    _check(data)


if __name__ == "__main__":
    data = measure(FLEET)
    emit(data)
    _check(data)
    print("fleet %d peak %d commands %d in %.2fs (%.0f/s) "
          "p50 %.1fms p99 %.1fms errors %d"
          % (data["fleet"], data["peak_sessions"], data["commands"],
             data["elapsed_seconds"], data["commands_per_second"],
             data["p50_us"] / 1e3, data["p99_us"] / 1e3,
             len(data["errors"])))
    print("wrote %s" % _OUT)
