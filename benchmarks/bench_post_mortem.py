"""P1 — post-mortem cores: write/open cost and size budget.

A core file is only useful if writing one is cheap enough to do
reflexively (the nub writes one on *every* fatal fault) and opening one
is fast enough to be the first debugging step, not a chore.  This bench
crashes the standard loop-then-crash workload on every architecture
and measures, per ISA:

* ``write_seconds`` / ``core_bytes`` — serializing the dead target
  (sparse segments + zlib + CRC, symbol table embedded);
* ``open_seconds`` — ``open_core`` through to a finished backtrace,
  the whole debugger stack running over the recorded image;
* correctness: the post-mortem backtrace must be byte-identical to the
  live session's backtrace at the fault.

Budgets asserted (generous; they catch regressions, not jitter):
each core under 256 KiB on disk, write and open each under 2 s.
Emits ``BENCH_post_mortem.json`` at the repository root.
``BENCH_QUICK=1`` runs a single timing repetition (the CI smoke mode).
"""

from __future__ import annotations

import io
import json
import os
import time
from pathlib import Path

from repro.cc.driver import compile_and_link
from repro.ldb import Ldb
from repro.machines import ARCH_NAMES, SIGSEGV

from .conftest import report

LOOPS = 40

BOOM_C = """int g;
void tick(int i) { g = g + i; }
void poke(int *p) { *p = 42; }
int main(void) {
    int i;
    for (i = 0; i < %d; i++)
        tick(i);
    poke((int *)0x7fffffff);
    return 0;
}
""" % LOOPS

_OUT = Path(__file__).resolve().parent.parent / "BENCH_post_mortem.json"

#: the regression budgets (hard asserts below)
MAX_CORE_BYTES = 256 * 1024
MAX_WRITE_SECONDS = 2.0
MAX_OPEN_SECONDS = 2.0

_EXES = {}


def _exe(arch):
    if arch not in _EXES:
        _EXES[arch] = compile_and_link({"boom.c": BOOM_C}, arch, debug=True)
    return _EXES[arch]


def run_arch(arch: str, core_path: str) -> dict:
    ldb = Ldb(stdout=io.StringIO())
    target = ldb.load_program(_exe(arch))
    while ldb.run_to_stop() == "stopped" and target.signo != SIGSEGV:
        pass
    assert target.signo == SIGSEGV
    live_bt = ldb.backtrace_text()

    started = time.perf_counter()
    target.dump_core(core_path)
    write_seconds = time.perf_counter() - started
    core_bytes = os.path.getsize(core_path)

    started = time.perf_counter()
    post_ldb = Ldb(stdout=io.StringIO())
    post_ldb.open_core(core_path)
    post_bt = post_ldb.backtrace_text()
    open_seconds = time.perf_counter() - started

    return {
        "arch": arch,
        "write_seconds": write_seconds,
        "open_seconds": open_seconds,
        "core_bytes": core_bytes,
        "backtrace_matches_live": post_bt == live_bt,
    }


def _timed(arch: str, core_path: str, reps: int) -> dict:
    best = None
    for _ in range(reps):
        row = run_arch(arch, core_path)
        key = row["write_seconds"] + row["open_seconds"]
        if best is None or key < best[0]:
            best = (key, row)
    return best[1]


def measure(reps: int, scratch: str) -> dict:
    out = {
        "benchmark": "post_mortem",
        "workload": ("a %d-iteration loop -> SIGSEGV -> dumpcore -> "
                     "open_core -> backtrace" % LOOPS),
        "reps": reps,
        "budgets": {"core_bytes": MAX_CORE_BYTES,
                    "write_seconds": MAX_WRITE_SECONDS,
                    "open_seconds": MAX_OPEN_SECONDS},
        "arches": {},
    }
    for arch in ARCH_NAMES:
        path = os.path.join(scratch, "%s.core" % arch)
        out["arches"][arch] = _timed(arch, path, reps)
    return out


def emit(data: dict) -> None:
    _OUT.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _check(row: dict) -> None:
    # correctness before speed, budgets before jitter
    assert row["backtrace_matches_live"], row["arch"]
    assert row["core_bytes"] < MAX_CORE_BYTES, row
    assert row["write_seconds"] < MAX_WRITE_SECONDS, row
    assert row["open_seconds"] < MAX_OPEN_SECONDS, row


def test_post_mortem_budget(tmp_path):
    reps = 1 if os.environ.get("BENCH_QUICK") else 3
    data = measure(reps, str(tmp_path))
    emit(data)
    report("", "P1. Post-mortem cores: write/open cost per ISA",
           "  workload: %s" % data["workload"])
    for arch in ARCH_NAMES:
        row = data["arches"][arch]
        report("  %-8s core %6d bytes, write %.4fs, open+bt %.4fs"
               % (arch, row["core_bytes"], row["write_seconds"],
                  row["open_seconds"]))
        _check(row)


if __name__ == "__main__":
    import tempfile

    with tempfile.TemporaryDirectory() as scratch:
        data = measure(reps=1 if os.environ.get("BENCH_QUICK") else 3,
                       scratch=scratch)
    emit(data)
    for arch in ARCH_NAMES:
        row = data["arches"][arch]
        _check(row)
        print("%-8s core %6d bytes write %.4fs open+bt %.4fs match=%s"
              % (arch, row["core_bytes"], row["write_seconds"],
                 row["open_seconds"], row["backtrace_matches_live"]))
    print("wrote %s" % _OUT)
