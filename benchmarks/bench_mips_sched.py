"""E2 — restricted MIPS scheduling costs 13% (paper Sec. 3).

"When lcc compiles for debugging, the MIPS code size increases by 13%,
because there are load delay slots that the assembler is unable to fill
using the more restricted scheduling.  This penalty is independent of
the cost of the explicitly inserted no-ops."

We separate the two effects exactly as the paper does: the scheduler's
statistics report the delay-slot nops it inserted, excluding the
explicit stopping-point no-ops.
"""

import pytest

from repro.cc.ctypes_ import TypeSystem
from repro.cc.gen import get_backend
from repro.cc.irgen import IRGen
from repro.cc.parser import parse
from repro.cc.sema import Sema
from repro.cc.asmsched import count_insns, schedule
from repro.machines.isa import Insn

from .conftest import report
from .workloads import memory_heavy_program


def compile_text(source, debug):
    """Unscheduled rmips text for one unit."""
    types = TypeSystem("rmips")
    ast = parse(source, "bench.c", types)
    info = Sema(types, "bench.c").analyze(ast)
    unit_ir = IRGen(types, info).generate(ast)
    backend = get_backend("rmips")
    unit = backend.compile_unit(unit_ir, debug=debug)
    return unit.text


@pytest.fixture(scope="module")
def corpus():
    return memory_heavy_program(functions=40)


def test_restricted_scheduling_penalty(benchmark, corpus):
    # The same generated code, scheduled under both regimes.  Debug mode
    # restricts motion to between stopping points; without -g only basic
    # blocks bound the regions.
    text_plain = compile_text(corpus, debug=False)
    _sched_plain, stats_plain = schedule(list(text_plain), debug=False)
    text_debug = compile_text(corpus, debug=True)
    _sched_debug, stats_debug = schedule(list(text_debug), debug=True)

    benchmark.pedantic(schedule, args=(list(text_debug), True),
                       rounds=3, iterations=1)

    base = count_insns(text_plain)
    extra_nops = stats_debug.nops_inserted - stats_plain.nops_inserted
    penalty = 100.0 * extra_nops / base

    fill_full = 100.0 * stats_plain.filled / max(stats_plain.hazards, 1)
    fill_restricted = 100.0 * stats_debug.filled / max(stats_debug.hazards, 1)
    report("", "E2. Restricted delay-slot scheduling on rmips "
               "(paper Sec. 3: 13%, independent of explicit no-ops)",
           "  slot fill rate    : %.0f%% full scheduling vs %.0f%% "
           "restricted" % (fill_full, fill_restricted),
           "  full scheduling   : %4d hazards, %4d filled, %4d nops"
           % (stats_plain.hazards, stats_plain.filled,
              stats_plain.nops_inserted),
           "  restricted (-g)   : %4d hazards, %4d filled, %4d nops"
           % (stats_debug.hazards, stats_debug.filled,
              stats_debug.nops_inserted),
           "  extra padding     : %d nops on %d instructions = +%.1f%%"
           % (extra_nops, base, penalty))

    # -- shape ----------------------------------------------------------
    # restricted scheduling fills fewer slots and pads more
    assert stats_debug.filled <= stats_plain.filled
    assert stats_debug.nops_inserted >= stats_plain.nops_inserted
    assert extra_nops > 0
    # the penalty is a sizable single-digit-to-tens percentage
    assert 1.0 <= penalty <= 30.0, penalty


def test_fill_rate_with_full_scheduling(corpus):
    """Unrestricted scheduling should fill a decent share of slots."""
    text = compile_text(corpus, debug=False)
    _out, stats = schedule(list(text), debug=False)
    assert stats.hazards > 0
    fill_rate = stats.filled / stats.hazards
    report("  full-schedule fill rate: %.0f%% of %d hazards"
           % (100 * fill_rate, stats.hazards))
    assert fill_rate > 0.10
