"""Benchmark plumbing: a terminal report that survives output capture.

Benchmarks reproduce the paper's tables and figures; each appends its
rows via :func:`report`, and a pytest terminal-summary hook prints the
collected reproduction report after the run — alongside pytest-
benchmark's own timing table.
"""

import sys

_REPORT_LINES = []


def report(*lines):
    """Queue lines for the end-of-run reproduction report."""
    _REPORT_LINES.extend(lines)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORT_LINES:
        return
    terminalreporter.section("paper reproduction report")
    for line in _REPORT_LINES:
        terminalreporter.write_line(line)


import pytest


@pytest.fixture(scope="session")
def large_source():
    from .workloads import large_program
    return large_program(functions=120)


@pytest.fixture(scope="session")
def hello_source():
    from .workloads import hello_program
    return hello_program()
