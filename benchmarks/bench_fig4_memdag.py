"""F4 — Fig. 4: the abstract-memory DAG for a frame.

The paper's walk-through (Sec. 4.1): printing `i` at stopping point 7
routes joined -> register -> alias -> wire -> nub (register 30 aliases a
context slot in the data space); printing `a` routes the element fetches
from the joined memory directly to the wire.  This bench reproduces the
routing and counts traffic at each node.
"""

import io

import pytest

from repro.cc.driver import compile_and_link
from repro.ldb import Ldb

from .conftest import report
from .workloads import FIB_C


@pytest.fixture(scope="module")
def stopped_at_7():
    # cache=False: this bench measures the Fig. 4 per-node routing, so
    # every fetch must reach the wire as its own FETCH message
    exe = compile_and_link({"fib.c": FIB_C}, "rmips", debug=True)
    ldb = Ldb(stdout=io.StringIO())
    target = ldb.load_program(exe, cache=False)
    ldb.break_at_stop("fib", 7)   # i++ in the first loop (paper Sec. 4.1)
    ldb.run_to_stop()
    return ldb, target


def deltas_between(frame, target, action, what="fetch"):
    """Per-node counter increments around ``action()`` (MemoryStats
    snapshot/diff API); returns (deltas, action result)."""
    node_before = frame.memory.stats.snapshot()
    wire_before = target.stats.snapshot()
    result = action()
    node_diff = frame.memory.stats.diff(node_before)
    wire_diff = target.stats.diff(wire_before)
    out = {node: node_diff.get("%s.%s" % (node, what), 0)
           for node in ("joined", "register", "alias")}
    out["wire"] = wire_diff.get("wire.%s" % what, 0)
    return out, result


def test_fig4_register_fetch_routing(benchmark, stopped_at_7):
    """Fetching i: the request travels the whole DAG."""
    ldb, target = stopped_at_7
    frame = target.top_frame()
    entry = frame.resolve("i")
    location = target.location_of(entry, frame)

    deltas, value = deltas_between(
        frame, target, lambda: frame.memory.fetch(location, "i32"))

    benchmark(frame.memory.fetch, location, "i32")

    report("", "F4. Abstract-memory DAG routing (paper Fig. 4, Sec. 4.1)",
           "  i lives at %r (a register alias into the context)" % location,
           "  one fetch of i: joined+%d register+%d alias+%d wire+%d"
           % (deltas["joined"], deltas["register"], deltas["alias"],
              deltas["wire"]),
           "  i = %d" % value)

    assert location.space == "r"
    assert value == 2            # first time at stop 7: i == 2
    # the register fetch passed through every node exactly once
    assert deltas["joined"] == 1
    assert deltas["register"] == 1
    assert deltas["alias"] == 1
    assert deltas["wire"] == 1


def test_fig4_data_fetch_skips_register_nodes(benchmark, stopped_at_7):
    """Fetching a's elements routes joined -> wire directly."""
    ldb, target = stopped_at_7
    frame = target.top_frame()
    entry = frame.resolve("a")
    location = target.location_of(entry, frame)

    deltas, element0 = deltas_between(
        frame, target, lambda: frame.memory.fetch(location, "i32"))

    report("  one fetch of a[0]: joined+%d register+%d alias+%d wire+%d "
           "(a[0] = %d)" % (deltas["joined"], deltas["register"],
                            deltas["alias"], deltas["wire"], element0))

    assert location.space == "d"
    assert element0 == 1
    assert deltas["joined"] == 1
    assert deltas["register"] == 0   # data requests skip the register path
    assert deltas["alias"] == 0
    assert deltas["wire"] == 1
    benchmark(frame.memory.fetch, location, "i32")


def test_fig4_subword_register_access(stopped_at_7):
    """A sub-word register fetch becomes a full-word operation, making
    byte order irrelevant (the register memory's job)."""
    from repro.postscript import Location

    ldb, target = stopped_at_7
    frame = target.top_frame()
    entry = frame.resolve("i")
    location = target.location_of(entry, frame)
    low_byte = frame.memory.fetch(location, "i8")
    full = frame.memory.fetch(location, "i32")
    assert low_byte == full & 0xFF
    report("  fetch8 of i returns the low-order byte (%d) via a "
           "full-word fetch" % low_byte)


def test_fig4_store_routes_to_context(stopped_at_7):
    """Stores traverse the same DAG and land in the saved context."""
    ldb, target = stopped_at_7
    frame = target.top_frame()
    entry = frame.resolve("i")
    location = target.location_of(entry, frame)
    old = frame.memory.fetch(location, "i32")
    try:
        frame.memory.store(location, "i32", 9)
        assert frame.memory.fetch(location, "i32") == 9
        # and it really reached target memory (the context area)
        ctx_value = target.process.mem.read_u32(
            target.context_addr + 4 + 4 * location.offset)
        assert ctx_value == 9
    finally:
        frame.memory.store(location, "i32", old)
