"""T2 — the paper's Sec. 7 startup-phase timing table.

    Modula-3 initialization                      1.9 sec
    Read initial PostScript                      1.6
    Read symbol table for hello.c (1 line)       2.2
    Read symbol table for lcc (13,000 lines)     5.5
    Connect to hello.c (one machine)             1.8
    Connect to lcc (one machine)                 5.1
    Connect to lcc (two MIPS machines)           6.2
    Connect to lcc (host MIPS, target SPARC)     5.0
    dbx: start and read a.out for lcc            1.5
    gdb: start and read a.out for lcc            1.1

Phase mapping: "Modula-3 initialization" -> constructing the bare
interpreter; "read initial PostScript" -> prelude + symload + arch
dictionaries; symbol-table reading -> interpreting the loader table;
connecting -> starting the target under its nub and taking the entry
stop.  The dbx/gdb baseline is the binary-stabs reader.

Shape expectations: reading the large program's PostScript table costs
several times the one-liner's; cross-architecture connection costs about
the same as same-architecture (the paper's point); and the stabs
baseline is several times faster than reading PostScript tables —
retargetability is paid for in startup time.
"""

import io
import time

import pytest

from repro.cc.driver import compile_and_link, loader_table_ps
from repro.cc.stabs import N_SLINE
from repro.ldb import Ldb
from repro.postscript import Interp, new_interp

from .conftest import report
from .workloads import hello_program, large_program


def best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def read_stabs_baseline(blob):
    """The dbx/gdb analog: parse binary stabs into symbol records."""
    import struct
    count, str_size = struct.unpack("<II", blob[:8])
    records = []
    offset = 8
    strtab_at = 8 + 12 * count
    strtab = blob[strtab_at:]
    for _ in range(count):
        strx, ntype, _other, desc, value = struct.unpack(
            "<IBBhI", blob[offset : offset + 12])
        offset += 12
        end = strtab.index(b"\0", strx)
        records.append((strtab[strx:end].decode("latin-1"), ntype, desc, value))
    return records


@pytest.fixture(scope="module")
def programs():
    hello = compile_and_link({"hello.c": hello_program()}, "rmips", debug=True)
    big = compile_and_link({"big.c": large_program(functions=120)}, "rmips",
                           debug=True)
    big_sparc = compile_and_link({"big.c": large_program(functions=120)},
                                 "rsparc", debug=True)
    return hello, big, big_sparc


def test_startup_phase_table(benchmark, programs):
    hello, big, big_sparc = programs
    rows = []

    t_init = best_of(lambda: Interp(stdout=io.StringIO()))
    rows.append(("Interpreter initialization", t_init))
    t_prelude = best_of(lambda: new_interp(stdout=io.StringIO())) - t_init
    rows.append(("Read initial PostScript", max(t_prelude, 0.0)))

    hello_ps = loader_table_ps(hello)
    big_ps = loader_table_ps(big)
    big_sparc_ps = loader_table_ps(big_sparc)

    def read_table(ps_source):
        ldb = Ldb(stdout=io.StringIO())
        ldb.read_loader_table(ps_source)

    t_hello_read = best_of(lambda: read_table(hello_ps))
    rows.append(("Read symbol table for hello.c (1 line)", t_hello_read))
    t_big_read = best_of(lambda: read_table(big_ps))
    rows.append(("Read symbol table for big.c (%d lines)"
                 % len(large_program(120).splitlines()), t_big_read))

    def connect(exe, ps_source):
        ldb = Ldb(stdout=io.StringIO())
        target = ldb.load_program(exe, table_ps=ps_source)
        target.kill()

    t_hello_connect = best_of(lambda: connect(hello, hello_ps))
    rows.append(("Connect to hello.c (one machine)", t_hello_connect))
    t_big_connect = best_of(lambda: connect(big, big_ps))
    rows.append(("Connect to big.c (one machine)", t_big_connect))

    def connect_two():
        ldb = Ldb(stdout=io.StringIO())
        t1 = ldb.load_program(big, table_ps=big_ps)
        t2 = ldb.load_program(big, table_ps=big_ps)
        t1.kill()
        t2.kill()

    t_two = best_of(connect_two, repeats=2)
    rows.append(("Connect to big.c (two rmips targets)", t_two))

    def connect_cross():
        ldb = Ldb(stdout=io.StringIO())
        t1 = ldb.load_program(big_sparc, table_ps=big_sparc_ps)
        t1.kill()

    t_cross = best_of(connect_cross)
    rows.append(("Connect to big.c (target rsparc)", t_cross))

    stabs_blob = big.compiled_units[0].unit.stabs
    t_stabs = best_of(lambda: read_stabs_baseline(stabs_blob))
    rows.append(("stabs baseline: read symbols for big.c", t_stabs))

    benchmark.pedantic(read_table, args=(big_ps,), rounds=2, iterations=1)

    report("", "T2. Startup phases (paper Sec. 7 table; shape, not 1992 "
               "absolute times)")
    for label, seconds in rows:
        report("  %-46s %8.3f s" % (label, seconds))

    # -- shape assertions -------------------------------------------------
    # the large table costs several times the one-line program's
    assert t_big_read > 2.0 * t_hello_read
    # cross-architecture connection is not more expensive than
    # same-architecture (the paper: 5.0s SPARC vs 5.1s MIPS)
    assert t_cross < 2.0 * t_big_connect + 0.5
    # the machine-dependent (stabs) baseline reads symbols much faster
    # than interpreting PostScript — the cost of retargetability
    assert t_stabs < t_big_read / 3
    # two targets cost roughly twice one target
    assert t_two < 3.0 * t_big_connect + 0.5
