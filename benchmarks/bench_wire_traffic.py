"""W1 — wire traffic: block transfers vs. per-word FETCH.

Hanson's follow-up (MSR-TR-99-4) singles out a compact block-oriented
protocol as the key to making the nub fast.  This bench drives the same
breakpoint -> backtrace -> expression-eval -> print -> registers
workload on all four ISAs three ways:

* ``uncached`` — the paper's Sec. 4.1 baseline, one FETCH per access;
* ``cached`` — the write-through CachingMemory over BLOCKFETCH;
* ``legacy`` — the caching debugger against a nub built without the
  block extension, proving the per-word fallback works.

It asserts the cached run produces byte-identical output with >= 5x
fewer nub round-trips, and emits ``BENCH_wire_traffic.json`` at the
repository root to seed the perf trajectory.  ``BENCH_QUICK=1`` runs a
single timing repetition (the CI smoke mode).
"""

from __future__ import annotations

import io
import json
import os
import time
from pathlib import Path

from repro.cc.driver import compile_and_link
from repro.ldb import Ldb

from .conftest import report
from .workloads import FIB_C

ARCHS = ("rmips", "rsparc", "rm68k", "rvax")
EXPRESSIONS = ("j", "n", "a[0]+a[9]")
STOP_INDEX = 9  # inside fib's print loop: j, n, and all of a[] are live
REDUCTION_FLOOR = 5.0

_OUT = Path(__file__).resolve().parent.parent / "BENCH_wire_traffic.json"


def run_workload(arch: str, cache: bool, block_nub: bool = True):
    """One full debug conversation; returns (results, stats dict)."""
    exe = compile_and_link({"fib.c": FIB_C}, arch, debug=True)
    ldb = Ldb(stdout=io.StringIO())
    target = ldb.load_program(exe, cache=cache, block_nub=block_nub)
    ldb.break_at_stop("fib", STOP_INDEX)
    started = time.perf_counter()
    ldb.run_to_stop()
    results = [ldb.backtrace_text()]
    frame = target.top_frame()
    for expression in EXPRESSIONS:
        results.append(repr(ldb.evaluate(expression, frame=frame)))
    results.append(ldb.print_variable("a", frame=frame))
    results.append(ldb.registers_text())
    elapsed = time.perf_counter() - started
    # every number below reads from the unified Metrics registry: the
    # memory DAG's wire.*/cache.* counters are mirrored into it and the
    # session adds its own session.* family (requests, bytes, retries)
    metrics = ldb.obs.metrics
    stats = {
        "round_trips": metrics.total("wire."),
        "seconds": elapsed,
        "counters": metrics.snapshot(),
    }
    try:
        target.kill()
    except Exception:
        pass
    return results, stats


def _timed(arch: str, cache: bool, block_nub: bool = True, reps: int = 3):
    """Best-of-``reps`` wall clock; counters from the last rep."""
    best = None
    for _ in range(reps):
        results, stats = run_workload(arch, cache, block_nub)
        if best is None or stats["seconds"] < best[1]["seconds"]:
            best = (results, stats)
    return best


def measure(reps: int) -> dict:
    out = {
        "benchmark": "wire_traffic",
        "workload": ("breakpoint -> backtrace -> eval %s -> print a "
                     "-> registers" % (EXPRESSIONS,)),
        "reduction_floor": REDUCTION_FLOOR,
        "reps": reps,
        "archs": {},
    }
    for arch in ARCHS:
        base_results, base = _timed(arch, cache=False, reps=reps)
        cached_results, cached = _timed(arch, cache=True, reps=reps)
        legacy_results, legacy = _timed(arch, cache=True, block_nub=False,
                                        reps=reps)
        reduction = base["round_trips"] / max(1, cached["round_trips"])
        out["archs"][arch] = {
            "uncached": {"round_trips": base["round_trips"],
                         "seconds": base["seconds"]},
            "cached": {"round_trips": cached["round_trips"],
                       "seconds": cached["seconds"],
                       "blockfetches":
                           cached["counters"].get("wire.blockfetch", 0),
                       "cache_hits": cached["counters"].get("cache.hit", 0),
                       "bytes_out":
                           cached["counters"].get("session.bytes_out", 0),
                       "bytes_in":
                           cached["counters"].get("session.bytes_in", 0)},
            "legacy_fallback": {"round_trips": legacy["round_trips"]},
            "reduction": round(reduction, 2),
            "identical": cached_results == base_results,
            "legacy_identical": legacy_results == base_results,
        }
    return out


def emit(data: dict) -> None:
    _OUT.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def test_wire_traffic_reduction():
    reps = 1 if os.environ.get("BENCH_QUICK") else 3
    data = measure(reps)
    emit(data)
    report("", "W1. Wire traffic: block transfers vs. per-word FETCH",
           "  workload: %s" % data["workload"])
    for arch, row in data["archs"].items():
        report("  %-7s %4d -> %3d round-trips (%.1fx), legacy fallback %4d, "
               "identical=%s/%s"
               % (arch, row["uncached"]["round_trips"],
                  row["cached"]["round_trips"], row["reduction"],
                  row["legacy_fallback"]["round_trips"],
                  row["identical"], row["legacy_identical"]))
        assert row["identical"], "%s: cached output differs" % arch
        assert row["legacy_identical"], "%s: legacy output differs" % arch
        assert row["reduction"] >= REDUCTION_FLOOR, (
            "%s: only %.1fx round-trip reduction" % (arch, row["reduction"]))
        # a legacy nub costs the failed negotiation nothing: the session
        # never sends a block message on a no-FEATURE_BLOCK connection
        assert (row["legacy_fallback"]["round_trips"]
                <= row["uncached"]["round_trips"] + 2)


if __name__ == "__main__":
    data = measure(reps=1 if os.environ.get("BENCH_QUICK") else 3)
    emit(data)
    for arch, row in data["archs"].items():
        print("%-7s %4d -> %3d round-trips (%.1fx) identical=%s legacy=%d"
              % (arch, row["uncached"]["round_trips"],
                 row["cached"]["round_trips"], row["reduction"],
                 row["identical"], row["legacy_fallback"]["round_trips"]))
    print("wrote %s" % _OUT)
