"""E1 — no-ops at stopping points grow code 16-19% (paper Sec. 3).

"The no-ops increase the number of instructions by 16-19%, depending on
the target."  We compile the same corpus with and without -g for every
target and compare instruction counts.  (The rmips numbers also include
the delay-slot padding difference; bench_mips_sched isolates that.)
"""

import pytest

from repro.cc.driver import compile_unit
from repro.machines.isa import Insn

from .conftest import report
from .workloads import FIB_C, large_program

ARCHES = ("rmips", "rsparc", "rm68k", "rvax")


def insn_count(source, arch, debug):
    unit = compile_unit(source, "bench.c", arch, debug=debug).unit
    return sum(1 for item in unit.text if isinstance(item, Insn))


@pytest.fixture(scope="module")
def corpus():
    return large_program(functions=60, seed=7)


def test_noop_overhead(benchmark, corpus):
    rows = []
    overheads = {}
    for arch in ARCHES:
        plain = insn_count(corpus, arch, debug=False)
        debug = insn_count(corpus, arch, debug=True)
        overhead = 100.0 * (debug - plain) / plain
        overheads[arch] = overhead
        rows.append("%-8s %8d %8d   +%.1f%%" % (arch, plain, debug, overhead))
    benchmark.pedantic(insn_count, args=(corpus, "rmips", True),
                       rounds=3, iterations=1)

    report("", "E1. Stopping-point no-op overhead (paper Sec. 3: 16-19%)",
           "%-8s %8s %8s %s" % ("target", "insns", "insns -g", "overhead"))
    report(*rows)

    # -- shape: overhead lands in a band around the paper's 16-19% -----
    for arch, overhead in overheads.items():
        assert 8.0 <= overhead <= 35.0, (arch, overhead)
    # and the overhead exists on every target
    assert min(overheads.values()) > 0


def test_noop_overhead_on_fib(benchmark):
    """The overhead is visible even on the paper's own example."""
    plain = insn_count(FIB_C, "rsparc", debug=False)
    debug = insn_count(FIB_C, "rsparc", debug=True)
    benchmark.pedantic(insn_count, args=(FIB_C, "rsparc", False),
                       rounds=3, iterations=1)
    assert debug > plain
    report("fib.c on rsparc: %d -> %d instructions (+%.1f%%)"
           % (plain, debug, 100.0 * (debug - plain) / plain))
