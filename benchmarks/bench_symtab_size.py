"""E3 — symbol-table sizes (paper Sec. 7).

"PostScript symbol-table information is about 9 times larger than dbx
stabs for the same program.  The dbx information is in a binary format,
so it may be fairer to compare the PostScript after compression by the
UNIX program compress, in which case the ratio is about 2."

zlib stands in for 1992's compress(1).
"""

import zlib

import pytest

from repro.cc.driver import compile_unit

from .conftest import report
from .workloads import FIB_C, large_program


@pytest.fixture(scope="module")
def compiled_large():
    return compile_unit(large_program(functions=120), "big.c", "rmips",
                        debug=True)


def test_postscript_vs_stabs_sizes(benchmark, compiled_large):
    unit = compiled_large.unit
    ps_size = len(unit.pssym.encode())
    stabs_size = len(unit.stabs)
    ratio = ps_size / stabs_size
    compressed = len(zlib.compress(unit.pssym.encode(), 6))
    compressed_ratio = compressed / stabs_size

    benchmark.pedantic(zlib.compress, args=(unit.pssym.encode(), 6),
                       rounds=3, iterations=1)

    report("", "E3. Symbol-table sizes (paper Sec. 7: PS ~9x stabs, "
               "~2x after compression)",
           "  stabs (binary)        : %7d bytes" % stabs_size,
           "  PostScript            : %7d bytes   (%.1fx)" % (ps_size, ratio),
           "  PostScript compressed : %7d bytes   (%.1fx)"
           % (compressed, compressed_ratio))

    # -- shape: large uncompressed ratio collapsing under compression ----
    assert 4.0 <= ratio <= 20.0, ratio
    assert compressed_ratio < ratio / 2
    assert 0.5 <= compressed_ratio <= 5.0, compressed_ratio


def test_ratio_holds_for_small_programs(benchmark):
    compiled = compile_unit(FIB_C, "fib.c", "rmips", debug=True)
    benchmark.pedantic(compile_unit, args=(FIB_C, "fib.c", "rmips", True),
                       rounds=3, iterations=1)
    ratio = len(compiled.unit.pssym.encode()) / len(compiled.unit.stabs)
    report("  fib.c alone           : PS/stabs ratio %.1fx" % ratio)
    assert ratio > 3.0


def test_postscript_carries_more_information(compiled_large):
    """The paper's justification: the PostScript must carry enough for
    the expression server to reconstruct compiler symbol tables."""
    pssym = compiled_large.unit.pssym
    # information that stabs lack: printer procedures, anchors, loci
    assert "LazyData" in pssym
    assert "/loci" in pssym
    assert "/printer" in pssym
    assert "AddProc" in pssym
