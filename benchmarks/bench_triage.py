"""T1 — fleet triage: artifacts/second, parallel speedup, dedup quality.

A triage pipeline earns its keep on three axes, measured here over the
deterministic seeded corpus from ``tools/make_crash_corpus.py`` (known
duplicate families across ISAs, mixed cores + recordings, plus the
corrupt-artifact matrix):

* **throughput** — artifacts/second through the full post-mortem
  symbolization stack, serial and with 4 workers (thread and process
  pools);
* **dedup quality** — *completeness* (every seeded family buckets into
  exactly one crash group) and *purity* (no crash group mixes two
  families), both asserted at 1.0;
* **robustness** — every corrupt seed answers with its expected typed
  error kind, and the batch always completes.

The parallel-speedup assertion (``>= 2.0`` on 4 workers) is a *machine*
property as much as a code property: symbolization is CPU-bound Python,
so the speedup exists only where there are CPUs to spread over.  The
bench asserts it when the host has 4+ cores, relaxes to >= 1.2 on 2-3
cores, and on a single-core host records ``single_core: true`` in the
JSON and asserts completion + equivalence only (the thread pool still
must produce *identical groups* to the serial run everywhere).

Emits ``BENCH_triage.json`` at the repository root.  ``BENCH_QUICK=1``
shrinks the corpus (3 ISAs, 3 dupes) for the CI smoke job.
"""

from __future__ import annotations

import importlib.util
import json
import os
import time
from pathlib import Path

from .conftest import report

_ROOT = Path(__file__).resolve().parent.parent
_OUT = _ROOT / "BENCH_triage.json"

#: the speedup floors, keyed by how many cores the host really has
MIN_SPEEDUP_4CORE = 2.0
MIN_SPEEDUP_2CORE = 1.2


def _corpus_tool():
    spec = importlib.util.spec_from_file_location(
        "make_crash_corpus", _ROOT / "tools" / "make_crash_corpus.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def build_corpus(scratch: str, quick: bool) -> dict:
    tool = _corpus_tool()
    if quick:
        return tool.build_corpus(scratch, arches=["rmips", "rsparc",
                                                  "rvax"],
                                 dupes=3, corrupt=True)
    return tool.build_corpus(scratch, arches=tool.ALL_ARCHES, dupes=5,
                             corrupt=True)


def dedup_quality(reporting, manifest: dict, scratch: str) -> dict:
    """Completeness and purity of the grouping against ground truth."""
    group_of = {}  # artifact filename -> stack hash
    for group in reporting.groups:
        for member in group.members:
            group_of[os.path.relpath(member.path, scratch)] = \
                group.stack_hash
    split = merged = 0
    family_of_hash: dict = {}
    for family, members in manifest["families"].items():
        hashes = {group_of.get(m) for m in members}
        if len(hashes) != 1 or None in hashes:
            split += 1  # one bug scattered over several groups
        for h in hashes:
            if h is None:
                continue
            if family_of_hash.setdefault(h, family) != family:
                merged += 1  # two distinct bugs share a group
    families = len(manifest["families"])
    return {
        "families": families,
        "split_families": split,
        "merged_families": merged,
        "completeness": (families - split) / families,
        "purity": (families - merged) / families,
    }


def error_quality(reporting, manifest: dict) -> dict:
    """Did every corrupt seed answer with its expected typed error?"""
    by_name = {os.path.basename(e.path): e.kind for e in reporting.errors}
    expected = {a["path"]: a["expect_error"]
                for a in manifest["artifacts"] if a["family"] is None}
    mismatched = {name: (want, by_name.get(name))
                  for name, want in expected.items()
                  if by_name.get(name) != want}
    return {"corrupt_seeds": len(expected),
            "typed_as_expected": len(expected) - len(mismatched),
            "mismatched": mismatched,
            "unexpected_errors": len(reporting.errors) - len(expected)}


def _run(scratch: str, workers: int, mode: str):
    from repro.triage import TriageEngine
    engine = TriageEngine(workers=workers, mode=mode)
    started = time.perf_counter()
    reporting = engine.triage_dir(scratch)
    return reporting, time.perf_counter() - started


def measure(scratch: str, quick: bool) -> dict:
    manifest = build_corpus(scratch, quick)
    artifacts = len(manifest["artifacts"])
    serial, serial_seconds = _run(scratch, workers=1, mode="thread")
    threads, thread_seconds = _run(scratch, workers=4, mode="thread")
    procs, proc_seconds = _run(scratch, workers=4, mode="process")
    parallel_seconds = min(thread_seconds, proc_seconds)
    serial_groups = [(g.stack_hash, sorted(m.path for m in g.members))
                     for g in serial.groups]
    out = {
        "benchmark": "triage",
        "workload": ("seeded duplicate crash families (%d arches x 3 "
                     "families x %d dupes, cores + recordings) + %d "
                     "corrupt seeds" % (len(manifest["arches"]),
                                        manifest["dupes"],
                                        artifacts - serial.triaged)),
        "artifacts": artifacts,
        "triaged": serial.triaged,
        "groups": len(serial.groups),
        "cpu_count": os.cpu_count(),
        "single_core": (os.cpu_count() or 1) < 2,
        "serial": {"seconds": serial_seconds,
                   "artifacts_per_second": artifacts / serial_seconds},
        "threads_x4": {"seconds": thread_seconds,
                       "artifacts_per_second": artifacts / thread_seconds,
                       "speedup": serial_seconds / thread_seconds},
        "process_x4": {"seconds": proc_seconds,
                       "artifacts_per_second": artifacts / proc_seconds,
                       "speedup": serial_seconds / proc_seconds},
        "best_parallel_speedup": serial_seconds / parallel_seconds,
        "dedup": dedup_quality(serial, manifest, scratch),
        "errors": error_quality(serial, manifest),
        "parallel_groups_match_serial": {
            "threads": [(g.stack_hash,
                         sorted(m.path for m in g.members))
                        for g in threads.groups] == serial_groups,
            "process": [(g.stack_hash,
                         sorted(m.path for m in g.members))
                        for g in procs.groups] == serial_groups,
        },
    }
    return out


def _check(data: dict) -> None:
    # correctness before speed: the grouping must be right and
    # identical under every pool flavor
    assert data["dedup"]["completeness"] == 1.0, data["dedup"]
    assert data["dedup"]["purity"] == 1.0, data["dedup"]
    assert data["errors"]["mismatched"] == {}, data["errors"]
    assert data["errors"]["unexpected_errors"] == 0, data["errors"]
    assert data["parallel_groups_match_serial"]["threads"]
    assert data["parallel_groups_match_serial"]["process"]
    cpus = data["cpu_count"] or 1
    if cpus >= 4:
        assert data["best_parallel_speedup"] >= MIN_SPEEDUP_4CORE, data
    elif cpus >= 2:
        assert data["best_parallel_speedup"] >= MIN_SPEEDUP_2CORE, data


def emit(data: dict) -> None:
    _OUT.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _report(data: dict) -> None:
    report("", "T1. Fleet triage: throughput, speedup, dedup quality",
           "  workload: %s" % data["workload"],
           "  serial      %6.1f artifacts/s"
           % data["serial"]["artifacts_per_second"],
           "  threads x4  %6.1f artifacts/s (%.2fx)"
           % (data["threads_x4"]["artifacts_per_second"],
              data["threads_x4"]["speedup"]),
           "  process x4  %6.1f artifacts/s (%.2fx)"
           % (data["process_x4"]["artifacts_per_second"],
              data["process_x4"]["speedup"]),
           "  dedup: completeness %.2f purity %.2f over %d families"
           % (data["dedup"]["completeness"], data["dedup"]["purity"],
              data["dedup"]["families"]),
           "  corrupt seeds typed as expected: %d/%d"
           % (data["errors"]["typed_as_expected"],
              data["errors"]["corrupt_seeds"]))
    if data["single_core"]:
        report("  (single-core host: speedup floor not asserted)")


def test_triage_fleet(tmp_path):
    data = measure(str(tmp_path), quick=bool(os.environ.get("BENCH_QUICK")))
    emit(data)
    _report(data)
    _check(data)


if __name__ == "__main__":
    import tempfile

    with tempfile.TemporaryDirectory() as scratch:
        data = measure(scratch,
                       quick=bool(os.environ.get("BENCH_QUICK")))
    emit(data)
    _check(data)
    print(json.dumps({k: data[k] for k in ("artifacts", "groups",
                                           "best_parallel_speedup")},
                     indent=2))
    print("dedup", data["dedup"])
    print("wrote %s" % _OUT)
