"""T2 — persistent recordings: record overhead and replay fidelity.

Recording a session costs the same two currencies as time travel
(checkpoint snapshots every ``interval`` instructions) plus a third:
each checkpoint is spilled into the on-disk trace alongside the stop
event log, so the file can be reopened with no nub at all.  This bench
quantifies that against the plain forward run on the loop-then-crash
workload:

* ``plain``    — forward run, recording off, the baseline;
* per interval — recording overhead (wall clock vs plain, spill count,
  file bytes after ``record save``) and replay fidelity: the saved file
  is reopened, reverse-continued to the final breakpoint hit, and run
  forward again across the digest-checked stop log.

It asserts the reopened timeline answers exactly like the live one
(backtrace, landing icount, zero divergences) and emits
``BENCH_record.json`` at the repository root.  ``BENCH_QUICK=1`` runs a
single timing repetition (the CI smoke mode).
"""

from __future__ import annotations

import io
import json
import os
import time
from pathlib import Path

from repro.cc.driver import compile_and_link
from repro.ldb import Ldb
from repro.machines import SIGSEGV, SIGTRAP

from .conftest import report

INTERVALS = (200, 400, 800)
LOOPS = 40

# recording only *registers* checkpoints while running (states are
# pulled lazily at `record save`), so its forward overhead must stay
# inside the T1 checkpoint-overhead envelope, and within a small
# factor of a checkpoint-only run at the same interval
MAX_OVERHEAD = 4.6
MAX_VS_CHECKPOINTING = 2.0

BOOM_C = """int g;
void tick(int i) { g = g + i; }
void poke(int *p) { *p = 42; }
int main(void) {
    int i;
    for (i = 0; i < %d; i++)
        tick(i);
    poke((int *)0x7fffffff);
    return 0;
}
""" % LOOPS

_OUT = Path(__file__).resolve().parent.parent / "BENCH_record.json"
_EXE = None


def _exe():
    global _EXE
    if _EXE is None:
        _EXE = compile_and_link({"boom.c": BOOM_C}, "rmips", debug=True)
    return _EXE


def _run_to_crash(ldb, target):
    """Breakpoint on poke, run through the loop to the single hit and
    on into the crash; returns the icount of that hit."""
    ldb.break_at_function("poke")
    last_hit = None
    while True:
        ldb.run_to_stop()
        if target.state != "stopped" or target.signo != SIGTRAP:
            break
        last_hit = target.current_icount()
    assert target.signo == SIGSEGV
    return last_hit


def run_plain():
    ldb = Ldb(stdout=io.StringIO())
    target = ldb.load_program(_exe())
    started = time.perf_counter()
    last_hit = _run_to_crash(ldb, target)
    seconds = time.perf_counter() - started
    stats = {"seconds": seconds,
             "last_hit": last_hit, "crash_icount": target.current_icount()}
    target.kill()
    return stats


def run_checkpoint_only(interval: int):
    """Time travel on, recording off: the baseline the writer rides."""
    ldb = Ldb(stdout=io.StringIO())
    target = ldb.load_program(_exe())
    ldb.enable_time_travel(interval=interval, capacity=64)
    started = time.perf_counter()
    _run_to_crash(ldb, target)
    seconds = time.perf_counter() - started
    target.kill()
    return {"seconds": seconds}


def run_recorded(interval: int, path: str):
    ldb = Ldb(stdout=io.StringIO())
    target = ldb.load_program(_exe())
    ldb.start_recording(path=path, interval=interval)
    started = time.perf_counter()
    last_hit = _run_to_crash(ldb, target)
    record_seconds = time.perf_counter() - started

    started = time.perf_counter()
    recording = ldb.record_save()
    save_seconds = time.perf_counter() - started
    metrics = ldb.obs.metrics.snapshot()
    stats = {
        "interval": interval,
        "record_seconds": record_seconds,
        "save_seconds": save_seconds,
        "spills": len(recording.spills),
        "stops": len(recording.stops),
        "file_bytes": os.path.getsize(path),
        "saved_bytes": metrics.get("trace.saved_bytes", 0),
        "last_hit": last_hit,
        "crash_icount": target.current_icount(),
    }
    target.kill()
    return stats


def replay_fidelity(path: str, recorded: dict):
    """Reopen the saved file and debug it: the answers must match the
    live session that wrote it, and the forward re-execution must pass
    every recorded digest check."""
    ldb = Ldb(stdout=io.StringIO())
    target = ldb.open_recording(path)
    assert target.replaying and target.signo == SIGSEGV
    assert target.current_icount() == recorded["crash_icount"]
    fault_bt = ldb.backtrace_text()

    started = time.perf_counter()
    hit = ldb.reverse_continue()
    reverse_seconds = time.perf_counter() - started
    assert hit.icount == recorded["last_hit"]
    assert target.at_breakpoint()

    started = time.perf_counter()
    assert ldb.run_to_stop() == "stopped"
    forward_seconds = time.perf_counter() - started
    assert target.signo == SIGSEGV
    assert target.current_icount() == recorded["crash_icount"]
    assert ldb.backtrace_text() == fault_bt
    snap = ldb.obs.metrics.snapshot()
    checks = snap.get("trace.replay.checks", 0)
    divergences = snap.get("trace.replay.divergences", 0)
    assert checks > 0 and divergences == 0
    return {
        "reverse_seconds": reverse_seconds,
        "forward_replay_seconds": forward_seconds,
        "landed_icount": hit.icount,
        "digest_checks": checks,
        "divergences": divergences,
    }


def _timed(fn, *args, reps=3):
    """Best wall clock over ``reps`` runs (fresh session each time)."""
    best = None
    for _ in range(reps):
        row = fn(*args)
        key = row.get("record_seconds", row.get("seconds"))
        if best is None or key < best[0]:
            best = (key, row)
    return best[1]


def measure(reps: int, scratch: Path) -> dict:
    plain = _timed(run_plain, reps=reps)
    out = {
        "benchmark": "record",
        "workload": ("a %d-iteration loop -> breakpoint hit -> SIGSEGV, "
                     "recorded, saved, reopened" % LOOPS),
        "reps": reps,
        "trace_instructions": plain["crash_icount"],
        "max_overhead": MAX_OVERHEAD,
        "plain": plain,
        "intervals": {},
    }
    for interval in INTERVALS:
        path = str(scratch / ("boom_%d.ldbrec" % interval))
        ckpt_only = _timed(run_checkpoint_only, interval, reps=reps)
        row = _timed(run_recorded, interval, path, reps=reps)
        row["checkpoint_only_seconds"] = ckpt_only["seconds"]
        row["record_overhead"] = (round(row["record_seconds"]
                                        / max(plain["seconds"], 1e-9), 2))
        row["record_vs_checkpointing"] = (
            round(row["record_seconds"]
                  / max(ckpt_only["seconds"], 1e-9), 2))
        row["replay"] = replay_fidelity(path, row)
        out["intervals"][str(interval)] = row
    return out


def emit(data: dict) -> None:
    _OUT.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def test_record_overhead_and_replay_fidelity(tmp_path):
    reps = 1 if os.environ.get("BENCH_QUICK") else 3
    data = measure(reps, tmp_path)
    emit(data)
    report("", "T2. Recordings: record overhead vs. replay fidelity",
           "  workload: %s (%d instructions)"
           % (data["workload"], data["trace_instructions"]))
    plain = data["plain"]
    for interval, row in sorted(data["intervals"].items(),
                                key=lambda kv: int(kv[0])):
        report("  interval %-4s %2d spills, record %.3fs (%.1fx plain), "
               "%5d file bytes, replay %d checks / %d divergences"
               % (interval, row["spills"], row["record_seconds"],
                  row["record_overhead"], row["file_bytes"],
                  row["replay"]["digest_checks"],
                  row["replay"]["divergences"]))
        # correctness before speed: replay matched live and stayed clean
        assert row["replay"]["landed_icount"] == plain["last_hit"]
        assert row["crash_icount"] == plain["crash_icount"]
        assert row["replay"]["divergences"] == 0
        # the recording cost stays inside the checkpoint envelope (a
        # single smoke rep is too noisy for an absolute timing bound)
        if data["reps"] >= 3:
            assert row["record_overhead"] <= MAX_OVERHEAD, row
            assert (row["record_vs_checkpointing"]
                    <= MAX_VS_CHECKPOINTING), row
    # denser spills can't mean fewer of them, nor a smaller file
    counts = [data["intervals"][str(i)]["spills"] for i in INTERVALS]
    assert counts == sorted(counts, reverse=True)


if __name__ == "__main__":
    import tempfile

    with tempfile.TemporaryDirectory() as scratch:
        data = measure(reps=1 if os.environ.get("BENCH_QUICK") else 3,
                       scratch=Path(scratch))
    emit(data)
    plain = data["plain"]
    print("plain forward run: %.3fs, %d instructions"
          % (plain["seconds"], data["trace_instructions"]))
    for interval, row in sorted(data["intervals"].items(),
                                key=lambda kv: int(kv[0])):
        print("interval %-4s %2d spills record %.3fs (%.1fx) save %.3fs "
              "%6d bytes replay: %d checks, landed=%d"
              % (interval, row["spills"], row["record_seconds"],
                 row["record_overhead"], row["save_seconds"],
                 row["file_bytes"], row["replay"]["digest_checks"],
                 row["replay"]["landed_icount"]))
    print("wrote %s" % _OUT)
