"""T1 — time travel: checkpoint cost and reverse-continue latency.

Checkpoint/replay buys reverse execution with two currencies: forward
recording overhead (a CHECKPOINT message — one COW snapshot — every
``interval`` retired instructions) and reverse-command latency (restore
the nearest checkpoint, replay the window).  This bench quantifies both
against the checkpoint interval on a loop-then-crash workload:

* ``plain``  — the same forward run with recording off, the baseline;
* per interval — recording overhead (wall clock, checkpoint count,
  wire round-trips) and the latency of a ``reverse-continue`` from the
  crash back onto the last breakpoint hit.

It asserts every reverse-continue lands byte-position-exact on the
final forward hit at every interval, and emits
``BENCH_time_travel.json`` at the repository root.  ``BENCH_QUICK=1``
runs a single timing repetition (the CI smoke mode).
"""

from __future__ import annotations

import io
import json
import os
import time
from pathlib import Path

from repro.cc.driver import compile_and_link
from repro.ldb import Ldb
from repro.machines import SIGSEGV, SIGTRAP

from .conftest import report

INTERVALS = (50, 200, 800)
LOOPS = 40

BOOM_C = """int g;
void tick(int i) { g = g + i; }
void poke(int *p) { *p = 42; }
int main(void) {
    int i;
    for (i = 0; i < %d; i++)
        tick(i);
    poke((int *)0x7fffffff);
    return 0;
}
""" % LOOPS

_OUT = Path(__file__).resolve().parent.parent / "BENCH_time_travel.json"
_EXE = None


def _exe():
    global _EXE
    if _EXE is None:
        _EXE = compile_and_link({"boom.c": BOOM_C}, "rmips", debug=True)
    return _EXE


def _run_to_crash(ldb, target):
    """Breakpoint on poke, run through the long loop to the single hit
    and on into the crash; returns the icount of that hit.  The loop
    itself runs free, so the checkpoint interval — not the breakpoint —
    decides how dense the recording is."""
    ldb.break_at_function("poke")
    last_hit = None
    while True:
        ldb.run_to_stop()
        if target.state != "stopped" or target.signo != SIGTRAP:
            break
        last_hit = target.current_icount()
    assert target.signo == SIGSEGV
    return last_hit


def run_plain():
    ldb = Ldb(stdout=io.StringIO())
    target = ldb.load_program(_exe())
    started = time.perf_counter()
    last_hit = _run_to_crash(ldb, target)
    seconds = time.perf_counter() - started
    stats = {"seconds": seconds,
             "round_trips": ldb.obs.metrics.total("wire."),
             "last_hit": last_hit, "crash_icount": target.current_icount()}
    target.kill()
    return stats


def run_recorded(interval: int):
    ldb = Ldb(stdout=io.StringIO())
    target = ldb.load_program(_exe())
    # all counters come from the unified registry: wire.* mirrors the
    # memory DAG, replay.* comes from the controller itself
    metrics = ldb.obs.metrics
    replay = ldb.enable_time_travel(interval=interval, capacity=64)
    started = time.perf_counter()
    last_hit = _run_to_crash(ldb, target)
    record_seconds = time.perf_counter() - started
    record_trips = metrics.total("wire.")
    crash_icount = target.current_icount()

    started = time.perf_counter()
    hit = ldb.reverse_continue()
    reverse_seconds = time.perf_counter() - started
    stats = {
        "interval": interval,
        "record_seconds": record_seconds,
        "record_round_trips": record_trips,
        "checkpoints": len(replay.ring),
        "reverse_seconds": reverse_seconds,
        "reverse_round_trips": metrics.total("wire.") - record_trips,
        "reverse_windows": metrics.get("replay.windows"),
        "reverse_restores": metrics.get("replay.restores"),
        "replayed_instructions": metrics.get("replay.instructions_replayed"),
        "last_hit": last_hit,
        "crash_icount": crash_icount,
        "landed_icount": hit.icount,
        "landed_on_breakpoint": bool(target.at_breakpoint()),
    }
    target.kill()
    return stats


def _timed(fn, *args, reps=3):
    """Best wall clock over ``reps`` runs (fresh session each time)."""
    best = None
    for _ in range(reps):
        row = fn(*args)
        key = row.get("record_seconds", row.get("seconds"))
        if best is None or key < best[0]:
            best = (key, row)
    return best[1]


def measure(reps: int) -> dict:
    plain = _timed(run_plain, reps=reps)
    out = {
        "benchmark": "time_travel",
        "workload": ("a %d-iteration loop -> breakpoint hit -> SIGSEGV "
                     "-> reverse-continue" % LOOPS),
        "reps": reps,
        "trace_instructions": plain["crash_icount"],
        "plain": plain,
        "intervals": {},
    }
    for interval in INTERVALS:
        row = _timed(run_recorded, interval, reps=reps)
        row["record_overhead"] = (round(row["record_seconds"]
                                        / max(plain["seconds"], 1e-9), 2))
        out["intervals"][str(interval)] = row
    return out


def emit(data: dict) -> None:
    _OUT.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def test_time_travel_latency():
    reps = 1 if os.environ.get("BENCH_QUICK") else 3
    data = measure(reps)
    emit(data)
    report("", "T1. Time travel: checkpoint cost vs. reverse latency",
           "  workload: %s (%d instructions)"
           % (data["workload"], data["trace_instructions"]))
    plain = data["plain"]
    for interval, row in sorted(data["intervals"].items(), key=lambda kv: int(kv[0])):
        report("  interval %-4s %2d ckpts, record %.3fs (%.1fx plain), "
               "reverse-continue %.3fs / %d round-trips"
               % (interval, row["checkpoints"], row["record_seconds"],
                  row["record_overhead"], row["reverse_seconds"],
                  row["reverse_round_trips"]))
        # correctness before speed: every landing is the real final hit
        assert row["landed_on_breakpoint"], interval
        assert row["landed_icount"] == plain["last_hit"] == row["last_hit"]
        assert row["crash_icount"] == plain["crash_icount"]
    # denser checkpoints can't mean fewer of them
    counts = [data["intervals"][str(i)]["checkpoints"] for i in INTERVALS]
    assert counts == sorted(counts, reverse=True)


if __name__ == "__main__":
    data = measure(reps=1 if os.environ.get("BENCH_QUICK") else 3)
    emit(data)
    plain = data["plain"]
    print("plain forward run: %.3fs, %d instructions"
          % (plain["seconds"], data["trace_instructions"]))
    for interval, row in sorted(data["intervals"].items(), key=lambda kv: int(kv[0])):
        print("interval %-4s %2d ckpts record %.3fs (%.1fx) "
              "reverse %.3fs (%d trips) landed=%s"
              % (interval, row["checkpoints"], row["record_seconds"],
                 row["record_overhead"], row["reverse_seconds"],
                 row["reverse_round_trips"], row["landed_icount"]))
    print("wrote %s" % _OUT)
