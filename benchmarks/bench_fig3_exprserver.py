"""F3 — Fig. 3: communication paths between ldb and the expression server.

The figure shows ldb exchanging bytes with the expression server over a
pair of pipes while fetching values from the nub.  This bench runs live
evaluations and counts the traffic on each leg: expressions out, lookup
callbacks back, PostScript in, and nub fetches triggered by interpreting
the result.
"""

import io
import json

import pytest

from repro.cc.driver import compile_and_link
from repro.ldb import Ldb

from .conftest import report
from .workloads import FIB_C


@pytest.fixture(scope="module")
def session():
    exe = compile_and_link({"fib.c": FIB_C}, "rmips", debug=True)
    ldb = Ldb(stdout=io.StringIO())
    target = ldb.load_program(exe)
    ldb.break_at_stop("fib", 9)
    ldb.run_to_stop()
    return ldb, target


def test_fig3_conversation(benchmark, session):
    ldb, target = session
    client = ldb.expression_client()

    sent = []
    original_send = client._send

    def counting_send(line):
        sent.append(line)
        original_send(line)

    client._send = counting_send
    wire_before = target.stats.of("wire", "fetch")
    try:
        value = ldb.evaluate("a[j] + n")
    finally:
        client._send = original_send
    wire_fetches = target.stats.of("wire", "fetch") - wire_before

    expr_msgs = [line for line in sent if line.startswith("EXPR")]
    sym_msgs = [line for line in sent if line.startswith("SYM")]

    benchmark(ldb.evaluate, "a[j] + n")

    report("", "F3. Expression-server communication (paper Fig. 3)",
           "  evaluating `a[j] + n` at stopping point 9:",
           "    ldb -> server : %d EXPR message, %d SYM replies"
           % (len(expr_msgs), len(sym_msgs)),
           "    server -> ldb : /a, /j, /n ExpressionServer.lookup + "
           "PostScript + .result",
           "    ldb -> nub    : %d fetches while interpreting the result"
           % wire_fetches,
           "    value         : %s" % value)

    # -- shape -------------------------------------------------------------
    assert value == 1 + 10  # a[0] + n at the first j-loop iteration
    assert len(expr_msgs) == 1
    # three unknown identifiers came back as lookups -> three SYM replies
    assert len(sym_msgs) == 3
    names = [json.loads(m.split(" ", 1)[1])["name"] for m in sym_msgs]
    assert sorted(names) == ["a", "j", "n"]
    # interpreting the PostScript fetched through the wire
    assert wire_fetches >= 2


def test_fig3_symbol_data_is_c_tokens(session):
    """The reply carries type and symbol data as C tokens (Sec. 3)."""
    ldb, target = session
    frame = target.top_frame()
    entry = frame.resolve("a")
    info = ldb.expression_client()._symbol_info("a", entry, target, frame)
    assert info["decl"] == "int a[20]"
    assert "LazyData" in info["where"] or "Absolute" in info["where"]


def test_fig3_server_isolation(session):
    """The server lives behind byte streams: no shared state with ldb
    beyond the two pipes (the paper's address-space separation)."""
    ldb, _target = session
    client = ldb.expression_client()
    assert client.thread.is_alive()
    assert client.server.types is not None
    # the debugger side holds no reference to server symbol objects
    assert not hasattr(client, "symbols")
