"""F1 — Fig. 1: the example program and its stopping points.

The paper's fib.c has 14 stopping points, superscripted 0-13: entry at
the opening brace, one before every top-level expression (the for loops
contribute init, condition, body, increment in that order), and exit at
the closing brace.  This bench compiles fib.c, recovers the stopping
points from the interpreted symbol table, and checks the figure's
structure; the timing anchor is the compile itself.
"""

import io

import pytest

from repro.cc.driver import compile_and_link, loader_table_ps
from repro.ldb import Ldb

from .conftest import report
from .workloads import FIB_C

#: line of each stopping point in FIB_C, in index order, from Fig. 1
FIG1_LINES = [1,   # 0: the opening brace (the declaration line)
              4, 4, 5,        # 1: n>20   2: n=20   3: a[0]=a[1]=1
              7, 7, 8, 7,     # 4: i=2    5: i<n    6: body   7: i++
              11, 11, 12, 11,  # 8: j=0   9: j<n   10: body  11: j++
              14,             # 12: printf("\n")
              15]             # 13: the closing brace


def test_fig1_stop_points(benchmark):
    exe = benchmark.pedantic(
        lambda: compile_and_link({"fib.c": FIB_C}, "rmips", debug=True),
        rounds=3, iterations=1)
    ldb = Ldb(stdout=io.StringIO())
    target = ldb.load_program(exe)
    fib = target.symtab.extern_entry("fib")
    loci = target.symtab.loci(fib)

    report("", "F1. Stopping points of fib.c (paper Fig. 1)")
    lines = [stop["sourcey"] for stop in loci]
    report("  stop index : " + " ".join("%3d" % i for i in range(len(loci))),
           "  source line: " + " ".join("%3d" % line for line in lines))

    assert len(loci) == 14
    assert lines == FIG1_LINES
    # every stopping point has a distinct object-code address
    addresses = [target.symtab.stop_address(stop) for stop in loci]
    assert len(set(addresses)) == 14
    assert addresses == sorted(addresses)
    # and each holds the no-op the breakpoint scheme requires (Sec. 3)
    for address in addresses:
        assert target.breakpoints.fetch_insn(address) == \
            target.breakpoints.nop_pattern
    target.kill()
    report("  all 14 points carry no-ops and map to distinct addresses")
