"""T7 — durable artifacts: what crash consistency costs and what
salvage recovers.

Three questions, answered with real artifacts (a recorded session and
the core it dumps at the crash):

* **atomic-write overhead** — :func:`atomic_write_bytes` (temp +
  fsync + rename) vs a plain ``open``/``write``, per payload size.
  The atomic path buys its guarantee with one fsync and one rename;
  the bench pins the absolute cost so "durability is too slow to
  leave on" claims need a number.
* **salvage success rate** — every artifact kind truncated at evenly
  spaced cut points; each prefix must open, salvage (typed warning),
  or refuse (typed error), and the recovered fraction is reported.
* **fault matrix** — seeded :class:`FaultyFS` schedules (ENOSPC, torn
  writes, power cuts, EIO) driven through the atomic writer; after
  *every* outcome the destination holds exactly the old payload or
  exactly the new one, never a mixture.

Emits ``BENCH_durability.json`` at the repository root.
``BENCH_QUICK=1`` shrinks the matrix (the CI smoke mode).
"""

from __future__ import annotations

import io
import json
import os
import time
import warnings
from pathlib import Path

from repro.cc.driver import compile_and_link
from repro.ldb import Ldb
from repro.machines import SIGSEGV, SIGTRAP
from repro.machines.atomicio import (
    FaultyFS,
    FsFaultSchedule,
    PowerCut,
    SalvagedArtifact,
    atomic_write_bytes,
    cleanup_stale_temps,
)
from repro.machines.core import CoreError, CoreFile
from repro.trace.format import Recording, TraceError

from .conftest import report

_OUT = Path(__file__).resolve().parent.parent / "BENCH_durability.json"

BOOM_C = """int g;
void tick(int i) { g = g + i; }
void poke(int *p) { *p = 42; }
int main(void) {
    int i;
    for (i = 0; i < 24; i++)
        tick(i);
    poke((int *)0x7fffffff);
    return 0;
}
"""

WRITE_SIZES = (1 << 12, 1 << 16, 1 << 20)


def _artifacts(scratch: Path):
    """Record one crashing session; return its recording and core
    bytes — the two artifact kinds every durability number is about."""
    exe = compile_and_link({"boom.c": BOOM_C}, "rmips", debug=True)
    rec_path = str(scratch / "boom.ldbrec")
    core_path = str(scratch / "boom.core")
    ldb = Ldb(stdout=io.StringIO())
    target = ldb.load_program(exe)
    ldb.start_recording(path=rec_path, interval=120)
    ldb.break_at_function("tick")
    while True:
        ldb.run_to_stop()
        if target.state != "stopped" or target.signo != SIGTRAP:
            break
    assert target.signo == SIGSEGV
    ldb.record_save()
    target.dump_core(core_path)
    target.kill()
    with open(rec_path, "rb") as handle:
        rec_raw = handle.read()
    with open(core_path, "rb") as handle:
        core_raw = handle.read()
    return rec_raw, core_raw


# -- atomic-write overhead -------------------------------------------------

def _time_writes(path: str, payload: bytes, reps: int, atomic: bool):
    best = None
    for _ in range(reps):
        started = time.perf_counter()
        if atomic:
            atomic_write_bytes(path, payload)
        else:
            with open(path, "wb") as handle:
                handle.write(payload)
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best


def measure_overhead(scratch: Path, reps: int) -> dict:
    rows = {}
    for size in WRITE_SIZES:
        payload = os.urandom(size)
        path = str(scratch / ("payload_%d.bin" % size))
        plain = _time_writes(path, payload, reps, atomic=False)
        atomic = _time_writes(path, payload, reps, atomic=True)
        rows[str(size)] = {
            "plain_ms": round(plain * 1e3, 4),
            "atomic_ms": round(atomic * 1e3, 4),
            "overhead": round(atomic / max(plain, 1e-9), 2),
        }
        # the guarantee must stay affordable in absolute terms
        assert atomic < 0.25, "atomic write took %.3fs" % atomic
    return rows


# -- salvage success rate --------------------------------------------------

def _classify_prefix(raw, opener, error):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always", SalvagedArtifact)
        try:
            opener(raw, salvage=True)
        except error:
            return "error"
    return "salvage" if caught else "open"


def measure_salvage(rec_raw: bytes, core_raw: bytes, points: int) -> dict:
    out = {}
    for name, raw, opener, error in (
            ("recording", rec_raw, Recording.from_bytes, TraceError),
            ("core", core_raw, CoreFile.from_bytes, CoreError)):
        step = max(1, len(raw) // points)
        cuts = list(range(0, len(raw), step)) + [len(raw)]
        outcomes = {"open": 0, "salvage": 0, "error": 0}
        for cut in cuts:
            outcomes[_classify_prefix(raw[:cut], opener, error)] += 1
        recovered = outcomes["open"] + outcomes["salvage"]
        out[name] = {
            "bytes": len(raw),
            "cut_points": len(cuts),
            "outcomes": outcomes,
            "recovered_fraction": round(recovered / len(cuts), 3),
        }
        # the whole file opens clean; some strict prefix salvages
        assert outcomes["open"] >= 1
        assert outcomes["salvage"] >= 1
    return out


# -- the seeded fault matrix ----------------------------------------------

def measure_fault_matrix(scratch: Path, rec_raw: bytes, seeds: int) -> dict:
    path = str(scratch / "matrix.ldbrec")
    old = rec_raw[: len(rec_raw) // 2]
    outcomes = {"landed": 0, "kept_old": 0}
    by_error = {}
    torn = 0
    for seed in range(seeds):
        atomic_write_bytes(path, old)
        fs = FaultyFS(FsFaultSchedule(seed=seed, enospc=0.08, torn=0.08,
                                      powercut=0.08, eio=0.08))
        try:
            atomic_write_bytes(path, rec_raw, fs=fs)
            landed = True
        except PowerCut:
            landed = False
            by_error["powercut"] = by_error.get("powercut", 0) + 1
        except OSError as err:
            landed = False
            key = "errno_%s" % err.errno
            by_error[key] = by_error.get(key, 0) + 1
        with open(path, "rb") as handle:
            found = handle.read()
        if found == rec_raw:
            outcomes["landed"] += 1
        elif found == old:
            outcomes["kept_old"] += 1
        else:
            torn += 1
        assert landed == (found == rec_raw)
        cleanup_stale_temps(path)
    assert torn == 0, "%d torn destinations" % torn
    assert outcomes["kept_old"] > 0  # the schedule really injected
    return {"seeds": seeds, "outcomes": outcomes, "failures": by_error,
            "torn": torn}


def emit(data: dict) -> None:
    _OUT.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def test_durability_costs_and_salvage(tmp_path):
    quick = bool(os.environ.get("BENCH_QUICK"))
    reps = 3 if quick else 10
    points = 40 if quick else 200
    seeds = 40 if quick else 200
    rec_raw, core_raw = _artifacts(tmp_path)
    data = {
        "benchmark": "durability",
        "workload": "a recorded loop-then-SIGSEGV session: its .ldbrec "
                    "and the core dumped at the crash",
        "reps": reps,
        "overhead": measure_overhead(tmp_path, reps),
        "salvage": measure_salvage(rec_raw, core_raw, points),
        "fault_matrix": measure_fault_matrix(tmp_path, rec_raw, seeds),
    }
    emit(data)
    report("", "T7. Durable artifacts: cost of atomicity, yield of salvage")
    for size, row in sorted(data["overhead"].items(), key=lambda kv:
                            int(kv[0])):
        report("  atomic write %7s B: %.2fms vs %.2fms plain (%.1fx)"
               % (size, row["atomic_ms"], row["plain_ms"],
                  row["overhead"]))
    for name, row in sorted(data["salvage"].items()):
        report("  salvage %-9s %d cut points: %d open / %d salvaged / "
               "%d refused (%.0f%% recovered)"
               % (name, row["cut_points"], row["outcomes"]["open"],
                  row["outcomes"]["salvage"], row["outcomes"]["error"],
                  100 * row["recovered_fraction"]))
    matrix = data["fault_matrix"]
    report("  fault matrix over %d seeds: %d landed, %d kept old, "
           "%d torn" % (matrix["seeds"], matrix["outcomes"]["landed"],
                        matrix["outcomes"]["kept_old"], matrix["torn"]))


if __name__ == "__main__":
    import tempfile

    quick = bool(os.environ.get("BENCH_QUICK"))
    with tempfile.TemporaryDirectory() as scratch:
        scratch = Path(scratch)
        rec_raw, core_raw = _artifacts(scratch)
        data = {
            "benchmark": "durability",
            "workload": "a recorded loop-then-SIGSEGV session: its "
                        ".ldbrec and the core dumped at the crash",
            "reps": 3 if quick else 10,
            "overhead": measure_overhead(scratch, 3 if quick else 10),
            "salvage": measure_salvage(rec_raw, core_raw,
                                       40 if quick else 200),
            "fault_matrix": measure_fault_matrix(scratch, rec_raw,
                                                 40 if quick else 200),
        }
    emit(data)
    for size, row in sorted(data["overhead"].items(),
                            key=lambda kv: int(kv[0])):
        print("atomic write %7s B: %.2fms vs %.2fms plain (%.1fx)"
              % (size, row["atomic_ms"], row["plain_ms"],
                 row["overhead"]))
    for name, row in sorted(data["salvage"].items()):
        print("salvage %-9s: %.0f%% of %d cut points recovered"
              % (name, 100 * row["recovered_fraction"],
                 row["cut_points"]))
    matrix = data["fault_matrix"]
    print("fault matrix: %d/%d landed, %d kept old, %d torn"
          % (matrix["outcomes"]["landed"], matrix["seeds"],
             matrix["outcomes"]["kept_old"], matrix["torn"]))
    print("wrote %s" % _OUT)
