"""T1 — the paper's Sec. 4.3 table: machine-dependent lines of code.

    |               | MIPS | 68020 | SPARC | VAX | shared |
    | Debugger (M3) |  476 |   187 |   206 | 199 |  12193 |
    | PostScript    |   15 |    18 |    18 |  13 |   1203 |
    | Nub (C, asm)  |   34 |    73 |     5 |  72 |    632 |

Shape expectations reproduced here: per-target machine-dependent code is
*small* (hundreds of lines) against a much larger shared core; the MIPS
debugger column is the largest (no frame pointer -> its own linker
interface); the SPARC nub column is the smallest ("the operating system
provides most of the registers and there is no other machine-dependent
dirt").
"""

import inspect
import os

import pytest

from .conftest import report

SRC_ROOT = os.path.join(os.path.dirname(__file__), "..", "src", "repro")


def loc_of_file(path):
    """Non-blank, non-comment lines (comment = #, %, or docstring-free)."""
    count = 0
    in_doc = False
    with open(path) as f:
        for line in f:
            text = line.strip()
            if not text:
                continue
            if text.startswith('"""') or text.startswith("'''"):
                if not (in_doc is False and text.endswith(('"""', "'''"))
                        and len(text) > 3):
                    in_doc = not in_doc
                continue
            if in_doc:
                continue
            if text.startswith("#") or text.startswith("%"):
                continue
            count += 1
    return count


def loc_of_source(source):
    count = 0
    for line in source.splitlines():
        text = line.strip()
        if text and not text.startswith("#"):
            count += 1
    return count


def debugger_md_loc():
    """Per-target machine-dependent debugger code."""
    from repro.ldb import linker
    from repro.ldb.machdep import m68k, mips, sparc, vax

    out = {}
    base = os.path.join(SRC_ROOT, "ldb", "machdep")
    out["rmips"] = loc_of_file(os.path.join(base, "mips.py")) \
        + loc_of_source(inspect.getsource(linker.MipsLinkerInterface))
    out["rm68k"] = loc_of_file(os.path.join(base, "m68k.py"))
    out["rsparc"] = loc_of_file(os.path.join(base, "sparc.py"))
    out["rvax"] = loc_of_file(os.path.join(base, "vax.py"))
    return out


def debugger_shared_loc():
    total = 0
    for sub in ("ldb", "postscript"):
        base = os.path.join(SRC_ROOT, sub)
        for dirpath, _dirs, files in os.walk(base):
            if "machdep" in dirpath or "data" in dirpath:
                continue
            for name in files:
                if name.endswith(".py"):
                    total += loc_of_file(os.path.join(dirpath, name))
    return total


def postscript_md_loc():
    base = os.path.join(SRC_ROOT, "postscript", "data")
    return {arch: loc_of_file(os.path.join(base, arch + ".ps"))
            for arch in ("rmips", "rsparc", "rm68k", "rvax")}


def postscript_shared_loc():
    base = os.path.join(SRC_ROOT, "postscript", "data")
    return (loc_of_file(os.path.join(base, "prelude.ps"))
            + loc_of_file(os.path.join(base, "symload.ps")))


def nub_md_loc():
    from repro.nub import nub as nub_mod

    return {
        "rmips": loc_of_source(inspect.getsource(nub_mod.MipsNubMD)),
        "rm68k": loc_of_source(inspect.getsource(nub_mod.M68kNubMD)),
        "rsparc": loc_of_source(inspect.getsource(nub_mod.SparcNubMD)),
        "rvax": loc_of_source(inspect.getsource(nub_mod.VaxNubMD)),
    }


def nub_shared_loc():
    base = os.path.join(SRC_ROOT, "nub")
    total = 0
    for name in os.listdir(base):
        if name.endswith(".py"):
            total += loc_of_file(os.path.join(base, name))
    md = sum(nub_md_loc().values())
    return total - md


def test_mdloc_table(benchmark):
    rows = {
        "Debugger (Py)": (debugger_md_loc(), debugger_shared_loc()),
        "PostScript": (postscript_md_loc(), postscript_shared_loc()),
        "Nub": (nub_md_loc(), nub_shared_loc()),
    }
    benchmark(debugger_md_loc)  # timing anchor: counting is the "work"

    order = ("rmips", "rm68k", "rsparc", "rvax")
    report("", "T1. Machine-dependent code per target (paper Sec. 4.3)",
           "%-15s %7s %7s %7s %7s %8s"
           % ("", "MIPS", "68020", "SPARC", "VAX", "shared"))
    for label, (per_arch, shared) in rows.items():
        report("%-15s %7d %7d %7d %7d %8d"
               % (label, per_arch["rmips"], per_arch["rm68k"],
                  per_arch["rsparc"], per_arch["rvax"], shared))
    dbg, dbg_shared = rows["Debugger (Py)"]
    report("paper shape: per-target totals of 250-550 lines vs ~14k shared;",
           "MIPS largest debugger column; SPARC smallest effective nub.")

    # -- shape assertions -------------------------------------------------
    # every MD column is small compared to the shared core
    for per_arch, shared in rows.values():
        assert all(v < shared for v in per_arch.values())
    # total per-target MD code lands in the low hundreds
    for arch in order:
        total_md = sum(rows[r][0][arch] for r in rows)
        assert 50 <= total_md <= 800, (arch, total_md)
    # the MIPS debugger column is the largest (the missing frame pointer)
    assert dbg["rmips"] == max(dbg.values())
    # per-target PostScript is tiny, like the paper's 13-18 lines
    ps, _ = rows["PostScript"]
    assert all(v <= 30 for v in ps.values())
