"""Workload generators for the benchmark suite.

``hello_program()`` is the paper's one-line hello world;
``large_program(n)`` synthesizes a program of roughly the scale of the
paper's 13,000-line lcc build: many functions with parameters, block
locals, loops, statics, structs, and calls — the mix that exercises
symbol tables, stopping points, and the scheduler.
"""

from __future__ import annotations

import random
from typing import List

FIB_C = """void fib(int n)
{
    static int a[20];
    if (n > 20) n = 20;
    a[0] = a[1] = 1;
    {   int i;
        for (i=2; i<n; i++)
            a[i] = a[i-1] + a[i-2];
    }
    {   int j;
        for (j=0; j<n; j++)
            printf("%d ", a[j]);
    }
    printf("\\n");
}
int main(void) { fib(10); return 0; }
"""


def hello_program() -> str:
    return 'int main(void) { printf("hello, world\\n"); return 0; }\n'


def large_program(functions: int = 120, seed: int = 1992) -> str:
    """A synthetic program with ``functions`` medium-sized functions.

    Deterministic for a given seed; roughly 30 lines per function, so
    functions=400 approximates the paper's 13,000-line lcc.
    """
    rng = random.Random(seed)
    parts: List[str] = [
        "struct record { int key; int value; int weight; };",
        "static int pool[64];",
        "int visits = 0;",
        "",
    ]
    names = []
    for index in range(functions):
        name = "work%03d" % index
        names.append(name)
        callee = names[rng.randrange(len(names) - 1)] if index > 0 else None
        parts.append(_one_function(name, callee, rng))
    calls = "\n".join("    total += %s(%d, %d);" % (n, i % 7, (i * 3) % 11)
                      for i, n in enumerate(names[: min(40, functions)]))
    parts.append("""
int main(void) {
    int total = 0;
%s
    printf("%%d\\n", total);
    return 0;
}
""" % calls)
    return "\n".join(parts)


def _one_function(name: str, callee, rng: random.Random) -> str:
    limit = rng.randrange(3, 9)
    bias = rng.randrange(1, 5)
    call_line = ""
    if callee is not None and rng.random() < 0.5:
        call_line = "        acc += %s(i, %d) & 15;" % (callee, bias)
    return """
int %(name)s(int a, int b) {
    static int memo;
    struct record r;
    int acc = 0;
    int i;
    r.key = a; r.value = b; r.weight = a + b;
    for (i = 0; i < %(limit)d; i++) {
        int step = i * %(bias)d + r.weight;
        if (step > 100) step = step %% 100;
        acc += step;
%(call)s
    }
    {
        int scaled = acc * 2;
        if (scaled > memo) memo = scaled;
        pool[(a + b) & 63] = memo;
    }
    visits++;
    return acc + memo;
}
""" % {"name": name, "limit": limit, "bias": bias, "call": call_line}


def memory_heavy_program(functions: int = 40, seed: int = 3) -> str:
    """Functions whose statements each perform one load and a little
    arithmetic — the classic reduction shape where the MIPS assembler
    fills each delay slot with the *next* statement's address
    computation.  Under -g the stopping point between statements blocks
    exactly that motion (paper Sec. 3)."""
    rng = random.Random(seed)
    parts: List[str] = [
        "int table[256];",
        "",
    ]
    names = []
    for index in range(functions):
        name = "scan%03d" % index
        names.append(name)
        lanes = rng.randrange(3, 6)
        # alternate plain loads with arithmetic on the previous value:
        # the load statements have no independent instruction of their
        # own, so their delay slots can only be filled from the *next*
        # statement — across a stopping point
        body_lines = []
        for lane in range(lanes):
            body_lines.append("        t%d = a%d[i];" % (lane, lane))
            body_lines.append("        s%d = s%d * %d + t%d;"
                              % (lane, lane, 3 + 2 * lane, lane))
        body = "\n".join(body_lines)
        params = ", ".join("int *a%d" % lane for lane in range(lanes))
        decls = " ".join("int s%d = 0; int t%d;" % (lane, lane)
                         for lane in range(lanes))
        total = " + ".join("s%d" % lane for lane in range(lanes))
        parts.append("""
int %(name)s(%(params)s, int n) {
    %(decls)s
    int i;
    for (i = 0; i < n; i++) {
%(body)s
    }
    return %(total)s;
}
""" % {"name": name, "params": params, "decls": decls,
           "body": body, "total": total})
    calls = []
    rng2 = random.Random(seed)  # replay the same lane counts
    for name in names:
        lanes = rng2.randrange(3, 6)
        args = ", ".join("table + %d" % (lane * 8) for lane in range(lanes))
        calls.append("    total += %s(%s, 32);" % (name, args))
    parts.append("""
int main(void) {
    int total = 0;
    int i;
    for (i = 0; i < 256; i++) table[i] = i * 3;
%s
    printf("%%d\\n", total);
    return 0;
}
""" % "\n".join(calls))
    return "\n".join(parts)


def count_lines(source: str) -> int:
    return sum(1 for line in source.splitlines() if line.strip())
