"""E4 — the deferral technique (paper Sec. 5).

"We can defer not only the interpretation but also the lexical analysis
of PostScript code by quoting it with parentheses; the scanner reads the
resulting string quickly.  This deferral technique reduces by 40% the
time required to read a large symbol table."

We emit the same large symbol table in both modes (procedures as quoted
strings vs. inline ``{...}`` bodies) and time interpreting each.
"""

import io
import time

import pytest

from repro.cc import pssym
from repro.cc.ctypes_ import TypeSystem
from repro.cc.gen import get_backend
from repro.cc.irgen import IRGen
from repro.cc.parser import parse
from repro.cc.sema import Sema
from repro.postscript import new_interp

from .conftest import report
from .workloads import large_program


@pytest.fixture(scope="module")
def both_tables():
    source = large_program(functions=120)
    types = TypeSystem("rmips")
    ast = parse(source, "big.c", types)
    info = Sema(types, "big.c").analyze(ast)
    unit_ir = IRGen(types, info).generate(ast)
    backend = get_backend("rmips")
    unit = backend.compile_unit(unit_ir, debug=True)
    deferred = pssym.emit_unit(unit, unit_ir, info, backend, types, defer=True)
    eager = pssym.emit_unit(unit, unit_ir, info, backend, types, defer=False)
    return deferred, eager


def read_table(text):
    interp = new_interp(stdout=io.StringIO())
    interp.run("BeginLoaderTable (rmips) UseArchitecture")
    interp.run(text)
    interp.run("(rmips) << >> [ ] << >> EndLoaderTable EndArchitecture")
    return interp.pop()


def _time(fn, *args, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - start)
    return best


def test_deferral_speeds_up_reading(benchmark, both_tables):
    deferred, eager = both_tables
    t_deferred = _time(read_table, deferred)
    t_eager = _time(read_table, eager)
    benchmark.pedantic(read_table, args=(deferred,), rounds=3, iterations=1)
    saving = 100.0 * (t_eager - t_deferred) / t_eager

    report("", "E4. Deferred lexical analysis (paper Sec. 5: 40% less "
               "symbol-table read time)",
           "  eager {...} bodies : %.3f s" % t_eager,
           "  deferred strings   : %.3f s   (%.0f%% less)"
           % (t_deferred, saving))

    # -- shape: a solid constant-factor win -----------------------------
    assert t_deferred < t_eager
    assert saving >= 10.0, saving


def test_deferred_tables_produce_identical_structure(both_tables):
    deferred, eager = both_tables
    t1 = read_table(deferred)
    t2 = read_table(eager)
    procs1 = [e["name"].text for e in t1["symtab"]["procs"]]
    procs2 = [e["name"].text for e in t2["symtab"]["procs"]]
    assert procs1 == procs2
    # both resolve a type's decl identically
    a1 = t1["symtab"]["externs"]["work000"]
    a2 = t2["symtab"]["externs"]["work000"]
    assert a1["type"]["decl"].text == a2["type"]["decl"].text
