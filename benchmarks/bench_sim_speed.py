"""S1 — simulator speed: block-dispatch vs. single-step interpretation.

The interpreter bounds every workload in the system — time-travel
replay re-executes windows, the fault matrix reruns programs, the
session server hosts many simulations at once.  This bench measures
retired instructions per second on a hot arithmetic loop for both
execution engines on every target architecture, asserts the block
engine's architectural state is byte-identical to the step engine's,
and requires the advertised speedup (>= 5x on the hot loop, the
tentpole acceptance bar) on each ISA.

Timings interleave the two engines over ``reps`` repetitions and take
each engine's best time (like timeit: noise only ever adds wall
clock, so the minimum is the cleanest estimate).  Emits
``BENCH_sim_speed.json`` at the repository root.  ``BENCH_QUICK=1``
runs a single repetition and relaxes the speedup bar to >= 2x (the CI
smoke mode shares hardware unpredictably).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.cc.driver import compile_and_link
from repro.machines import ExitEvent, FaultEvent, Process, SIGTRAP

from .conftest import report

ARCHES = ("rmips", "rsparc", "rm68k", "rvax")
LOOPS = 300_000
MIN_SPEEDUP = 2.0 if os.environ.get("BENCH_QUICK") else 5.0

HOT_C = """int main(void) {
    int i, s = 0;
    for (i = 0; i < %d; i++)
        s += i;
    return s & 0xff;
}
""" % LOOPS

_OUT = Path(__file__).resolve().parent.parent / "BENCH_sim_speed.json"
_EXES: dict = {}


def _exe(arch: str):
    if arch not in _EXES:
        _EXES[arch] = compile_and_link({"hot.c": HOT_C}, arch, debug=True)
    return _EXES[arch]


def _run(arch: str, engine: str):
    """One full run under one engine; returns (seconds, icount, state).

    ``state`` is every architecturally visible bit — the equivalence
    check rides along with every timing rep for free."""
    exe = _exe(arch)
    process = Process(exe, engine=engine)
    event = process.run_until_event()
    assert isinstance(event, FaultEvent) and event.signo == SIGTRAP
    process.cpu.pc = event.pc + exe.arch.noop_advance
    started = time.perf_counter()
    event = process.run_until_event()
    seconds = time.perf_counter() - started
    assert isinstance(event, ExitEvent), event
    cpu = process.cpu
    state = (event.status, cpu.pc, cpu.icount, tuple(cpu.regs),
             tuple(cpu.fregs), bytes(process.mem.bytes))
    return seconds, cpu.icount, state


def measure_arch(arch: str, reps: int) -> dict:
    step_times, block_times = [], []
    icount = None
    for _ in range(reps):
        step_s, icount, step_state = _run(arch, "step")
        block_s, block_icount, block_state = _run(arch, "block")
        assert block_icount == icount
        assert block_state == step_state, \
            "%s: block engine state diverged from step engine" % arch
        step_times.append(step_s)
        block_times.append(block_s)
    # best-of, like timeit: noise only ever adds time, so the minimum
    # is the cleanest estimate of each engine's true cost
    step_s = min(step_times)
    block_s = min(block_times)
    return {
        "icount": icount,
        "step_seconds": step_s,
        "block_seconds": block_s,
        "step_ips": round(icount / step_s),
        "block_ips": round(icount / block_s),
        "speedup": round(step_s / block_s, 2),
        "state_identical": True,
    }


def measure(reps: int) -> dict:
    out = {
        "benchmark": "sim_speed",
        "workload": "hot C loop: for (i = 0; i < %d; i++) s += i" % LOOPS,
        "reps": reps,
        "min_speedup": MIN_SPEEDUP,
        "arches": {},
    }
    for arch in ARCHES:
        out["arches"][arch] = measure_arch(arch, reps)
    return out


def emit(data: dict) -> None:
    _OUT.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def test_sim_speed():
    reps = 1 if os.environ.get("BENCH_QUICK") else 5
    data = measure(reps)
    emit(data)
    report("", "S1. Simulator speed: block dispatch vs. single step",
           "  workload: %s" % data["workload"])
    for arch in ARCHES:
        row = data["arches"][arch]
        report("  %-7s %9d insns  step %8d i/s  block %8d i/s  %5.2fx"
               % (arch, row["icount"], row["step_ips"], row["block_ips"],
                  row["speedup"]))
        assert row["state_identical"]
        assert row["speedup"] >= MIN_SPEEDUP, \
            "%s: block engine only %.2fx over step (need >= %.1fx)" \
            % (arch, row["speedup"], MIN_SPEEDUP)


if __name__ == "__main__":
    data = measure(reps=1 if os.environ.get("BENCH_QUICK") else 5)
    emit(data)
    for arch in ARCHES:
        row = data["arches"][arch]
        print("%-7s %9d insns  step %8d i/s  block %8d i/s  %5.2fx"
              % (arch, row["icount"], row["step_ips"], row["block_ips"],
                 row["speedup"]))
    print("wrote %s" % _OUT)
