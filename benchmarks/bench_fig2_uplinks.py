"""F2 — Fig. 2: the tree structure of fib's symbol table.

The uplink values link symbol-table entries in a tree: i and j (locals
of sibling blocks) both link up to a (the static), a links to n (the
parameter), n is the root.  Name resolution walks up the tree from the
stopping point, then the statics, then the externs (paper Sec. 2).
"""

import io

import pytest

from repro.cc.driver import compile_and_link
from repro.ldb import Ldb

from .conftest import report
from .workloads import FIB_C


@pytest.fixture(scope="module")
def stopped_session():
    exe = compile_and_link({"fib.c": FIB_C}, "rmips", debug=True)
    ldb = Ldb(stdout=io.StringIO())
    target = ldb.load_program(exe)
    return ldb, target


def chain_names(stop):
    names = []
    entry = stop.get("syms")
    while entry is not None:
        names.append(entry["name"].text)
        entry = entry.get("uplink")
    return names


def test_fig2_uplink_tree(benchmark, stopped_session):
    ldb, target = stopped_session
    fib = target.symtab.extern_entry("fib")
    loci = target.symtab.loci(fib)

    def resolve_everything():
        out = []
        for stop in loci:
            out.append(chain_names(stop))
        return out

    chains = benchmark(resolve_everything)

    report("", "F2. The uplink tree of fib's symbol table (paper Fig. 2)")
    tree_lines = set()
    for chain in chains:
        for child, parent in zip(chain, chain[1:]):
            tree_lines.add("  %s -> %s" % (child, parent))
    report(*sorted(tree_lines))

    # -- the exact tree of Fig. 2 ----------------------------------------
    assert "  i -> a" in tree_lines
    assert "  j -> a" in tree_lines
    assert "  a -> n" in tree_lines
    # n is the root: no entry links out of it
    assert not any(line.startswith("  n ->") for line in tree_lines)
    # the 9th stopping point sees j, a, n (the paper's example)
    assert chains[9] == ["j", "a", "n"]
    # i is never visible from the j loop and vice versa
    assert "i" not in chains[9]
    assert "j" not in chains[5]


def test_fig2_name_resolution_order(stopped_session):
    """Past the chain root, resolution reaches statics then externs."""
    ldb, target = stopped_session
    fib = target.symtab.extern_entry("fib")
    loci = target.symtab.loci(fib)
    stop9 = loci[9]
    resolve = target.symtab.resolve
    assert resolve("j", stop9, fib)["kind"].text == "variable"
    assert resolve("a", stop9, fib) is fib["statics"]["a"]
    assert resolve("fib", stop9, fib)["kind"].text == "procedure"
    assert resolve("nonesuch", stop9, fib) is None
