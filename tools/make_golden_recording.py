"""Regenerate the committed golden recording used by the CI smoke test.

The golden file proves that recordings written by an *older* tree keep
reopening as the format evolves.  Its bytes are not expected to be
stable across zlib versions, so tests never compare bytes — they load
and replay it (tests/trace/test_golden.py).  Regenerate only on a
deliberate, versioned format change::

    PYTHONPATH=src python tools/make_golden_recording.py
"""

import io
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.cc.driver import compile_and_link  # noqa: E402
from repro.ldb import Ldb  # noqa: E402

GOLDEN = os.path.join(os.path.dirname(__file__), "..", "tests", "data",
                      "golden_boom_rmips.ldbrec")

BOOM = """int g;
void poke(int *p) { *p = 42; }
int main(void) {
    int i;
    for (i = 0; i < 6; i++)
        g = g + i;
    poke((int *)0x7fffffff);
    return 0;
}
"""


def main() -> int:
    exe = compile_and_link({"boom.c": BOOM}, "rmips", debug=True)
    ldb = Ldb(stdout=io.StringIO())
    target = ldb.load_program(exe)
    ldb.start_recording(path=GOLDEN, interval=37)
    ldb.break_at_function("poke")
    assert ldb.run_to_stop() == "stopped" and target.at_breakpoint()
    assert ldb.run_to_stop() == "stopped" and target.signo == 11
    recording = ldb.record_save()
    print("wrote %s: %d spills, %d stops, %d inputs, final icount %d"
          % (GOLDEN, len(recording.spills), len(recording.stops),
             len(recording.inputs), recording.final_icount))
    return 0


if __name__ == "__main__":
    sys.exit(main())
