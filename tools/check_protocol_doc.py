#!/usr/bin/env python
"""Doc-consistency check: PROTOCOL.md vs. the defining modules.

The wire-protocol spec is only useful while it matches the code, so CI
fails when they drift.  The check is a two-way set comparison of the
symbolic names — every ``MSG_*``, ``FEATURE_*``, and ``ERR_*`` constant
*defined* in the protocol's source modules must be documented in
``PROTOCOL.md``, and the spec must not document a name the code does
not define (a renamed or removed message would otherwise live on in
the spec).

Three modules define wire-visible vocabularies:

* ``src/repro/nub/protocol.py`` — the nub protocol (frames, features,
  nub error codes);
* ``src/repro/serve/errors.py`` — the gateway's session-layer error
  codes (PROTOCOL.md Appendix A);
* ``src/repro/ldb/api.py`` — the command-layer error codes answered
  through the gateway's ``command`` op (also Appendix A).

Exit status 0 when consistent; 1 with a per-name report otherwise.
Run from anywhere: paths resolve relative to the repository root.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SOURCES = (
    ROOT / "src" / "repro" / "nub" / "protocol.py",
    ROOT / "src" / "repro" / "serve" / "errors.py",
    ROOT / "src" / "repro" / "ldb" / "api.py",
)
PROTOCOL_MD = ROOT / "PROTOCOL.md"

#: a protocol constant *definition*: the name at column 0, assigned
_DEF = re.compile(r"^((?:MSG|FEATURE|ERR)_[A-Z0-9_]+)\s*=", re.MULTILINE)

#: any *mention* of a protocol constant name
_MENTION = re.compile(r"\b((?:MSG|FEATURE|ERR)_[A-Z0-9_]+)\b")


def defined_names(source: str) -> set:
    return set(_DEF.findall(source))


def documented_names(text: str) -> set:
    return set(_MENTION.findall(text))


def check() -> int:
    if not PROTOCOL_MD.exists():
        print("check_protocol_doc: PROTOCOL.md is missing", file=sys.stderr)
        return 1
    code: set = set()
    for path in SOURCES:
        names = defined_names(path.read_text())
        if not names:
            print("check_protocol_doc: no protocol constants found in %s "
                  "(extraction broken?)" % path, file=sys.stderr)
            return 1
        code |= names
    doc = documented_names(PROTOCOL_MD.read_text())
    undocumented = sorted(code - doc)
    phantom = sorted(doc - code)
    for name in undocumented:
        print("check_protocol_doc: %s is defined in the source but not "
              "documented in PROTOCOL.md" % name, file=sys.stderr)
    for name in phantom:
        print("check_protocol_doc: PROTOCOL.md documents %s, which "
              "no source module defines" % name, file=sys.stderr)
    if undocumented or phantom:
        return 1
    print("check_protocol_doc: PROTOCOL.md documents all %d protocol "
          "constants" % len(code))
    return 0


if __name__ == "__main__":
    sys.exit(check())
