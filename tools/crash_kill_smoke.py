"""Crash-kill smoke: the durability story end to end, one process.

The drill an operator actually cares about:

1. record a session to disk, save once (the healthy baseline);
2. kill the power mid-rewrite (a seeded :class:`FaultyFS` power cut)
   — the destination must still hold the baseline byte-for-byte;
3. reboot the disk, retry the save — it lands atomically;
4. tear the landed file's tail (the pre-atomic legacy case) — it must
   reopen *salvaged* with a typed warning and a usable timeline;
5. feed the whole aftermath (healthy file, torn file, the core the
   crash dumped) to triage — typed rows, duplicates folded, batch
   never aborts.

Exit status 0 when every step holds, 1 with a message otherwise.
CI runs this as the crash-kill job; it is also a decent REPL-free
demo of the salvage machinery.

Usage::

    PYTHONPATH=src python tools/crash_kill_smoke.py [workdir]
"""

import io
import os
import shutil
import sys
import tempfile
import warnings

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.cc.driver import compile_and_link  # noqa: E402
from repro.ldb import Ldb  # noqa: E402
from repro.machines import SIGSEGV, SIGTRAP  # noqa: E402
from repro.machines.atomicio import (  # noqa: E402
    FaultyFS,
    FsFaultSchedule,
    PowerCut,
    SalvagedArtifact,
)
from repro.trace import Recording  # noqa: E402

BOOM_C = """int g;
void tick(int i) { g = g + i; }
void poke(int *p) { *p = 42; }
int main(void) {
    int i;
    for (i = 0; i < 16; i++)
        tick(i);
    poke((int *)0x7fffffff);
    return 0;
}
"""

_failures = []


def check(ok, what):
    tag = "ok  " if ok else "FAIL"
    print("  %s %s" % (tag, what))
    if not ok:
        _failures.append(what)


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    workdir = argv[0] if argv else tempfile.mkdtemp(prefix="crashkill-")
    own_dir = not argv
    os.makedirs(workdir, exist_ok=True)
    rec_path = os.path.join(workdir, "session.ldbrec")
    core_path = os.path.join(workdir, "session.core")

    print("crash-kill smoke in %s" % workdir)

    # 1. record a crashing session, save the healthy baseline
    exe = compile_and_link({"boom.c": BOOM_C}, "rmips", debug=True)
    ldb = Ldb(stdout=io.StringIO())
    target = ldb.load_program(exe)
    ldb.start_recording(path=rec_path, interval=90)
    ldb.break_at_function("tick")
    while True:
        ldb.run_to_stop()
        if target.state != "stopped" or target.signo != SIGTRAP:
            break
    check(target.signo == SIGSEGV, "session crashed with SIGSEGV")
    ldb.record_save()
    target.dump_core(core_path)
    baseline = open(rec_path, "rb").read()
    check(len(baseline) > 0, "baseline recording saved (%d bytes)"
          % len(baseline))

    # 2. power cut mid-rewrite: the baseline survives untouched
    fs = FaultyFS(FsFaultSchedule(seed=11, script=["ok", "powercut"]))
    try:
        target.trace_writer.save(rec_path, fs=fs)
        check(False, "power cut was injected")
    except PowerCut:
        check(True, "power cut killed the writer mid-save")
    found = open(rec_path, "rb").read()
    check(found == baseline, "destination still the baseline after the cut")

    # 3. reboot the disk; the retry lands whole
    fs.revive()
    target.trace_writer.save(rec_path, fs=fs)
    relanded = open(rec_path, "rb").read()
    check(Recording.from_bytes(relanded).spills is not None,
          "retry after revive landed a clean file")
    stale = [n for n in os.listdir(workdir) if ".ldbtmp." in n]
    check(stale == [], "no stale temp files left behind")
    target.kill()

    # 4. tear the tail: salvage-on-open recovers a typed, usable prefix
    torn_path = os.path.join(workdir, "torn.ldbrec")
    with open(torn_path, "wb") as handle:
        handle.write(relanded[: int(len(relanded) * 0.7)])
    ldb2 = Ldb(stdout=io.StringIO())
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always", SalvagedArtifact)
        replay = ldb2.open_recording(torn_path)
    check(any(issubclass(w.category, SalvagedArtifact) for w in caught),
          "torn file opened with a SalvagedArtifact warning")
    check(replay.current_icount() > 0, "salvaged timeline is usable "
          "(icount %d)" % replay.current_icount())
    ldb2.backtrace_text()
    check(True, "salvaged backtrace walks")

    # 5. triage ingests the aftermath without aborting
    from repro.triage import TriageEngine
    report = TriageEngine(workers=1).triage_dir(workdir)
    check(report.scanned == 3, "triage scanned all 3 artifacts")
    check(report.triaged == 3, "all 3 triaged (none refused)")
    rows = {os.path.basename(m.path): m.salvaged
            for g in report.groups for m in g.members}
    check(rows.get("torn.ldbrec") is True, "torn row marked salvaged")
    check(rows.get("session.ldbrec") is False, "healthy row not salvaged")
    # the healthy recording and the core capture the same crash; the
    # torn copy lost its tail, so its (pre-crash) stack may hash apart
    same = report.group_of(rec_path) is report.group_of(core_path)
    check(same, "healthy recording and core folded to one crash group")

    if own_dir:
        shutil.rmtree(workdir, ignore_errors=True)
    if _failures:
        print("crash-kill smoke: %d FAILURE(S)" % len(_failures))
        return 1
    print("crash-kill smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
