"""Generate a deterministic mixed crash-artifact corpus for triage.

The corpus seeds *known duplicate families*: each family is one bug —
one crash site, one call chain — compiled per architecture, then
crashed several times with a benign variation (a different loop bound)
so the artifacts differ in instruction counts and data state but fold
to the same normalized stack hash.  Families differ in call chain or
fault kind, so triage must keep them apart.  Every variant dumps a
core; some also save a ``.ldbrec`` recording of the same run, so the
corpus exercises both artifact kinds against one ground truth.

With ``--corrupt`` the corpus also seeds the damage matrix: a truncated
core, a bit-flipped (bad CRC) core, a truncated recording, a recording
whose final stop digest was tampered (diverges on open), an empty file,
and a plain-text non-artifact.  ``manifest.json`` records the ground
truth — each artifact's family (or its expected typed error) — for the
dedup-quality tests and the bench.

Everything is deterministic: no randomness, no timestamps; the same
invocation writes the same corpus (module zlib aside, byte-for-byte is
*not* promised — family membership and error kinds are).

Usage::

    PYTHONPATH=src python tools/make_crash_corpus.py <outdir> \\
        [--arches rmips,rsparc] [--dupes 5] [--no-recordings] [--corrupt]
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.cc.driver import compile_and_link  # noqa: E402
from repro.ldb import Ldb  # noqa: E402

ALL_ARCHES = ["rmips", "rmipsel", "rsparc", "rm68k", "rvax"]

#: each family is one distinct bug; ``%(spin)d`` is the benign
#: variation that makes duplicates non-identical without moving the
#: crash — a different amount of work before dying the same way
FAMILIES = {
    # SIGSEGV: a wild write, one call deep
    "nullwrite": """int g;
void poke(int *p) { *p = 42; }
int main(void) {
    int i;
    for (i = 0; i < %(spin)d; i++)
        g = g + i;
    poke((int *)0x7fffffff);
    return 0;
}
""",
    # SIGFPE: a divide by zero, one call deep — same depth as
    # nullwrite, so only the fault kind separates the two families
    "divzero": """int g;
int shrink(int a, int b) { return a / b; }
int main(void) {
    int i;
    for (i = 0; i < %(spin)d; i++)
        g = g + 2;
    g = shrink(100, g - g);
    return 0;
}
""",
    # SIGSEGV again, but three calls deep: same signal as nullwrite
    # with a different chain — the "no distinct families merge" probe
    "deepchain": """int g;
void poke(int *p) { *p = 42; }
void inner(void) { poke((int *)0x7ffffff3); }
void middle(void) { inner(); }
void outer(void) { middle(); }
int main(void) {
    int i;
    for (i = 0; i < %(spin)d; i++)
        g = g + i;
    outer();
    return 0;
}
""",
}

#: the benign per-duplicate variation (loop bounds; index = variant)
SPINS = [3, 5, 8, 13, 21, 34, 55, 89]


def crash_once(arch, family, spin, core_path=None, recording_path=None):
    """Compile one family for ``arch``, run it to its crash, and dump
    the requested artifacts.  Returns the fatal signal number."""
    import io
    source = FAMILIES[family] % {"spin": spin}
    exe = compile_and_link({"%s.c" % family: source}, arch, debug=True)
    ldb = Ldb(stdout=io.StringIO())
    target = ldb.load_program(exe)
    if recording_path is not None:
        ldb.start_recording(path=recording_path, interval=97)
    state = ldb.run_to_stop()
    if state != "stopped" or target.signo == 0:
        raise RuntimeError("%s/%s did not crash (state %s, signal %d)"
                           % (arch, family, state, target.signo))
    if core_path is not None:
        target.dump_core(core_path)
    if recording_path is not None:
        ldb.record_save()
    return target.signo


def seed_corrupt(outdir, donor_core, donor_recording):
    """Write the damage matrix next to the healthy artifacts; returns
    manifest entries ``[(filename, expected error kind), ...]``."""
    from repro.trace.format import Recording

    entries = []

    with open(donor_core, "rb") as handle:
        core_bytes = handle.read()
    # cut mid-payload: bad container length / undecompressable body
    with open(os.path.join(outdir, "corrupt-truncated.core"), "wb") as out:
        out.write(core_bytes[:max(len(core_bytes) * 3 // 5, 20)])
    entries.append(("corrupt-truncated.core", "corrupt-core"))
    # flip one payload bit: magic intact, CRC check must catch it
    flipped = bytearray(core_bytes)
    flipped[len(flipped) // 2] ^= 0x40
    with open(os.path.join(outdir, "corrupt-badcrc.core"), "wb") as out:
        out.write(bytes(flipped))
    entries.append(("corrupt-badcrc.core", "corrupt-core"))

    with open(donor_recording, "rb") as handle:
        rec_bytes = handle.read()
    with open(os.path.join(outdir, "corrupt-truncated.ldbrec"),
              "wb") as out:
        out.write(rec_bytes[:max(len(rec_bytes) // 2, 12)])
    entries.append(("corrupt-truncated.ldbrec", "corrupt-recording"))
    # a structurally valid recording whose event log lies: tamper the
    # digest of the stop the reopened session lands on
    recording = Recording.load(donor_recording)
    landing = recording.stop_at(recording.final_icount)
    assert landing is not None, "donor recording has no final stop"
    landing.digest ^= 0xDEADBEEF
    recording.dump(os.path.join(outdir, "corrupt-diverged.ldbrec"))
    entries.append(("corrupt-diverged.ldbrec", "diverged"))

    open(os.path.join(outdir, "corrupt-empty.core"), "wb").close()
    entries.append(("corrupt-empty.core", "not-an-artifact"))
    with open(os.path.join(outdir, "corrupt-notes.txt"), "w") as out:
        out.write("triage meeting notes: this is not an artifact\n")
    entries.append(("corrupt-notes.txt", "not-an-artifact"))
    return entries


def build_corpus(outdir, arches=None, dupes=5, recordings=True,
                 corrupt=True, record_every=2):
    """Build the corpus under ``outdir``; returns the manifest dict
    (also written to ``outdir/manifest.json``)."""
    arches = list(arches or ALL_ARCHES)
    if dupes > len(SPINS):
        raise ValueError("at most %d dupes per family" % len(SPINS))
    os.makedirs(outdir, exist_ok=True)
    artifacts = []
    families = {}
    donor_core = donor_recording = None
    for arch in arches:
        for family in sorted(FAMILIES):
            label = "%s:%s" % (arch, family)
            members = []
            for variant in range(dupes):
                stem = "%s-%s-%d" % (arch, family, variant)
                core_name = stem + ".core"
                rec_name = (stem + ".ldbrec"
                            if recordings and variant % record_every == 0
                            else None)
                signo = crash_once(
                    arch, family, SPINS[variant],
                    core_path=os.path.join(outdir, core_name),
                    recording_path=(os.path.join(outdir, rec_name)
                                    if rec_name else None))
                artifacts.append({"path": core_name, "kind": "core",
                                  "family": label, "signo": signo})
                members.append(core_name)
                donor_core = donor_core or core_name
                if rec_name:
                    artifacts.append({"path": rec_name,
                                      "kind": "recording",
                                      "family": label, "signo": signo})
                    members.append(rec_name)
                    donor_recording = donor_recording or rec_name
            families[label] = members
    if corrupt:
        assert donor_core and donor_recording, \
            "corrupt seeds need at least one healthy core and recording"
        for name, expect in seed_corrupt(
                outdir, os.path.join(outdir, donor_core),
                os.path.join(outdir, donor_recording)):
            artifacts.append({"path": name, "kind": "corrupt",
                              "family": None, "expect_error": expect})
    manifest = {"artifacts": artifacts, "families": families,
                "arches": arches, "dupes": dupes}
    with open(os.path.join(outdir, "manifest.json"), "w") as out:
        json.dump(manifest, out, indent=2, sort_keys=True)
        out.write("\n")
    return manifest


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="generate a deterministic crash-artifact corpus")
    ap.add_argument("outdir")
    ap.add_argument("--arches", default=",".join(ALL_ARCHES),
                    help="comma-separated ISA list (default: all five)")
    ap.add_argument("--dupes", type=int, default=5,
                    help="duplicates per crash family (default 5)")
    ap.add_argument("--no-recordings", action="store_true",
                    help="cores only, no .ldbrec artifacts")
    ap.add_argument("--corrupt", action="store_true",
                    help="also seed the corrupt/damaged artifact matrix")
    args = ap.parse_args(argv)
    manifest = build_corpus(args.outdir,
                            arches=args.arches.split(","),
                            dupes=args.dupes,
                            recordings=not args.no_recordings,
                            corrupt=args.corrupt)
    healthy = [a for a in manifest["artifacts"] if a["family"]]
    print("wrote %d artifacts (%d healthy across %d families, %d "
          "corrupt) to %s"
          % (len(manifest["artifacts"]), len(healthy),
             len(manifest["families"]),
             len(manifest["artifacts"]) - len(healthy), args.outdir))
    return 0


if __name__ == "__main__":
    sys.exit(main())
